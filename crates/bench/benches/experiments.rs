//! Benches of the experiment pipeline: calibration, the BIST run (healthy
//! vs defective with stop-on-detection), and the analysis kernels.
//!
//! `harness = false`: this is a plain program on the in-repo
//! [`symbist_bench::harness`]. Pass `--quick` for a fast smoke run.

use symbist_bench::harness::Harness;

use symbist::calibrate::Calibration;
use symbist::session::{Schedule, SymBist};
use symbist::stimulus::StimulusSpec;
use symbist_adc::fault::{DefectKind, DefectSite, Faultable};
use symbist_adc::{AdcConfig, BlockKind, SarAdc};
use symbist_analysis::dynamic::{analyze_sine, quantized_sine};
use symbist_analysis::fft::{fft_real, hann_window, power_spectrum};

fn engine() -> SymBist {
    let cfg = AdcConfig::default();
    let stimulus = StimulusSpec::default();
    let cal = Calibration::run(&cfg, &stimulus, 6, 5.0, 42);
    SymBist::new(cal, stimulus, Schedule::Sequential)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut h = if quick {
        Harness::quick()
    } else {
        Harness::new()
    };

    let bist = engine();
    let healthy = SarAdc::new(AdcConfig::default());
    h.bench("bist_run_healthy_full", || bist.run(&healthy, false).pass);

    let mut defective = healthy.clone();
    let site = defective
        .components()
        .iter()
        .position(|comp| comp.block == BlockKind::VcmGenerator)
        .unwrap();
    defective.inject(DefectSite {
        component: site,
        kind: DefectKind::Short,
    });
    h.bench("bist_run_defective_stop_on_detect", || {
        bist.run(&defective, true).pass
    });

    let cfg = AdcConfig::default();
    h.bench("calibration_2_samples", || {
        Calibration::run(&cfg, &StimulusSpec::default(), 2, 5.0, 7)
    });

    let sig = quantized_sine(4096, 449.0, 10);
    h.bench("fft_4096", || fft_real(&sig));
    let win = hann_window(4096);
    h.bench("power_spectrum_4096", || power_spectrum(&sig, &win));
    h.bench("analyze_sine_4096", || analyze_sine(&sig));

    print!("{}", h.report());
}
