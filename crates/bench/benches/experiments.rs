//! Criterion benches of the experiment pipeline: calibration, the BIST
//! run (healthy vs defective with stop-on-detection), and the analysis
//! kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use symbist::calibrate::Calibration;
use symbist::session::{Schedule, SymBist};
use symbist::stimulus::StimulusSpec;
use symbist_adc::fault::{DefectKind, DefectSite, Faultable};
use symbist_adc::{AdcConfig, BlockKind, SarAdc};
use symbist_analysis::dynamic::{analyze_sine, quantized_sine};
use symbist_analysis::fft::{fft_real, hann_window, power_spectrum};

fn engine() -> SymBist {
    let cfg = AdcConfig::default();
    let stimulus = StimulusSpec::default();
    let cal = Calibration::run(&cfg, &stimulus, 6, 5.0, 42);
    SymBist::new(cal, stimulus, Schedule::Sequential)
}

fn bench_bist_runs(c: &mut Criterion) {
    let bist = engine();
    let healthy = SarAdc::new(AdcConfig::default());
    c.bench_function("bist_run_healthy_full", |bench| {
        bench.iter(|| black_box(bist.run(&healthy, false).pass));
    });

    let mut defective = healthy.clone();
    let site = defective
        .components()
        .iter()
        .position(|comp| comp.block == BlockKind::VcmGenerator)
        .unwrap();
    defective.inject(DefectSite {
        component: site,
        kind: DefectKind::Short,
    });
    c.bench_function("bist_run_defective_stop_on_detect", |bench| {
        bench.iter(|| black_box(bist.run(&defective, true).pass));
    });
}

fn bench_calibration(c: &mut Criterion) {
    let cfg = AdcConfig::default();
    c.bench_function("calibration_2_samples", |bench| {
        bench.iter(|| {
            black_box(Calibration::run(
                &cfg,
                &StimulusSpec::default(),
                2,
                5.0,
                7,
            ))
        });
    });
}

fn bench_analysis_kernels(c: &mut Criterion) {
    let sig = quantized_sine(4096, 449.0, 10);
    c.bench_function("fft_4096", |bench| {
        bench.iter(|| black_box(fft_real(black_box(&sig))));
    });
    let win = hann_window(4096);
    c.bench_function("power_spectrum_4096", |bench| {
        bench.iter(|| black_box(power_spectrum(black_box(&sig), &win)));
    });
    c.bench_function("analyze_sine_4096", |bench| {
        bench.iter(|| black_box(analyze_sine(black_box(&sig))));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_bist_runs, bench_calibration, bench_analysis_kernels
);
criterion_main!(benches);
