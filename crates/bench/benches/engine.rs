//! Criterion benches of the simulation substrate: linear algebra, DC and
//! transient solves, and the ADC-level primitives every experiment rests
//! on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use symbist_adc::{AdcConfig, SarAdc};
use symbist_circuit::dc::DcSolver;
use symbist_circuit::matrix::Matrix;
use symbist_circuit::netlist::{MosPolarity, Netlist};
use symbist_circuit::rng::Rng;
use symbist_circuit::transient::{TransientOptions, TransientSim};

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu_solve");
    for n in [8usize, 16, 32, 64] {
        let mut rng = Rng::seed_from_u64(1);
        let mut a = Matrix::zeros(n, n);
        for r in 0..n {
            for col in 0..n {
                a.set(r, col, rng.uniform(-1.0, 1.0));
            }
            a.add(r, r, n as f64);
        }
        let b: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(&a).solve(black_box(&b)).unwrap());
        });
    }
    group.finish();
}

fn bench_dc_nonlinear(c: &mut Criterion) {
    // A diode + MOS Newton problem of bandgap-branch size.
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let a = nl.node("a");
    let k = nl.node("k");
    nl.vsource(vdd, Netlist::GND, 1.8);
    nl.resistor(vdd, a, 10e3);
    nl.diode(a, k, 1e-15, 1.0);
    nl.resistor(k, Netlist::GND, 5e3);
    nl.mosfet(a, k, Netlist::GND, MosPolarity::Nmos, 0.4, 1e-4, 0.01);
    let solver = DcSolver::new();
    c.bench_function("dc_newton_diode_mos", |bench| {
        bench.iter(|| solver.solve(black_box(&nl)).unwrap());
    });
}

fn bench_transient_rc(c: &mut Criterion) {
    let mut nl = Netlist::new();
    let s = nl.node("s");
    let o = nl.node("o");
    nl.vsource(s, Netlist::GND, 1.0);
    nl.resistor(s, o, 1e3);
    nl.capacitor(o, Netlist::GND, 1e-9);
    c.bench_function("transient_rc_1000_steps", |bench| {
        bench.iter(|| {
            let mut sim =
                TransientSim::new(&nl, TransientOptions { dt: 1e-9, ..Default::default() })
                    .unwrap();
            for _ in 0..1000 {
                sim.step(&nl).unwrap();
            }
            black_box(sim.voltage(o))
        });
    });
}

fn bench_adc_primitives(c: &mut Criterion) {
    let adc = SarAdc::new(AdcConfig::default());
    c.bench_function("adc_full_conversion", |bench| {
        bench.iter(|| black_box(adc.convert(black_box(0.123))));
    });
    c.bench_function("adc_symbist_observations", |bench| {
        bench.iter(|| black_box(adc.symbist_observations(black_box(0.2))));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lu, bench_dc_nonlinear, bench_transient_rc, bench_adc_primitives
);
criterion_main!(benches);
