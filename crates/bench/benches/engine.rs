//! Benches of the simulation substrate: linear algebra, DC and transient
//! solves (dense vs sparse), and the ADC-level primitives every experiment
//! rests on.
//!
//! `harness = false`: this is a plain program on the in-repo
//! [`symbist_bench::harness`]. Pass `--quick` for a fast smoke run.

use symbist_bench::{engine_suite, harness::Harness};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut h = if quick {
        Harness::quick()
    } else {
        Harness::new()
    };
    engine_suite::run(&mut h);
    print!("{}", h.report());
    for (name, ratio) in engine_suite::derived(&h) {
        println!("{name}: {ratio:.2}x");
    }
}
