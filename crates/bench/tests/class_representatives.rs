//! Cross-validates the class-representative campaign against an
//! exhaustive campaign on a restricted slice of the Table-I universe:
//! extrapolating one simulated representative per (orbit × defect kind)
//! class must reproduce the exhaustive L-W coverage while simulating
//! measurably fewer defects.
//!
//! Restricted to the SC-array and Vcm-generator blocks so the test stays
//! in tier-1 runtime; the full-universe figure is exercised by the
//! `table1 --class-representatives` binary and the CI static-analysis
//! gate.

use std::collections::HashMap;

use symbist::experiments::ExperimentConfig;
use symbist_adc::{BlockKind, SarAdc};
use symbist_defects::{
    run_campaign, run_class_campaign, CampaignOptions, ClassCampaignOptions, DefectUniverse,
    LikelihoodModel,
};
use symbist_lint::analyze_adc_with_universe;

#[test]
fn class_representatives_agree_with_exhaustive_campaign() {
    let xc = ExperimentConfig {
        calibration_samples: 8,
        ..Default::default()
    };
    let engine = xc.build_engine();
    let adc = SarAdc::new(xc.adc.clone());
    let universe = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
    let analysis = analyze_adc_with_universe(&adc, &universe);
    assert!(
        !analysis.diagnostics.has_errors(),
        "{}",
        analysis.diagnostics.render_text()
    );
    let partition = analysis.partition();

    // Restrict to two blocks: defect classes never straddle a block
    // boundary (an orbit lives on one component's devices), so slicing
    // the partition down to the kept indices is still an exact cover.
    let keep: Vec<usize> = (0..universe.len())
        .filter(|&i| {
            matches!(
                universe.defects()[i].block,
                BlockKind::ScArray | BlockKind::VcmGenerator
            )
        })
        .collect();
    let sub_index: HashMap<usize, usize> = keep.iter().enumerate().map(|(s, &f)| (f, s)).collect();
    let sub = DefectUniverse::from_defects(
        keep.iter()
            .map(|&f| universe.defects()[f].clone())
            .collect(),
    );
    let sub_partition: Vec<Vec<usize>> = partition
        .iter()
        .map(|class| {
            let kept: Vec<usize> = class
                .iter()
                .filter_map(|d| sub_index.get(d).copied())
                .collect();
            assert!(
                kept.is_empty() || kept.len() == class.len(),
                "class straddles the block restriction"
            );
            kept
        })
        .filter(|c| !c.is_empty())
        .collect();

    let exhaustive = run_campaign(
        &adc,
        &sub,
        &CampaignOptions {
            seed: xc.seed,
            threads: xc.threads,
            ..Default::default()
        },
        |dut| engine.campaign_test(dut),
    )
    .expect("exhaustive sub-campaign is well-formed");
    let class = run_class_campaign(
        &adc,
        &sub,
        &sub_partition,
        &ClassCampaignOptions {
            seed: xc.seed,
            threads: xc.threads,
            ..Default::default()
        },
        |dut| engine.campaign_test(dut),
    )
    .expect("analyzer partition restricts to an exact cover");

    // The representative campaign must be measurably cheaper...
    assert!(
        class.simulated < sub.len(),
        "simulated {} of {} — no savings",
        class.simulated,
        sub.len()
    );
    assert!(class.defects_saved() > 0);
    // ...the sibling audit must not refute any class...
    assert_eq!(
        class.violation_count(),
        0,
        "violations: {:?}",
        class.violations().collect::<Vec<_>>()
    );
    // ...and the extrapolated coverage must agree with the exhaustive
    // figure. Both campaigns completed (or not) the same defect families,
    // so compare lower bounds against lower bounds.
    let lo = class.coverage().value;
    let xlo = exhaustive.coverage().value;
    assert!(
        (lo - xlo).abs() < 0.05,
        "extrapolated {lo} vs exhaustive {xlo}"
    );
    let hi = class.coverage_upper().value;
    let xhi = exhaustive.coverage_upper().value;
    assert!(
        (hi - xhi).abs() < 0.05,
        "extrapolated upper {hi} vs exhaustive upper {xhi}"
    );
}
