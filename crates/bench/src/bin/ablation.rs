//! EXP-ABL (extension): ablations of two SymBIST design choices called
//! out in DESIGN.md §4.
//!
//! 1. **Stimulus DC value** — the paper says ΔIN "can be set arbitrarily";
//!    the SC-array charge equations show that ΔIN = 0 (with the counter
//!    driving both sub-DACs identically) degenerates `DAC± = M±`, hiding
//!    every capacitor-ratio defect. The ablation measures SC-array
//!    coverage at ΔIN = 0 vs the default 0.2 V.
//! 2. **Stop-on-detection** — defect-simulation wall time with and without
//!    the early abort (paper §V uses it to make the campaign tractable).
//!
//! ```sh
//! cargo run --release -p symbist-bench --bin ablation
//! ```

use std::time::Instant;

use symbist::experiments::ExperimentConfig;
use symbist::stimulus::StimulusSpec;
use symbist_adc::{BlockKind, SarAdc};
use symbist_defects::{run_campaign, CampaignOptions, DefectUniverse, LikelihoodModel};

fn main() {
    // Ablation 1: stimulus DC value.
    println!("Ablation 1: SC-array coverage vs stimulus ΔIN\n");
    println!("{:>8} {:>14}", "ΔIN (V)", "L-W coverage");
    for din in [0.0, 0.05, 0.2] {
        let xc = ExperimentConfig {
            stimulus: StimulusSpec::new(din),
            ..Default::default()
        };
        let engine = xc.build_engine();
        let adc = SarAdc::new(xc.adc.clone());
        let uni = DefectUniverse::enumerate(&adc, &LikelihoodModel::default())
            .filter_block(BlockKind::ScArray);
        let res = run_campaign(&adc, &uni, &CampaignOptions::default(), |dut| {
            engine.campaign_test(dut)
        })
        .expect("ablation campaign is well-formed");
        println!("{:>8.2} {:>14}", din, res.coverage().to_percent_string());
    }
    println!(
        "\nΔIN = 0 degenerates the charge equation (DAC± = M±): capacitor\n\
         defects become invisible — the stimulus must be nonzero.\n"
    );

    // Ablation 2: stop-on-detection wall time.
    println!("Ablation 2: campaign wall time with/without stop-on-detection\n");
    let xc = ExperimentConfig::default();
    let engine = xc.build_engine();
    let adc = SarAdc::new(xc.adc.clone());
    let uni = DefectUniverse::enumerate(&adc, &LikelihoodModel::default())
        .filter_block(BlockKind::ScArray);
    for stop in [true, false] {
        let t0 = Instant::now();
        let mut cycles_total: u64 = 0;
        for d in uni.iter() {
            let mut dut = adc.clone();
            symbist_adc::fault::Faultable::inject(&mut dut, d.site);
            let r = engine.run(&dut, stop);
            cycles_total += u64::from(r.cycles_run);
        }
        println!(
            "  stop-on-detection = {:<5}  wall {:>6.2} s, {:>7} BIST cycles simulated",
            stop,
            t0.elapsed().as_secs_f64(),
            cycles_total
        );
    }
    println!(
        "\nAs in Tessent DefectSim (§V), the early abort trims both the\n\
         modeled test cycles and the simulation wall time."
    );
}
