//! EXP-TT: paper §IV-5 — test time `6·2⁵·(1/fclk) = 1.23 µs` at
//! `fclk = 156 MHz`, about 16× one conversion.
//!
//! ```sh
//! cargo run --release -p symbist-bench --bin testtime
//! ```

use symbist::session::Schedule;
use symbist::testtime::test_time;
use symbist_bench::standard_config;

fn main() {
    let cfg = standard_config().adc;
    println!(
        "Test-time model (fclk = {} MHz, 12-pulse conversion frame):\n",
        cfg.fclk / 1e6
    );
    println!(
        "{:<12} {:>8} {:>14} {:>16}",
        "schedule", "cycles", "test time", "x one conversion"
    );
    for schedule in [Schedule::Sequential, Schedule::Parallel] {
        let t = test_time(&cfg, schedule);
        println!(
            "{:<12} {:>8} {:>11.3} µs {:>16.1}",
            format!("{schedule:?}"),
            t.cycles,
            t.seconds * 1e6,
            t.conversions_equivalent
        );
    }
    let seq = test_time(&cfg, Schedule::Sequential);
    println!("\nPaper §IV-5: 6·2⁵·(1/fclk) = 1.23 µs, ≈16× one sample conversion.");
    assert!((seq.seconds - 1.23e-6).abs() < 0.01e-6);
    assert!((seq.conversions_equivalent - 16.0).abs() < 1e-9);
    println!(
        "Reproduced exactly: {:.4} µs, {}x.",
        seq.seconds * 1e6,
        seq.conversions_equivalent
    );
}
