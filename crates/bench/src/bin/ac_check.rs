//! EXP-AC (extension): one AC ripple check on the Vcm node recovers the
//! DC-benign decoupling-path defects that dominate the Vcm generator's
//! escapes — a concrete instance of the "other BIST approaches" the
//! paper's Fig. 1 reserves for blocks the symmetries cannot cover.
//!
//! ```sh
//! cargo run --release -p symbist-bench --bin ac_check
//! ```

use symbist::experiments::ac_extension;
use symbist_bench::standard_config;

fn main() {
    let probe = 10e6;
    let res = ac_extension(&standard_config(), probe);
    println!(
        "AC-BIST extension on the Vcm generator ({} defects, probe {} MHz):\n",
        res.simulated,
        probe / 1e6
    );
    println!(
        "  DC invariances only:   {}",
        res.dc_only.to_percent_string()
    );
    println!(
        "  + one AC ripple check: {}",
        res.with_ac.to_percent_string()
    );
    println!("  escapes recovered:     {}", res.recovered);
    println!(
        "\nThe decoupling capacitor and its ESR are invisible at DC (the cap\n\
         blocks it) but define the block's ripple low-pass; probing that\n\
         transfer once closes most of the gap to full coverage."
    );
    assert!(res.with_ac.value > res.dc_only.value);
}
