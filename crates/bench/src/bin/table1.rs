//! EXP-T1: regenerates the paper's Table I — per-block and aggregate
//! Likelihood-Weighted defect coverage of SymBIST on the SAR ADC IP,
//! including #defects, #simulated, and defect-simulation wall time.
//!
//! ```sh
//! cargo run --release -p symbist-bench --bin table1
//! ```
//!
//! Pass `--trace-out PATH` to dump the campaign's captured spans as
//! `chrome://tracing`-compatible NDJSON when the run finishes.

use std::fs;
use std::path::PathBuf;

use symbist::experiments::{table1, Table1Options};
use symbist_bench::standard_config;

fn parse_trace_out() -> Option<PathBuf> {
    let mut trace_out = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--trace-out" {
            match it.next() {
                Some(path) => trace_out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--trace-out requires a value");
                    std::process::exit(2);
                }
            }
        } else {
            eprintln!("unknown flag {flag:?} (usage: table1 [--trace-out PATH])");
            std::process::exit(2);
        }
    }
    trace_out
}

fn main() {
    let trace_out = parse_trace_out();
    let xc = standard_config();
    let opts = Table1Options::default();
    eprintln!(
        "Running the Table I campaign (k = {}, {} calibration samples, {} threads)...",
        xc.k, xc.calibration_samples, xc.threads
    );
    let (table, results) = table1(&xc, &opts);
    println!("\nTABLE I: L-W defect coverage results with SymBIST\n");
    println!("{}", table.to_text());

    let total = results.last().expect("aggregate row present");
    println!(
        "Aggregate: {} of {} sampled defects detected; campaign wall time {:.1} s.",
        total.detected(),
        total.simulated(),
        results
            .iter()
            .map(|r| r.total_wall.as_secs_f64())
            .sum::<f64>()
    );
    println!(
        "

Paper reference (Table I): BandGap 94.22%, Reference Buffer 1%,
SUBDAC1 80.58%±6.68%, SUBDAC2 84.22%±5.89%, SC Array 97.7%,
Vcm Generator 30.88%, Preamplifier 94.12%, Comparator Latch 87.79%,
RS Latch 68.09%, Offset Compensation 15.15%,
Complete A/M-S part 86.96%±3.67%."
    );

    fs::write("table1.csv", table.to_csv()).expect("write table1.csv");
    eprintln!("\nWrote table1.csv");

    if let Some(path) = trace_out {
        let tracer = symbist_obs::tracer();
        let mut out = Vec::new();
        tracer.write_ndjson(&mut out).expect("serialize trace");
        fs::write(&path, out).expect("write trace file");
        eprintln!("Wrote {} trace events to {}", tracer.len(), path.display());
    }
}
