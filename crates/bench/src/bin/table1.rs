//! EXP-T1: regenerates the paper's Table I — per-block and aggregate
//! Likelihood-Weighted defect coverage of SymBIST on the SAR ADC IP,
//! including #defects, #simulated, and defect-simulation wall time.
//!
//! ```sh
//! cargo run --release -p symbist-bench --bin table1
//! cargo run --release -p symbist-bench --bin table1 -- --class-representatives
//! ```
//!
//! `--class-representatives` replaces the LWRS-sampled campaign with the
//! static analyzer's (orbit × defect kind) class partition: one simulated
//! representative per class, a seeded sibling audit on a fraction of the
//! multi-member classes, and per-class extrapolation to the full-universe
//! L-W coverage. Representative/sibling disagreements (class violations)
//! are reported — a nonzero count fails the run.
//!
//! Pass `--trace-out PATH` to dump the campaign's captured spans as
//! `chrome://tracing`-compatible NDJSON when the run finishes.

use std::fs;
use std::path::PathBuf;

use symbist::experiments::{table1, ExperimentConfig, Table1Options};
use symbist_adc::SarAdc;
use symbist_bench::standard_config;
use symbist_defects::{run_class_campaign, ClassCampaignOptions, DefectUniverse, LikelihoodModel};
use symbist_lint::analyze_adc_with_universe;

struct Args {
    trace_out: Option<PathBuf>,
    class_representatives: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        trace_out: None,
        class_representatives: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--trace-out" => match it.next() {
                Some(path) => args.trace_out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--trace-out requires a value");
                    std::process::exit(2);
                }
            },
            "--class-representatives" => args.class_representatives = true,
            _ => {
                eprintln!(
                    "unknown flag {flag:?} \
                     (usage: table1 [--class-representatives] [--trace-out PATH])"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// The `--class-representatives` mode: simulate one defect per static
/// equivalence class and extrapolate, instead of LWRS sampling.
fn class_representatives(xc: &ExperimentConfig) -> bool {
    let engine = xc.build_engine();
    let adc = SarAdc::new(xc.adc.clone());
    let universe = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
    eprintln!(
        "Partitioning the {}-defect universe into symmetry classes...",
        universe.len()
    );
    let analysis = analyze_adc_with_universe(&adc, &universe);
    if analysis.diagnostics.has_errors() {
        eprintln!(
            "static analysis failed — refusing to extrapolate from a broken partition:\n{}",
            analysis.diagnostics.render_text()
        );
        return false;
    }
    let partition = analysis.partition();
    eprintln!(
        "{} classes ({} multi-member); running the representative campaign...",
        partition.len(),
        analysis.multi_member_classes(),
    );
    let res = run_class_campaign(
        &adc,
        &universe,
        &partition,
        &ClassCampaignOptions {
            seed: xc.seed,
            threads: xc.threads,
            ..Default::default()
        },
        |dut| engine.campaign_test(dut),
    )
    .expect("analyzer partition is an exact cover");

    println!("\nTABLE I (class-representative mode): extrapolated L-W coverage\n");
    let (lo, hi) = res.coverage_bounds();
    println!(
        "Simulated {} of {} defects ({} representatives + {} sibling audits); \
         {} simulations saved.",
        res.simulated,
        res.universe_size,
        res.representatives(),
        res.cross_checked(),
        res.defects_saved(),
    );
    println!(
        "Extrapolated coverage: {} (upper bound {}); campaign wall time {:.1} s.",
        lo.to_percent_string(),
        hi.to_percent_string(),
        res.total_wall.as_secs_f64()
    );
    println!(
        "Class violations (representative vs sibling verdict): {}",
        res.violation_count()
    );
    for v in res.violations() {
        let rep = &universe.defects()[v.representative];
        let sib = &universe.defects()[v.sibling.expect("violations have siblings")];
        println!(
            "  class {}: {} ({}) detected={} vs {} detected={}",
            v.class_index,
            rep.component_name,
            rep.site.kind,
            v.outcome.detected(),
            sib.component_name,
            v.sibling_outcome.map(|o| o.detected()).unwrap_or(false),
        );
    }
    res.violation_count() == 0
}

fn main() {
    let args = parse_args();
    let xc = standard_config();
    if args.class_representatives {
        let clean = class_representatives(&xc);
        if let Some(path) = args.trace_out {
            write_trace(&path);
        }
        if !clean {
            std::process::exit(1);
        }
        return;
    }
    let trace_out = args.trace_out;
    let opts = Table1Options::default();
    eprintln!(
        "Running the Table I campaign (k = {}, {} calibration samples, {} threads)...",
        xc.k, xc.calibration_samples, xc.threads
    );
    let (table, results) = table1(&xc, &opts);
    println!("\nTABLE I: L-W defect coverage results with SymBIST\n");
    println!("{}", table.to_text());

    let total = results.last().expect("aggregate row present");
    println!(
        "Aggregate: {} of {} sampled defects detected; campaign wall time {:.1} s.",
        total.detected(),
        total.simulated(),
        results
            .iter()
            .map(|r| r.total_wall.as_secs_f64())
            .sum::<f64>()
    );
    println!(
        "

Paper reference (Table I): BandGap 94.22%, Reference Buffer 1%,
SUBDAC1 80.58%±6.68%, SUBDAC2 84.22%±5.89%, SC Array 97.7%,
Vcm Generator 30.88%, Preamplifier 94.12%, Comparator Latch 87.79%,
RS Latch 68.09%, Offset Compensation 15.15%,
Complete A/M-S part 86.96%±3.67%."
    );

    fs::write("table1.csv", table.to_csv()).expect("write table1.csv");
    eprintln!("\nWrote table1.csv");

    if let Some(path) = trace_out {
        write_trace(&path);
    }
}

fn write_trace(path: &std::path::Path) {
    let tracer = symbist_obs::tracer();
    let mut out = Vec::new();
    tracer.write_ndjson(&mut out).expect("serialize trace");
    fs::write(path, out).expect("write trace file");
    eprintln!("Wrote {} trace events to {}", tracer.len(), path.display());
}
