//! EXP-DIAG (extension): fault diagnosis from SymBIST signatures — the
//! (invariance × counter-code × polarity/severity) pattern localizes a
//! failing part, turning the 1-bit BIST into a debug instrument.
//!
//! ```sh
//! cargo run --release -p symbist-bench --bin diagnose
//! ```

use symbist::diagnosis::{FaultDictionary, Signature};
use symbist_adc::fault::Faultable;
use symbist_adc::SarAdc;
use symbist_bench::standard_config;
use symbist_circuit::rng::Rng;
use symbist_defects::{DefectUniverse, LikelihoodModel};

fn main() {
    let xc = standard_config();
    let engine = xc.build_engine();
    let base = SarAdc::new(xc.adc.clone());
    let universe = DefectUniverse::enumerate(&base, &LikelihoodModel::default());

    // Dictionary over an LWRS sample of the universe.
    let weights: Vec<f64> = universe.iter().map(|d| d.likelihood).collect();
    let mut rng = Rng::seed_from_u64(xc.seed ^ 0xD1A6);
    let dict_idx = rng.weighted_sample_without_replacement(&weights, 80);
    let dict_sites: Vec<_> = dict_idx
        .iter()
        .map(|i| universe.defects()[*i].site)
        .collect();
    eprintln!("Building the fault dictionary (80 defects, full signatures)...");
    let dict = FaultDictionary::build(&engine, &base, &dict_sites);
    let classes = dict.ambiguity_classes();
    println!(
        "Dictionary: {} diagnosable entries ({} escapes dropped); {} signature classes, largest {}",
        dict.len(),
        dict_sites.len() - dict.len(),
        classes.len(),
        classes.last().copied().unwrap_or(0)
    );
    println!(
        "Self-diagnosis block resolution: {:.0}%",
        dict.block_resolution() * 100.0
    );

    // "Field returns": defects NOT in the dictionary.
    println!("\nDiagnosing unseen field returns:");
    let mut shown = 0;
    for i in 0..universe.len() {
        if shown >= 5 || dict_idx.contains(&i) {
            continue;
        }
        let d = &universe.defects()[i];
        let mut dut = base.clone();
        dut.inject(d.site);
        let result = engine.run(&dut, false);
        let observed = Signature::from_result(&result, engine.calibration());
        if observed.is_clean() {
            continue;
        }
        let top = dict.diagnose(&observed, 3);
        println!(
            "\n  actual: {} ({}) [{}]",
            d.component_name, d.site.kind, d.block
        );
        for (rank, c) in top.iter().enumerate() {
            println!(
                "    #{} d={:<3} {} ({}) [{}]",
                rank + 1,
                c.distance,
                c.entry.component,
                c.entry.site.kind,
                c.entry.block
            );
        }
        let hit = top
            .first()
            .map(|c| c.entry.block == d.block.label())
            .unwrap_or(false);
        println!("    → block-level {}", if hit { "HIT" } else { "miss" });
        shown += 1;
    }
    println!(
        "\nSignatures localize most field failures to the right block without\n\
         any extra hardware: the information was in the BIST run all along."
    );
}
