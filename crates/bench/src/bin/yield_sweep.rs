//! EXP-YL (extension of paper §VI): the paper fixes k = 5 "so as to
//! guarantee that yield loss is negligible"; this sweep shows the
//! yield-loss vs window-width trade-off that motivates the choice.
//!
//! ```sh
//! cargo run --release -p symbist-bench --bin yield_sweep
//! ```

use symbist::experiments::yield_sweep;
use symbist_bench::standard_config;

fn main() {
    let xc = standard_config();
    let ks = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
    let instances = 40;
    eprintln!("Sweeping k over {instances} healthy mismatched instances...");
    let points = yield_sweep(&xc, &ks, instances);

    println!("\n{:>5} {:>10} {:>12}", "k", "flagged", "yield loss");
    for p in &points {
        println!(
            "{:>5.1} {:>7}/{:<3} {:>11.1}%",
            p.k,
            p.flagged,
            p.instances,
            p.yield_loss() * 100.0
        );
    }
    let at5 = points.iter().find(|p| p.k == 5.0).expect("k = 5 swept");
    println!(
        "\nPaper §VI: k = 5 chosen so yield loss is negligible. \
         Reproduced: {}/{} healthy devices flagged at k = 5.",
        at5.flagged, at5.instances
    );
}
