//! EXP-TC (extension): temperature sweep of the bandgap block — evidence
//! that the bias substrate underneath Table I is a genuine first-order-
//! compensated bandgap, which matters for the paper's functional-safety
//! motivation (in-field BIST must hold its windows over temperature).
//!
//! ```sh
//! cargo run --release -p symbist-bench --bin bandgap_tc
//! ```

use symbist_adc::bandgap::Bandgap;
use symbist_bench::standard_config;

fn main() {
    let bg = Bandgap::new(&standard_config().adc);
    println!("Bandgap output vs junction temperature:\n");
    println!("{:>8} {:>12}", "T (°C)", "VBG (V)");
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for t in (-40..=125).step_by(15) {
        let v = bg.solve_at(t as f64).expect("nominal bandgap solves").vbg;
        min = min.min(v);
        max = max.max(v);
        let bar: String =
            std::iter::repeat_n('#', ((v - 1.15) * 2000.0).max(0.0) as usize).collect();
        println!("{:>8} {:>12.5}  {bar}", t, v);
    }
    let v25 = bg.solve_at(25.0).expect("nominal bandgap solves").vbg;
    let ppm_per_k = (max - min) / v25 / 165.0 * 1e6;
    println!(
        "\nSpan {:.2} mV over −40…125 °C around {:.4} V → box TC ≈ {:.0} ppm/°C.",
        (max - min) * 1e3,
        v25,
        ppm_per_k
    );
    println!(
        "A raw VBE drifts ≈ −2 mV/°C (~3000 ppm/°C); the ΔVBE/R1 PTAT term\n\
         cancels it to first order, leaving the classic shallow parabola."
    );
    assert!(
        ppm_per_k < 500.0,
        "TC {ppm_per_k} ppm/°C implausible for a bandgap"
    );
}
