//! EXP-BASE: paper §VI comparison context — conventional defect-oriented
//! DC tests on two "considerably smaller industrial A/M-S IPs": a bandgap
//! (74 % in \[9\]) and a power-on-reset circuit (51 % in \[9\]).
//!
//! ```sh
//! cargo run --release -p symbist-bench --bin baselines
//! ```

use symbist::experiments::baselines;
use symbist_bench::standard_config;

fn main() {
    let res = baselines(&standard_config());
    println!("Baseline IPs under conventional defect-oriented tests:\n");
    println!("{:<24} {:>14} {:>14}", "IP", "this repo", "paper ([9])");
    println!(
        "{:<24} {:>14} {:>14}",
        "Bandgap (DC range)",
        res.bandgap.to_percent_string(),
        "74%"
    );
    println!(
        "{:<24} {:>14} {:>14}",
        "Power-on-reset (trip)",
        res.por.to_percent_string(),
        "51%"
    );
    println!(
        "\nShape check: bandgap above POR (timing-path defects escape a DC\n\
         trip test), both limited by high-likelihood DC-invisible defects."
    );
    assert!(res.bandgap.value > res.por.value);
}
