//! EXP-ESC (extension): the analysis the paper calls "tedious and
//! time-consuming... out of the scope of this paper" — what fraction of
//! SymBIST's escapes violate at least one functional specification
//! (after Gutiérrez Gil et al. \[14\]).
//!
//! ```sh
//! cargo run --release -p symbist-bench --bin escapes
//! ```

use symbist::escape::SpecLimits;
use symbist::experiments::escapes_experiment;
use symbist_bench::standard_config;

fn main() {
    let xc = standard_config();
    let limits = SpecLimits::default();
    let sample = 120;
    eprintln!("Campaigning {sample} LWRS-sampled defects, then spec-testing the escapes...");
    let (report, escapes) = escapes_experiment(&xc, sample, &limits);

    println!("\nEscape analysis over a {sample}-defect LWRS sample:");
    println!("  escapes analysed:          {}", report.analysed);
    println!("  violating ≥1 spec:         {}", report.spec_violating);
    println!("  functionally benign:       {}", report.benign);
    println!(
        "  spec-violating fraction:   {:.1}%",
        report.violating_fraction() * 100.0
    );
    println!(
        "\nSpec limits: |offset| ≤ {} codes, |gain error| ≤ {} codes, step error ≤ {} codes.",
        limits.offset_codes, limits.gain_codes, limits.step_codes
    );
    println!(
        "Interpretation: benign escapes (e.g. decoupling-capacitor opens) cost\n\
         nothing in the field; spec-violating escapes (e.g. reference-buffer\n\
         offsets, which every symmetry tracks) are the true test-escape risk\n\
         the paper flags for future work. {} sites analysed.",
        escapes.len()
    );
}
