//! EXP-FLD (extension): in-field periodic BIST — the functional-safety
//! use the paper's introduction motivates. Sweeps the BIST scheduling
//! period and reports diagnostic coverage and within-FTTI detection of
//! latent defects.
//!
//! ```sh
//! cargo run --release -p symbist-bench --bin field_safety
//! ```

use symbist::field::{field_campaign, MissionProfile};
use symbist_adc::SarAdc;
use symbist_bench::standard_config;
use symbist_circuit::rng::Rng;
use symbist_defects::{DefectUniverse, LikelihoodModel};

fn main() {
    let xc = standard_config();
    let engine = xc.build_engine();
    let base = SarAdc::new(xc.adc.clone());
    let universe = DefectUniverse::enumerate(&base, &LikelihoodModel::default());

    // Latent population: an LWRS sample of the universe.
    let weights: Vec<f64> = universe.iter().map(|d| d.likelihood).collect();
    let mut rng = Rng::seed_from_u64(xc.seed ^ 0xF1E1D);
    let idx = rng.weighted_sample_without_replacement(&weights, 60);
    let sites: Vec<_> = idx.iter().map(|i| universe.defects()[*i].site).collect();

    let frame = xc.adc.conversion_time();
    println!(
        "Mission model: conversion frame {:.1} ns, BIST occupies 16 frames ({:.2} µs).",
        frame * 1e9,
        16.0 * frame * 1e6
    );
    println!("Latent population: 60 LWRS-sampled defects; FTTI = 1 ms.\n");
    println!(
        "{:>14} {:>12} {:>14} {:>16} {:>14}",
        "BIST period", "duty cycle", "diag coverage", "within FTTI", "worst latency"
    );

    let ftti_s = 1e-3;
    for period_s in [100e-6, 1e-3, 10e-3, 100e-3] {
        let profile = MissionProfile::from_times(&xc.adc, period_s, ftti_s);
        let report = field_campaign(
            &engine,
            &base,
            &sites,
            profile,
            profile.bist_period_frames * 1000,
            xc.seed,
        );
        let duty = 16.0 / profile.bist_period_frames as f64;
        println!(
            "{:>11.1} µs {:>11.3}% {:>13.1}% {:>15.1}% {:>11.2} ms",
            period_s * 1e6,
            duty * 100.0,
            report.diagnostic_coverage * 100.0,
            report.within_ftti_fraction * 100.0,
            report
                .worst_latency_frames
                .map(|f| f as f64 * frame * 1e3)
                .unwrap_or(f64::NAN)
        );
    }
    println!(
        "\nDiagnostic coverage is schedule-independent (it is the test's defect\n\
         coverage); the FTTI column is what the scheduling period buys. At a\n\
         1 ms period the BIST costs 0.12% of conversion bandwidth."
    );
}
