//! EXP-DIG (extension): the other half of the paper's Fig. 1 — the purely
//! digital blocks (SAR Control, Phase Generator, SAR Logic) "are tested
//! with standard digital BIST, i.e. with scan insertion and ... ATPG".
//! This binary runs that flow on the gate-level SAR digital core: random
//! patterns with fault dropping, PODEM top-up, full-scan protocol, and
//! the combined analog + digital test-time budget.
//!
//! ```sh
//! cargo run --release -p symbist-bench --bin digital_bist
//! ```

use symbist::session::Schedule;
use symbist::testtime::test_time;
use symbist_bench::standard_config;
use symbist_digital::atpg::{run_atpg, AtpgOptions};
use symbist_digital::sar_gates::{build_sar_logic, run_conversion};
use symbist_digital::scan::ScanChain;

fn main() {
    let (circuit, handles) = build_sar_logic();
    println!(
        "Gate-level SAR digital core: {} gates, {} flip-flops, {} nets",
        circuit.gates().len(),
        circuit.ffs().len(),
        circuit.net_count()
    );

    // Functional cross-check against the binary-search specification.
    for target in [0u16, 300, 613, 1023] {
        let got = run_conversion(&circuit, &handles, |trial| trial > target);
        assert_eq!(got, target);
    }
    println!("Functional cross-check: binary search exact for all probed targets.");

    // Scan + ATPG.
    let result = run_atpg(&circuit, &AtpgOptions::default());
    println!(
        "\nStuck-at ATPG: {} faults, {} detected, {} untestable, {} aborted",
        result.total_faults, result.detected, result.untestable, result.aborted
    );
    println!(
        "  coverage:          {:.2}%  (testable: {:.2}%)",
        result.coverage() * 100.0,
        result.testable_coverage() * 100.0
    );
    println!("  pattern count:     {}", result.patterns.len());

    let chain = ScanChain::new(&circuit);
    let cfg = standard_config().adc;
    let scan_time = chain.test_time(result.patterns.len(), cfg.fclk);
    println!(
        "  scan test time:    {} cycles = {:.2} µs (chain length {})",
        scan_time.cycles,
        scan_time.seconds * 1e6,
        scan_time.chain_length
    );

    let analog = test_time(&cfg, Schedule::Sequential);
    println!(
        "\nCombined self-test budget: analog SymBIST {:.2} µs + digital scan {:.2} µs = {:.2} µs",
        analog.seconds * 1e6,
        scan_time.seconds * 1e6,
        (analog.seconds + scan_time.seconds) * 1e6
    );
    assert!(result.testable_coverage() > 0.99);
}
