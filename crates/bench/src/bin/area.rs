//! EXP-AREA: paper §IV-4 — "the area overhead of the SymBIST
//! infrastructure is estimated to be less than 5%."
//!
//! ```sh
//! cargo run --release -p symbist-bench --bin area
//! ```

use symbist::area::area_report;
use symbist::session::Schedule;
use symbist_adc::SarAdc;
use symbist_bench::standard_config;

fn main() {
    let adc = SarAdc::new(standard_config().adc);
    println!("Area model (layout units; MOS ≈ 1):\n");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>10}",
        "schedule", "IP analog", "IP digital", "BIST", "overhead"
    );
    for schedule in [Schedule::Sequential, Schedule::Parallel] {
        let rep = area_report(&adc, schedule);
        println!(
            "{:<12} {:>12.0} {:>12.0} {:>12.0} {:>9.2}%",
            format!("{schedule:?}"),
            rep.ip_analog,
            rep.ip_digital,
            rep.bist,
            rep.overhead * 100.0
        );
    }
    let seq = area_report(&adc, Schedule::Sequential);
    assert!(seq.overhead < 0.05);
    println!(
        "\nPaper §IV-4: < 5% with the sequential (single-comparator) scheme. \
         Reproduced: {:.2}%.",
        seq.overhead * 100.0
    );
}
