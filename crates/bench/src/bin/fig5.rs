//! EXP-F5: regenerates the paper's Fig. 5 — the invariance-I3 signal
//! `DAC+ + DAC−` versus time over the counter stimulus, for the
//! defect-free DUT and three defect cases, with the ±δ window. Emits
//! `fig5.csv` with the full waveforms for plotting.
//!
//! ```sh
//! cargo run --release -p symbist-bench --bin fig5
//! ```

use std::fmt::Write as _;
use std::fs;

use symbist::experiments::fig5;
use symbist_bench::standard_config;

fn main() {
    let data = fig5(&standard_config());
    println!(
        "FIG. 5: defect detection by checking invariance in Eq. (3)\n\
         window: {:.3} V ± {:.1} mV (k = 5, clocked checks at settled instants)\n",
        data.nominal,
        data.delta * 1e3
    );

    for case in &data.cases {
        let hits = case.detected.iter().filter(|d| **d).count();
        let verdict = match hits {
            0 => "not detected".to_string(),
            32 => "detected during the entire test duration".to_string(),
            n => format!("detected during {n}/32 specific conversion periods"),
        };
        println!("{:<42} {}", case.label, verdict);
        // Per-code deviation strip (paper-style visual, coarse).
        let strip: String = case
            .detected
            .iter()
            .map(|d| if *d { '#' } else { '.' })
            .collect();
        println!("  codes 0..32: {strip}");
    }

    // CSV: time axis + one sum-trace column per case + window rows.
    let mut csv = String::from("time_s");
    for case in &data.cases {
        let _ = write!(csv, ",{}", case.label.replace([' ', '(', ')'], "_"));
    }
    csv.push('\n');
    let times = data.cases[0].traces.sum.times().to_vec();
    for (i, t) in times.iter().enumerate() {
        let _ = write!(csv, "{t:.6e}");
        for case in &data.cases {
            let v = case.traces.sum.values().get(i).copied().unwrap_or(f64::NAN);
            let _ = write!(csv, ",{v:.6}");
        }
        csv.push('\n');
    }
    fs::write("fig5.csv", &csv).expect("write fig5.csv");

    // SVG rendition with the ±δ comparison band, in the style of the
    // paper's figure.
    let mut chart = symbist_analysis::plot::Chart::new(
        "Fig. 5 — invariance Eq. (3): DAC+ + DAC− over the counter stimulus",
        "time (s)",
        "DAC+ + DAC− (V)",
    );
    let palette = ["#333333", "#d62728", "#1f77b4", "#2ca02c"];
    for (case, color) in data.cases.iter().zip(palette) {
        chart.add_series(symbist_analysis::plot::Series::new(
            case.label.clone(),
            case.traces.sum.times().to_vec(),
            case.traces.sum.values().to_vec(),
            color,
        ));
    }
    chart.set_band(symbist_analysis::plot::Band {
        lo: data.nominal - data.delta,
        hi: data.nominal + data.delta,
        color: "#888888".into(),
        label: format!("comparison window ±{:.1} mV (k = 5)", data.delta * 1e3),
    });
    fs::write("fig5.svg", chart.to_svg()).expect("write fig5.svg");

    println!(
        "\nWrote fig5.csv and fig5.svg ({} samples/curve). Window band: [{:.4}, {:.4}] V.",
        times.len(),
        data.nominal - data.delta,
        data.nominal + data.delta
    );
    println!(
        "Paper shape: Vcm-generator defect detectable during the entire test;\n\
         SUBDAC1 and SC-array defects only during specific conversion periods;\n\
         switching glitches excluded by the clocked comparator."
    );
}
