//! EXP-FUNC (extension): the comparison the paper's introduction frames —
//! defect-oriented SymBIST versus the *functional* BIST tradition
//! (sinusoidal histogram linearity test, after \[4\]). Same defect sample,
//! two tests: coverage and test time head-to-head.
//!
//! ```sh
//! cargo run --release -p symbist-bench --bin functional_vs_symbist
//! ```

use symbist::functional::HistogramBist;
use symbist::session::Schedule;
use symbist::testtime::test_time;
use symbist_adc::SarAdc;
use symbist_bench::standard_config;
use symbist_defects::{run_campaign, CampaignOptions, DefectUniverse, LikelihoodModel};

fn main() {
    let xc = standard_config();
    let engine = xc.build_engine();
    let functional = HistogramBist::default();
    let base = SarAdc::new(xc.adc.clone());
    let universe = DefectUniverse::enumerate(&base, &LikelihoodModel::default());

    let sample = 48;
    eprintln!("Campaigning {sample} LWRS defects through BOTH tests (functional is slow)...");
    let opts = CampaignOptions {
        sample_size: Some(sample),
        seed: xc.seed ^ 0xF0C,
        threads: xc.threads,
        ..Default::default()
    };
    let sym = run_campaign(&base, &universe, &opts, |dut| engine.campaign_test(dut))
        .expect("SymBIST campaign is well-formed");
    let fun = run_campaign(&base, &universe, &opts, |dut| functional.campaign_test(dut))
        .expect("functional campaign is well-formed");

    let cfg = &xc.adc;
    let t_sym = test_time(cfg, Schedule::Sequential).seconds;
    let t_fun = functional.test_time(cfg);
    println!("\n{:<28} {:>16} {:>16}", "", "SymBIST", "functional [4]");
    println!(
        "{:<28} {:>16} {:>16}",
        "philosophy", "defect-oriented", "performance"
    );
    println!(
        "{:<28} {:>16} {:>16}",
        "L-W coverage (same sample)",
        sym.coverage().to_percent_string(),
        fun.coverage().to_percent_string()
    );
    println!(
        "{:<28} {:>13.2} µs {:>13.2} µs",
        "on-chip test time",
        t_sym * 1e6,
        t_fun * 1e6
    );
    println!(
        "{:<28} {:>16} {:>16}",
        "stimulus", "digital counter", "precise sine"
    );
    println!(
        "{:<28} {:>15.1}s {:>15.1}s",
        "defect-sim wall time",
        sym.total_wall.as_secs_f64(),
        fun.total_wall.as_secs_f64()
    );

    // Where the two tests disagree.
    let mut only_sym = 0;
    let mut only_fun = 0;
    for (a, b) in sym.records.iter().zip(&fun.records) {
        match (a.outcome.detected(), b.outcome.detected()) {
            (true, false) => only_sym += 1,
            (false, true) => only_fun += 1,
            _ => {}
        }
    }
    println!(
        "\nDisagreements on the sample: {only_sym} defects only SymBIST catches, \
         {only_fun} only the functional test catches."
    );
    println!(
        "The paper's argument in numbers: higher coverage at {}x less test\n\
         time, a trivial (all-digital) stimulus instead of a precise on-chip\n\
         sine, and — decisively — a {}x faster defect-simulation campaign,\n\
         which is what made Table I affordable at all (functional defect\n\
         simulation of a full ADC is 'typically in the order of hours' per\n\
         the paper's introduction).",
        (t_fun / t_sym).round(),
        (fun.total_wall.as_secs_f64() / sym.total_wall.as_secs_f64()).round()
    );
}
