//! Runs the engine and service benchmark suites and writes
//! `BENCH_engine.json` — the machine-readable perf record (dense vs
//! sparse timings, derived speedup ratios, and job-service throughput)
//! tracked across commits.
//!
//! ```text
//! cargo run --release -p symbist-bench --bin bench_engine [-- --quick] [--no-obs] [out.json]
//! ```
//!
//! `--no-obs` disables the observability layer globally for the whole
//! run, giving uninstrumented baseline numbers. The default (obs on)
//! still measures both sides of the `transient_rc_1000_steps/obs` vs
//! `/no_obs` pair by toggling the layer around that one benchmark; its
//! derived `obs_overhead_pct` is the CI gate for the ≤ 3 % budget.

use symbist_bench::{engine_suite, harness::Harness, service_suite};

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_engine.json");
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else if arg == "--no-obs" {
            symbist_obs::set_enabled(false);
        } else {
            out_path = arg;
        }
    }
    let mut h = if quick {
        Harness::quick()
    } else {
        Harness::new()
    };
    engine_suite::run(&mut h);
    service_suite::run(&mut h);
    let mut derived = engine_suite::derived(&h);
    derived.extend(service_suite::derived(&h));
    print!("{}", h.report());
    for (name, value) in &derived {
        println!("{name}: {value:.2}");
    }
    let json = h.to_json("engine", &derived);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
