//! The engine benchmark suite, shared between `benches/engine.rs` (human
//! run via `cargo bench`) and the `bench_engine` binary (machine-readable
//! `BENCH_engine.json` for tracking speedups across commits).
//!
//! Dense-vs-sparse pairs are benchmarked on the two hot shapes of the
//! SymBIST experiments: the reference-ladder DC solve (the per-tap-code
//! solve inside `refnet`) and the repeated transient step, plus the full
//! 10-bit SAR conversion that composes them.

use std::sync::OnceLock;

use crate::harness::Harness;
use symbist_adc::{AdcConfig, SarAdc};
use symbist_circuit::dc::{set_thread_default_engine, DcOptions, DcSolver, EngineChoice};
use symbist_circuit::matrix::Matrix;
use symbist_circuit::netlist::{MosPolarity, Netlist, NodeId};
use symbist_circuit::rng::Rng;
use symbist_circuit::sparse::{Numeric, Symbolic};
use symbist_circuit::transient::{TransientOptions, TransientSim};

/// Paired obs-on/obs-off overhead on the 1000-step RC transient,
/// measured by `run` and read back by `derived`.
static OBS_OVERHEAD_PCT: OnceLock<f64> = OnceLock::new();

fn solver(engine: EngineChoice) -> DcSolver {
    DcSolver::with_options(DcOptions {
        engine,
        ..Default::default()
    })
}

/// A 32-segment 250 Ω reference ladder with tap loads — the same topology
/// the SAR ADC's `refnet` solves once per tap code.
fn ladder_netlist() -> Netlist {
    let mut nl = Netlist::new();
    let top = nl.node("top");
    nl.vsource(top, Netlist::GND, 1.2);
    let mut prev = top;
    let mut taps: Vec<NodeId> = Vec::new();
    for i in 0..32 {
        let n = nl.node(&format!("tap{i}"));
        nl.resistor(prev, n, 250.0);
        taps.push(n);
        prev = n;
    }
    nl.resistor(prev, Netlist::GND, 250.0);
    for (i, tap) in taps.iter().enumerate() {
        if i % 4 == 0 {
            nl.resistor(*tap, Netlist::GND, 1e6);
        }
    }
    nl
}

/// Runs the whole suite into `h`.
pub fn run(h: &mut Harness) {
    // --- raw linear algebra: dense LU vs sparse refactor+solve ---------
    for n in [8usize, 16, 32, 64] {
        let mut rng = Rng::seed_from_u64(1);
        let mut a = Matrix::zeros(n, n);
        for r in 0..n {
            for col in 0..n {
                a.set(r, col, rng.uniform(-1.0, 1.0));
            }
            a.add(r, r, n as f64);
        }
        let b: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        h.bench(&format!("lu_solve/{n}"), || a.solve(&b).unwrap());
    }

    // Sparse kernel on a tridiagonal system (the ladder's matrix shape):
    // symbolic analysis is done once, the timed loop is refactor + solve,
    // exactly what repeated Newton/transient iterations pay.
    {
        let n = 64usize;
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i));
            if i + 1 < n {
                entries.push((i, i + 1));
                entries.push((i + 1, i));
            }
        }
        let sym = Symbolic::analyze(n, &entries);
        let mut vals = sym.zero_values();
        for i in 0..n {
            *sym.value_mut(&mut vals, i, i) = 4.0;
            if i + 1 < n {
                *sym.value_mut(&mut vals, i, i + 1) = -1.0;
                *sym.value_mut(&mut vals, i + 1, i) = -1.0;
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut num = Numeric::new(&sym);
        h.bench("sparse_refactor_solve/64", || {
            num.refactor(&sym, &vals).unwrap();
            num.solve(&sym, &b)
        });
    }

    // --- ladder DC: the refnet per-code solve, dense vs sparse ---------
    let ladder = ladder_netlist();
    h.bench("ladder_dc/dense", || {
        solver(EngineChoice::Dense).solve(&ladder).unwrap()
    });
    h.bench("ladder_dc/sparse", || {
        solver(EngineChoice::Sparse).solve(&ladder).unwrap()
    });

    // --- nonlinear Newton: diode + MOS, bandgap-branch size ------------
    {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let a = nl.node("a");
        let k = nl.node("k");
        nl.vsource(vdd, Netlist::GND, 1.8);
        nl.resistor(vdd, a, 10e3);
        nl.diode(a, k, 1e-15, 1.0);
        nl.resistor(k, Netlist::GND, 5e3);
        nl.mosfet(a, k, Netlist::GND, MosPolarity::Nmos, 0.4, 1e-4, 0.01);
        let dc = DcSolver::new();
        h.bench("dc_newton_diode_mos", || dc.solve(&nl).unwrap());
    }

    // --- transient: 1000 RC steps, dense vs sparse ---------------------
    {
        let mut nl = Netlist::new();
        let s = nl.node("s");
        let o = nl.node("o");
        nl.vsource(s, Netlist::GND, 1.0);
        nl.resistor(s, o, 1e3);
        nl.capacitor(o, Netlist::GND, 1e-9);
        let run = |engine: EngineChoice| {
            let mut sim = TransientSim::new(
                &nl,
                TransientOptions {
                    dt: 1e-9,
                    dc: DcOptions {
                        engine,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            )
            .unwrap();
            for _ in 0..1000 {
                sim.step(&nl).unwrap();
            }
            sim.voltage(o)
        };
        h.bench("transient_rc_1000_steps/dense", || run(EngineChoice::Dense));
        h.bench("transient_rc_1000_steps/sparse", || {
            run(EngineChoice::Sparse)
        });

        // --- observability overhead on the hottest loop ----------------
        // The same 1000-step sparse transient with the obs layer live vs
        // globally disabled; the derived `obs_overhead_pct` is the CI
        // gate for the "metrics cost ≤ 3 %" budget. Sequential whole-
        // bench timing lets machine drift dwarf a sub-3 % signal, so the
        // two sides are measured *paired*: each round times them back to
        // back (alternating order to cancel ordering bias) and yields one
        // obs/off ratio; the reported overhead is the median ratio, which
        // is immune to slow drift and to outlier rounds alike.
        let mut ratios = Vec::new();
        const ROUNDS: usize = 60;
        const ITERS: usize = 8;
        for round in 0..ROUNDS {
            let order = if round % 2 == 0 {
                [true, false]
            } else {
                [false, true]
            };
            let mut timed = [0.0f64; 2]; // [obs, off]
            for on in order {
                let prev = symbist_obs::set_enabled(on);
                let start = std::time::Instant::now();
                for _ in 0..ITERS {
                    std::hint::black_box(run(EngineChoice::Sparse));
                }
                timed[usize::from(!on)] = start.elapsed().as_secs_f64();
                symbist_obs::set_enabled(prev);
            }
            ratios.push(timed[0] / timed[1]);
        }
        ratios.sort_by(f64::total_cmp);
        let median = ratios[ROUNDS / 2];
        let _ = OBS_OVERHEAD_PCT.set((median - 1.0) * 100.0);
    }

    // --- ADC-level composites: the full 10-bit SAR conversion -----------
    // The solvers are buried inside the ADC models, so the thread-default
    // override flips the whole stack between the engines.
    let adc = SarAdc::new(AdcConfig::default());
    let prev = set_thread_default_engine(EngineChoice::Dense);
    h.bench("sar_conversion_10bit/dense", || adc.convert(0.123));
    set_thread_default_engine(EngineChoice::Sparse);
    h.bench("sar_conversion_10bit/sparse", || adc.convert(0.123));
    set_thread_default_engine(prev);
    h.bench("adc_symbist_observations", || adc.symbist_observations(0.2));
}

/// Derived dense-over-sparse speedup ratios for the JSON report.
pub fn derived(h: &Harness) -> Vec<(&'static str, f64)> {
    let mut out = Vec::new();
    if let Some(s) = h.speedup("ladder_dc/dense", "ladder_dc/sparse") {
        out.push(("ladder_dc_speedup", s));
    }
    if let Some(s) = h.speedup(
        "transient_rc_1000_steps/dense",
        "transient_rc_1000_steps/sparse",
    ) {
        out.push(("transient_rc_1000_steps_speedup", s));
    }
    if let Some(s) = h.speedup("sar_conversion_10bit/dense", "sar_conversion_10bit/sparse") {
        out.push(("sar_conversion_speedup", s));
    }
    if let Some(pct) = OBS_OVERHEAD_PCT.get() {
        out.push(("obs_overhead_pct", *pct));
    }
    out
}
