//! Service throughput benchmarks: end-to-end job round-trips and
//! backpressure latency through the real TCP/HTTP stack of
//! `symbist-service`, on the deterministic synthetic backend (so the
//! numbers track the service machinery, not simulation cost).
//!
//! Shares `BENCH_engine.json` with the engine suite via the `bench_engine`
//! binary; derived entries report jobs/sec and the cost of bouncing off a
//! saturated queue.

use std::sync::Arc;
use std::time::Duration;

use symbist_service::backend::{Gate, SyntheticBackend};
use symbist_service::client::{Client, ClientError, ServiceError};
use symbist_service::http::{Server, ServiceConfig};
use symbist_service::spec::JobSpec;

use crate::harness::Harness;

/// Runs the service suite into `h`.
pub fn run(h: &mut Harness) {
    // --- end-to-end job round-trip ------------------------------------
    // submit over HTTP → campaign runs → NDJSON stream drains to the
    // terminal state. Streaming (not polling) ends the iteration at the
    // exact completion instant, so the measurement is pure service+
    // campaign latency.
    {
        let server = Server::start(
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
            Arc::new(SyntheticBackend::new(4)),
        )
        .expect("bench server");
        let client = Client::builder()
            .base_url(server.addr().to_string())
            .build();
        h.bench("service/job_roundtrip", || {
            let id = client.submit(&JobSpec::default()).expect("submit");
            let mut records = 0usize;
            for record in client.stream_results(id).expect("stream") {
                record.expect("record");
                records += 1;
            }
            records
        });
        h.bench("service/healthz_roundtrip", || {
            client.health().expect("healthz")
        });
        h.bench("service/status_roundtrip", || {
            client.status(1).expect("status")
        });
        server.request_shutdown();
        server.wait();
    }

    // --- queue-saturation latency -------------------------------------
    // A wedged worker plus a full queue: every submit bounces with 503.
    // The measured time is the full refusal round-trip — what a client
    // pays to discover backpressure.
    {
        let gate = Gate::new();
        gate.hold();
        let server = Server::start(
            ServiceConfig {
                queue_capacity: 1,
                workers: 1,
                ..ServiceConfig::default()
            },
            Arc::new(SyntheticBackend::new(2).with_gate(Arc::clone(&gate))),
        )
        .expect("bench server");
        let client = Client::builder()
            .base_url(server.addr().to_string())
            .build();
        let first = client.submit(&JobSpec::default()).expect("first job");
        // Wait for the worker to claim it, then fill the single queue slot
        // so the saturated state is stable for the whole measurement.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let running = client
                .stats()
                .ok()
                .and_then(|s| s.get("running").and_then(|v| v.as_u64()))
                .unwrap_or(0);
            if running >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "worker never claimed job {first}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        client.submit(&JobSpec::default()).expect("fills the queue");
        h.bench("service/queue_saturated_503", || {
            match client.submit(&JobSpec::default()) {
                Err(ClientError::Service(ServiceError::QueueFull { .. })) => {}
                other => panic!("expected queue_full under saturation, got {other:?}"),
            }
        });
        gate.release();
        server.request_shutdown();
        server.wait();
    }
}

/// Derived service-throughput entries for the JSON report.
pub fn derived(h: &Harness) -> Vec<(&'static str, f64)> {
    let mut out = Vec::new();
    if let Some(r) = h.result("service/job_roundtrip") {
        out.push(("service_jobs_per_sec", 1e9 / r.median_ns));
    }
    if let Some(r) = h.result("service/queue_saturated_503") {
        out.push(("service_queue_saturation_latency_us", r.median_ns / 1e3));
    }
    out
}
