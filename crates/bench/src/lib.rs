//! # symbist-bench — benchmark harness and experiment regeneration
//!
//! Two kinds of targets:
//!
//! * **Experiment binaries** (`src/bin/`): regenerate every table and
//!   figure of the paper — run them with
//!   `cargo run --release -p symbist-bench --bin <name>`:
//!
//!   | binary | paper artefact |
//!   |---|---|
//!   | `table1` | Table I (per-block L-W defect coverage) |
//!   | `fig5` | Fig. 5 (invariance-I3 waveform, 4 cases + window) |
//!   | `testtime` | §IV-5 (1.23 µs, 16× one conversion) |
//!   | `area` | §IV-4 (< 5 % overhead) |
//!   | `yield_sweep` | §VI (k = 5 yield-loss justification; extension) |
//!   | `baselines` | §VI comparison IPs (bandgap 74 %, POR 51 % in \[9\]) |
//!   | `escapes` | §VI follow-up: spec-violating escapes (extension) |
//!
//! * **Benches** (`benches/`, plain `harness = false` programs on the
//!   in-repo [`harness`]): micro/meso performance of the simulation
//!   substrate (`engine`) and throughput of the experiment pipeline
//!   stages (`experiments`) — run with `cargo bench`. The `bench_engine`
//!   binary runs the same [`engine_suite`] plus the [`service_suite`]
//!   (job-service throughput and backpressure latency) and writes the
//!   results to `BENCH_engine.json` for machine consumption.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine_suite;
pub mod harness;
pub mod service_suite;

use symbist::experiments::ExperimentConfig;

/// The experiment configuration shared by all regeneration binaries so
/// their outputs are mutually consistent (same seed, same calibration).
pub fn standard_config() -> ExperimentConfig {
    ExperimentConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_config_is_paper_config() {
        let xc = standard_config();
        assert_eq!(xc.k, 5.0);
        assert_eq!(xc.adc.bits, 10);
        assert!((xc.adc.fclk - 156e6).abs() < 1.0);
    }
}
