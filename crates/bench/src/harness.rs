//! Minimal self-contained benchmark harness.
//!
//! The workspace builds fully offline, so instead of an external bench
//! framework this module provides the small subset actually needed here:
//! warmup, batch-size calibration to a target measurement time, robust
//! (median-of-batches) per-iteration timing, a fixed-width report, and
//! machine-readable JSON for tracking the perf trajectory across PRs.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Median per-iteration time in nanoseconds (median over batches).
    pub median_ns: f64,
    /// Mean per-iteration time in nanoseconds (mean over batches).
    pub mean_ns: f64,
    /// Fastest batch's per-iteration time in nanoseconds.
    pub min_ns: f64,
    /// Iterations per measured batch.
    pub iters_per_batch: u64,
    /// Number of measured batches.
    pub batches: usize,
}

/// Benchmark collector: run closures, accumulate [`BenchResult`]s.
#[derive(Debug)]
pub struct Harness {
    results: Vec<BenchResult>,
    /// Target wall time per measured batch, in seconds.
    batch_target_s: f64,
    /// Number of measured batches per benchmark.
    batches: usize,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// A harness with the default measurement plan (~7 batches of ~25 ms).
    pub fn new() -> Self {
        Self {
            results: Vec::new(),
            batch_target_s: 0.025,
            batches: 7,
        }
    }

    /// A faster plan for smoke-testing the benches themselves.
    pub fn quick() -> Self {
        Self {
            results: Vec::new(),
            batch_target_s: 0.002,
            batches: 3,
        }
    }

    /// Benchmarks `f`, recording its per-iteration time under `name`.
    ///
    /// The return value of `f` is passed through [`black_box`] so the work
    /// cannot be optimized away.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &BenchResult {
        // Warmup + calibration: double the batch size until one batch takes
        // at least the target time.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= self.batch_target_s || iters >= 1 << 30 {
                break;
            }
            // Jump close to the target once we have a usable estimate.
            iters = if elapsed > 1e-4 {
                ((iters as f64 * self.batch_target_s / elapsed) as u64)
                    .clamp(iters + 1, iters * 100)
            } else {
                iters * 10
            };
        }

        let mut per_iter: Vec<f64> = (0..self.batches)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_secs_f64() * 1e9 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        self.results.push(BenchResult {
            name: name.to_string(),
            median_ns: median,
            mean_ns: mean,
            min_ns: per_iter[0],
            iters_per_batch: iters,
            batches: self.batches,
        });
        self.results.last().expect("just pushed")
    }

    /// All results so far, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// The result with the given name, if that benchmark has run.
    pub fn result(&self, name: &str) -> Option<&BenchResult> {
        self.results.iter().find(|r| r.name == name)
    }

    /// Ratio `median(a) / median(b)` — e.g. dense-over-sparse speedup.
    ///
    /// Returns `None` unless both benchmarks have run.
    pub fn speedup(&self, slow: &str, fast: &str) -> Option<f64> {
        Some(self.result(slow)?.median_ns / self.result(fast)?.median_ns)
    }

    /// Renders a fixed-width report table.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>14} {:>14} {:>12}",
            "benchmark", "median", "mean", "iters"
        );
        let _ = writeln!(out, "{}", "-".repeat(88));
        for r in &self.results {
            let _ = writeln!(
                out,
                "{:<44} {:>14} {:>14} {:>12}",
                r.name,
                format_ns(r.median_ns),
                format_ns(r.mean_ns),
                r.iters_per_batch * r.batches as u64,
            );
        }
        out
    }

    /// Serializes the results (plus optional derived ratios) to JSON.
    ///
    /// Hand-rolled on purpose: the schema is flat and a serde dependency is
    /// not available offline.
    pub fn to_json(&self, suite: &str, derived: &[(&str, f64)]) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"suite\": {},", json_string(suite));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \
                 \"min_ns\": {:.1}, \"iters_per_batch\": {}, \"batches\": {}}}{}",
                json_string(&r.name),
                r.median_ns,
                r.mean_ns,
                r.min_ns,
                r.iters_per_batch,
                r.batches,
                comma
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"derived\": {");
        for (i, (k, v)) in derived.iter().enumerate() {
            let comma = if i + 1 < derived.len() { "," } else { "" };
            let _ = write!(out, "\n    {}: {:.4}{}", json_string(k), v, comma);
        }
        if !derived.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Human-readable nanosecond formatting (ns / µs / ms / s).
fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Minimal JSON string escaping for benchmark names.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_result() {
        let mut h = Harness::quick();
        let r = h.bench("sum_1000", || (0..1000u64).sum::<u64>());
        assert_eq!(r.name, "sum_1000");
        assert!(r.median_ns > 0.0);
        assert_eq!(h.results().len(), 1);
    }

    #[test]
    fn speedup_needs_both_results() {
        let mut h = Harness::quick();
        h.bench("fast", || 1u64);
        assert!(h.speedup("missing", "fast").is_none());
        h.bench("slow", || (0..10_000u64).product::<u64>());
        let s = h.speedup("slow", "fast").unwrap();
        assert!(s > 0.0);
    }

    #[test]
    fn json_is_well_formed_ish() {
        let mut h = Harness::quick();
        h.bench("a", || 1u64);
        let json = h.to_json("engine", &[("ratio", 2.5)]);
        assert!(json.contains("\"suite\": \"engine\""));
        assert!(json.contains("\"name\": \"a\""));
        assert!(json.contains("\"ratio\": 2.5000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_escapes_names() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn format_ns_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
