//! Adversarial fixtures: each deliberately broken design triggers exactly
//! the rule the ISSUE assigns to it, and the built-in healthy blocks pass
//! with zero Error-level diagnostics.

#![allow(clippy::unwrap_used)]

use symbist_adc::fault::Faultable;
use symbist_adc::{seeds_by_name, AdcConfig, FdPair, SarAdc};
use symbist_circuit::netlist::Netlist;
use symbist_defects::{DefectUniverse, LikelihoodModel};
use symbist_lint::{
    check_fd_symmetry, lint_adc_with_universe, lint_netlist, lint_universe, Severity,
};

/// Fixture: a two-resistor island with no path to ground.
#[test]
fn fixture_floating_node_sym_l001() {
    let mut nl = Netlist::new();
    let a = nl.node("a");
    nl.vsource(a, Netlist::GND, 1.0);
    nl.resistor(a, Netlist::GND, 1e3);
    let x = nl.node("island_x");
    let y = nl.node("island_y");
    nl.resistor(x, y, 1e3);
    nl.capacitor(x, y, 1e-12);
    let report = lint_netlist("fixture", &nl);
    assert!(report.has_rule("SYM-L001"), "{}", report.render_text());
    assert!(report.has_errors());
}

/// Fixture: two ideal sources forced in parallel (a V-source loop).
#[test]
fn fixture_vsource_loop_sym_l010() {
    let mut nl = Netlist::new();
    let a = nl.node("a");
    let b = nl.node("b");
    nl.vsource(a, Netlist::GND, 1.0);
    nl.vsource(b, Netlist::GND, 0.5);
    nl.vsource(a, b, 0.2); // closes the loop gnd → a → b → gnd
    nl.resistor(a, Netlist::GND, 1e3);
    nl.resistor(b, Netlist::GND, 1e3);
    let report = lint_netlist("fixture", &nl);
    assert!(report.has_rule("SYM-L010"), "{}", report.render_text());
}

/// Fixture: a node reachable only through capacitors — no DC path.
#[test]
fn fixture_cap_only_node_sym_l012() {
    let mut nl = Netlist::new();
    let drv = nl.node("drv");
    let plate = nl.node("plate");
    nl.vsource(drv, Netlist::GND, 1.0);
    nl.resistor(drv, Netlist::GND, 1e3);
    nl.capacitor(drv, plate, 1e-12);
    nl.capacitor(plate, Netlist::GND, 1e-12);
    let report = lint_netlist("fixture", &nl);
    assert!(report.has_rule("SYM-L012"), "{}", report.render_text());
    assert!(!report.has_rule("SYM-L001"), "attached, not floating");
}

/// Fixture: a declared FD pair whose N half carries a mismatched element.
#[test]
fn fixture_mismatched_fd_pair_sym_l030() {
    let build = |cap: f64| {
        let mut nl = Netlist::new();
        let top = nl.node("top");
        let out = nl.node("out");
        nl.vsource(top, Netlist::GND, 0.6);
        nl.resistor(top, out, 5e3);
        nl.capacitor(out, Netlist::GND, cap);
        nl
    };
    let p = build(1.0e-12);
    let n = build(1.3e-12); // 30 % asymmetry
    let seeds = seeds_by_name(&p, &n);
    let pair = FdPair {
        name: "fixture pair".to_string(),
        p,
        n,
        seeds,
    };
    let report = check_fd_symmetry(&pair);
    assert!(report.has_rule("SYM-L030"), "{}", report.render_text());
    assert!(report.has_errors());
}

/// Fixture: a defect universe whose first site references a component
/// index beyond the DUT catalog.
#[test]
fn fixture_dangling_defect_site_sym_l040() {
    let adc = SarAdc::new(AdcConfig::default());
    let universe = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
    let mut defects = universe.defects().to_vec();
    defects[0].site.component = adc.components().len() + 42;
    let universe = DefectUniverse::from_defects(defects);
    let report = lint_universe(&universe, adc.components());
    assert!(report.has_rule("SYM-L040"), "{}", report.render_text());
    assert!(report.has_errors());
}

/// Clean pass: the full suite over every built-in block, FD pair, and the
/// enumerated universe reports zero Error-level diagnostics. This is the
/// same run the `lint` binary and the service pre-flight perform.
#[test]
fn clean_pass_on_builtin_blocks() {
    let adc = SarAdc::new(AdcConfig::default());
    let universe = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
    let report = lint_adc_with_universe(&adc, &universe);
    assert_eq!(report.error_count(), 0, "{}", report.render_text());
    assert_eq!(
        report.count(Severity::Warning),
        0,
        "{}",
        report.render_text()
    );
}

/// An injected defect that floats a plate is *visible* to the analyzer:
/// linting the defective instance yields diagnostics the healthy one
/// lacks (the point of snapshotting the instance's current state).
#[test]
fn injected_open_shows_up_in_lint() {
    use symbist_adc::fault::{DefectKind, DefectSite};
    let healthy = SarAdc::new(AdcConfig::default());
    let healthy_report = symbist_lint::lint_adc(&healthy);

    let mut faulty = SarAdc::new(AdcConfig::default());
    // SC-array P-side main-cap open: the bottom plate loses its low-
    // impedance path and the FD pair diverges.
    let catalog = faulty.components();
    let site_idx = catalog
        .iter()
        .position(|c| c.name == "scarray/p/c_main")
        .unwrap();
    faulty.inject(DefectSite {
        component: site_idx,
        kind: DefectKind::Open,
    });
    let faulty_report = symbist_lint::lint_adc(&faulty);
    assert!(
        faulty_report.diagnostics().len() > healthy_report.diagnostics().len(),
        "defect must surface statically:\n{}",
        faulty_report.render_text()
    );
    assert!(
        faulty_report.has_rule("SYM-L030"),
        "{}",
        faulty_report.render_text()
    );
}
