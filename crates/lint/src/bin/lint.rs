//! `lint` — run the full static analysis suite over the built-in SAR ADC
//! and its enumerated defect universe.
//!
//! ```text
//! cargo run -p symbist-lint                          # stage-one report
//! cargo run -p symbist-lint -- --json                # machine-readable
//! cargo run -p symbist-lint -- --analysis            # stage-two orbits
//! cargo run -p symbist-lint -- --analysis --json     # machine-readable
//! ```
//!
//! Exits `0` when no Error-level diagnostics fire, `1` otherwise (the CI
//! gate), and `2` on usage errors.

use std::process::ExitCode;

use symbist_adc::{AdcConfig, SarAdc};
use symbist_defects::{DefectUniverse, LikelihoodModel};
use symbist_lint::{analyze_adc_with_universe, lint_adc_with_universe};

fn main() -> ExitCode {
    let mut json = false;
    let mut analysis = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--analysis" => analysis = true,
            "--help" | "-h" => {
                println!("usage: lint [--analysis] [--json]");
                println!();
                println!(
                    "Statically analyzes the built-in SAR ADC blocks, FD-symmetry \
                     declarations,\nand enumerated defect universe; exits 1 on \
                     Error-level diagnostics."
                );
                println!();
                println!(
                    "--analysis runs stage two instead: symmetry orbits, the \
                     defect-class\npartition, and cone-of-influence detectability \
                     (SYM-L05x/SYM-L060)."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let adc = SarAdc::new(AdcConfig::default());
    let universe = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
    let errors = if analysis {
        let report = analyze_adc_with_universe(&adc, &universe);
        if json {
            println!("{}", report.to_json_string());
        } else {
            print!("{}", report.render_text());
        }
        report.diagnostics.has_errors()
    } else {
        let report = lint_adc_with_universe(&adc, &universe);
        if json {
            println!("{}", report.to_json_string());
        } else {
            print!("{}", report.render_text());
        }
        report.has_errors()
    };
    if errors {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
