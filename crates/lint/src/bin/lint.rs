//! `lint` — run the full static analysis suite over the built-in SAR ADC
//! and its enumerated defect universe.
//!
//! ```text
//! cargo run -p symbist-lint              # human-readable report
//! cargo run -p symbist-lint -- --json    # machine-readable report
//! ```
//!
//! Exits `0` when no Error-level diagnostics fire, `1` otherwise (the CI
//! gate), and `2` on usage errors.

use std::process::ExitCode;

use symbist_adc::{AdcConfig, SarAdc};
use symbist_defects::{DefectUniverse, LikelihoodModel};
use symbist_lint::lint_adc_with_universe;

fn main() -> ExitCode {
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: lint [--json]");
                println!();
                println!(
                    "Statically analyzes the built-in SAR ADC blocks, FD-symmetry \
                     declarations,\nand enumerated defect universe; exits 1 on \
                     Error-level diagnostics."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let adc = SarAdc::new(AdcConfig::default());
    let universe = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
    let report = lint_adc_with_universe(&adc, &universe);

    if json {
        println!("{}", report.to_json_string());
    } else {
        print!("{}", report.render_text());
    }
    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
