//! FD-symmetry verification (rule SYM-L030).
//!
//! SymBIST's invariances hold only if the declared P/N half-circuits are
//! isomorphic with matched element values. Because both halves of a
//! healthy block are emitted by the same builder with identical nominal
//! inputs, the check is order-based: device `i` of the P half must
//! correspond to device `i` of the N half, and the induced node mapping
//! must be a consistent bijection that respects the declared seed
//! correspondences (ground ↔ ground, same-named nodes). This is far
//! cheaper than general graph isomorphism and — for builder-emitted
//! netlists — exactly as strong.

use std::collections::BTreeMap;

use symbist_adc::FdPair;
use symbist_circuit::netlist::{Device, Netlist, NodeId, SourceWave};

use crate::diag::{Diagnostic, LintReport, Rule};

/// Relative tolerance for element-value comparison. Healthy halves are
/// bit-identical; this only absorbs benign float formatting round-trips.
const REL_TOL: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    if a.is_nan() || b.is_nan() {
        return false;
    }
    // Strictly relative: element values span ~1e-12 F to ~1e9 Ω, so any
    // absolute floor would mask real asymmetries at the small end.
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs())
}

/// Flattens a waveform to comparable numbers plus a shape tag.
fn wave_signature(wave: &SourceWave) -> (&'static str, Vec<f64>) {
    match wave {
        SourceWave::Dc(v) => ("dc", vec![*v]),
        SourceWave::Pulse {
            low,
            high,
            delay,
            rise,
            fall,
            width,
            period,
        } => (
            "pulse",
            vec![*low, *high, *delay, *rise, *fall, *width, *period],
        ),
        SourceWave::Pwl(points) => ("pwl", points.iter().flat_map(|&(t, v)| [t, v]).collect()),
        SourceWave::Sine {
            offset,
            ampl,
            freq,
            delay,
        } => ("sine", vec![*offset, *ampl, *freq, *delay]),
    }
}

/// A device's comparable identity: kind/state tag plus numeric parameters
/// (terminals are handled separately by the node bijection).
fn device_signature(device: &Device) -> (String, Vec<f64>) {
    match device {
        Device::Resistor { ohms, .. } => ("resistor".into(), vec![*ohms]),
        Device::Capacitor { farads, ic, .. } => {
            let tag = if ic.is_some() {
                "capacitor+ic"
            } else {
                "capacitor"
            };
            let mut values = vec![*farads];
            values.extend(*ic);
            (tag.into(), values)
        }
        Device::VSource { wave, .. } => {
            let (shape, values) = wave_signature(wave);
            (format!("vsource/{shape}"), values)
        }
        Device::ISource { wave, .. } => {
            let (shape, values) = wave_signature(wave);
            (format!("isource/{shape}"), values)
        }
        Device::Switch {
            closed,
            r_on,
            r_off,
            ..
        } => (
            format!("switch/{}", if *closed { "closed" } else { "open" }),
            vec![*r_on, *r_off],
        ),
        Device::Diode {
            i_sat, ideality, ..
        } => ("diode".into(), vec![*i_sat, *ideality]),
        Device::Mosfet {
            polarity,
            vth,
            kp,
            lambda,
            ..
        } => (format!("mosfet/{polarity:?}"), vec![*vth, *kp, *lambda]),
        Device::Vcvs { gain, .. } => ("vcvs".into(), vec![*gain]),
        Device::Vccs { gm, .. } => ("vccs".into(), vec![*gm]),
    }
}

fn node_label(nl: &Netlist, node: NodeId) -> String {
    match nl.node_name(node) {
        Some(name) => name.to_string(),
        None if node.is_ground() => "gnd".to_string(),
        None => format!("n{}", node.index()),
    }
}

/// Incrementally grown node bijection between the halves.
#[derive(Default)]
struct NodeMap {
    p_to_n: BTreeMap<NodeId, NodeId>,
    n_to_p: BTreeMap<NodeId, NodeId>,
}

impl NodeMap {
    /// Records `p ↔ n`; returns the conflicting prior binding when the
    /// pair contradicts an existing entry in either direction.
    fn bind(&mut self, p: NodeId, n: NodeId) -> Result<(), (NodeId, NodeId)> {
        if let Some(&prior) = self.p_to_n.get(&p) {
            if prior != n {
                return Err((p, prior));
            }
        }
        if let Some(&prior) = self.n_to_p.get(&n) {
            if prior != p {
                return Err((prior, n));
            }
        }
        self.p_to_n.insert(p, n);
        self.n_to_p.insert(n, p);
        Ok(())
    }
}

/// Verifies one declared FD pair; every violation becomes a `SYM-L030`
/// diagnostic under the context `fd pair: {name}`.
pub fn check_fd_symmetry(pair: &FdPair) -> LintReport {
    let mut report = LintReport::new();
    let context = format!("fd pair: {}", pair.name);
    let diag = |subject: &str, message: String| {
        Diagnostic::new(Rule::FdAsymmetry, context.clone(), subject, message)
    };

    if pair.p.device_count() != pair.n.device_count() {
        report.push(diag(
            "device count",
            format!(
                "P half has {} device(s), N half has {} — the halves cannot \
                 be isomorphic",
                pair.p.device_count(),
                pair.n.device_count()
            ),
        ));
        return report;
    }
    if pair.p.node_count() != pair.n.node_count() {
        report.push(diag(
            "node count",
            format!(
                "P half has {} node(s), N half has {}",
                pair.p.node_count(),
                pair.n.node_count()
            ),
        ));
    }

    let mut map = NodeMap::default();
    for &(p, n) in &pair.seeds {
        if let Err((cp, cn)) = map.bind(p, n) {
            report.push(diag(
                "seed correspondences",
                format!(
                    "seed {} ↔ {} contradicts earlier binding {} ↔ {}",
                    node_label(&pair.p, p),
                    node_label(&pair.n, n),
                    node_label(&pair.p, cp),
                    node_label(&pair.n, cn),
                ),
            ));
        }
    }

    for ((pid, pd), (_, nd)) in pair.p.iter().zip(pair.n.iter()) {
        let subject = format!("device #{} ({})", pid.index(), pd.kind_name());
        let (p_tag, p_values) = device_signature(pd);
        let (n_tag, n_values) = device_signature(nd);
        if p_tag != n_tag {
            report.push(diag(
                &subject,
                format!("P half has {p_tag}, N half has {n_tag} at the same position"),
            ));
            continue;
        }
        if p_values.len() != n_values.len() {
            report.push(diag(
                &subject,
                format!(
                    "element parameter counts differ between halves: P has {} \
                     value(s) {p_values:?}, N has {} value(s) {n_values:?}",
                    p_values.len(),
                    n_values.len(),
                ),
            ));
        } else if let Some((param, (pv, nv))) = p_values
            .iter()
            .zip(&n_values)
            .enumerate()
            .find(|(_, (a, b))| !close(**a, **b))
        {
            let delta = nv - pv;
            let rel = if pv.abs().max(nv.abs()) > 0.0 {
                delta.abs() / pv.abs().max(nv.abs())
            } else {
                0.0
            };
            report.push(diag(
                &subject,
                format!(
                    "element values differ between halves: parameter #{param} \
                     of {p_tag} is {pv:e} in P vs {nv:e} in N \
                     (Δ = {delta:e}, relative {rel:.3e})"
                ),
            ));
        }
        for (tp, tn) in pd.terminals().into_iter().zip(nd.terminals()) {
            if let Err((cp, cn)) = map.bind(tp, tn) {
                report.push(diag(
                    &subject,
                    format!(
                        "terminal wiring breaks the node bijection: {} ↔ {} \
                         contradicts {} ↔ {}",
                        node_label(&pair.p, tp),
                        node_label(&pair.n, tn),
                        node_label(&pair.p, cp),
                        node_label(&pair.n, cn),
                    ),
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbist_adc::seeds_by_name;

    fn pair(p: Netlist, n: Netlist) -> FdPair {
        let seeds = seeds_by_name(&p, &n);
        FdPair {
            name: "test".to_string(),
            p,
            n,
            seeds,
        }
    }

    fn half(cap: f64) -> Netlist {
        let mut nl = Netlist::new();
        let top = nl.node("top");
        let out = nl.node("out");
        nl.vsource(top, Netlist::GND, 0.6);
        nl.resistor(top, out, 1e3);
        nl.capacitor(out, Netlist::GND, cap);
        nl
    }

    #[test]
    fn identical_halves_pass() {
        let report = check_fd_symmetry(&pair(half(1e-12), half(1e-12)));
        assert!(report.diagnostics().is_empty(), "{}", report.render_text());
    }

    #[test]
    fn value_mismatch_fires_l030() {
        let report = check_fd_symmetry(&pair(half(1e-12), half(2e-12)));
        assert!(report.has_rule("SYM-L030"), "{}", report.render_text());
    }

    #[test]
    fn extra_device_fires_l030() {
        let mut n = half(1e-12);
        let out = n.find_node("out").expect("out exists");
        n.resistor(out, Netlist::GND, 1e6);
        let report = check_fd_symmetry(&pair(half(1e-12), n));
        assert!(report.has_rule("SYM-L030"));
    }

    #[test]
    fn rewired_terminal_fires_l030() {
        // Same devices and values, but the N capacitor hangs off `top`
        // instead of `out` — caught by the node bijection.
        let mut n = Netlist::new();
        let top = n.node("top");
        let out = n.node("out");
        n.vsource(top, Netlist::GND, 0.6);
        n.resistor(top, out, 1e3);
        n.capacitor(top, Netlist::GND, 1e-12);
        let report = check_fd_symmetry(&pair(half(1e-12), n));
        assert!(report.has_rule("SYM-L030"), "{}", report.render_text());
    }
}
