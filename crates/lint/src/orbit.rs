//! Symmetry-orbit computation over netlists: Weisfeiler–Leman color
//! refinement, canonical labeling, and the automorphism-induced orbit
//! partition of nodes and devices.
//!
//! The netlist is modeled as a **colored multigraph**: one vertex per
//! circuit node and one per device, with an edge for every terminal,
//! labeled by the terminal's role (the two ends of a resistor are
//! interchangeable; a MOSFET's drain, gate, and source are not). Initial
//! vertex colors encode everything an automorphism must preserve — device
//! kind, quantized parameters, switch state, ground, and the caller's
//! observation coloring (which nodes an invariance watches).
//!
//! Three results come out of one construction:
//!
//! 1. **Stable WL colors** — iterative refinement until the partition
//!    stops splitting. Color ids are assigned by *sorted signature*, so
//!    they are invariant under any re-ordering or renaming of the input
//!    deck (the determinism the CI gate asserts).
//! 2. **Canonical certificate** — when refinement stalls on a
//!    non-discrete partition, the analyzer individualizes every vertex of
//!    the first non-singleton cell in turn and keeps the lexicographically
//!    smallest fully-refined encoding: a canonical form of the colored
//!    graph, equal for isomorphic decks.
//! 3. **Orbit partition** — two vertices share an orbit iff some
//!    automorphism maps one to the other. A same-cell pair `u, v` is
//!    co-orbital exactly when the canonical certificates of the
//!    `u`-marked and `v`-marked graphs coincide — and when they do, the
//!    two discrete colorings hand over the automorphism *explicitly* (the
//!    position map between them), which is unioned over **all** vertices
//!    at once. One mirror generator therefore merges every P/N pair in
//!    the deck in a single step, so orbits cost a handful of marked
//!    certificates rather than one per symmetric vertex. The result is
//!    *exact* (not the WL approximation): WL cells can only over-merge,
//!    and the marked certificate comparison splits any spurious merge.
//!
//! Cost: refinement is near-linear per pass; certificates branch over one
//! cell per level. Circuit symmetry groups here are tiny (mirror pairs,
//! replica triples), so cells stay small; a branch budget guards the
//! pathological case and degrades *soundly* (vertices fall back to
//! singleton orbits — equivalence is under-claimed, never over-claimed).

use std::collections::BTreeMap;

use symbist_circuit::netlist::{Device, Netlist, NodeId, SourceWave};
use symbist_circuit::topology::DisjointSet;

/// Terminal roles. Symmetric two-terminal devices use the same role for
/// both ends, which is what lets WL discover their end-swap symmetry.
const ROLE_SYM: u8 = 0;
const ROLE_P: u8 = 1;
const ROLE_N: u8 = 2;
const ROLE_D: u8 = 3;
const ROLE_G: u8 = 4;
const ROLE_S: u8 = 5;
const ROLE_CP: u8 = 6;
const ROLE_CN: u8 = 7;

/// Branch budget for canonical-certificate search. Every individualization
/// branch costs one refinement sweep; circuits with human-scale symmetry
/// use a handful. Exceeding the budget aborts the certificate (`None`),
/// which callers must treat as "split conservatively".
const BRANCH_BUDGET: usize = 4096;

/// Quantizes a parameter for color comparison: 12 significant digits,
/// enough to absorb formatting round-trips while keeping any deliberate
/// value split (±50 % defects, sub-radix weights) distinct.
fn quant(v: f64) -> String {
    format!("{v:.12e}")
}

fn wave_color(wave: &SourceWave) -> String {
    match wave {
        SourceWave::Dc(v) => format!("dc:{}", quant(*v)),
        SourceWave::Pulse {
            low,
            high,
            delay,
            rise,
            fall,
            width,
            period,
        } => format!(
            "pulse:{}:{}:{}:{}:{}:{}:{}",
            quant(*low),
            quant(*high),
            quant(*delay),
            quant(*rise),
            quant(*fall),
            quant(*width),
            quant(*period)
        ),
        SourceWave::Pwl(points) => {
            let mut s = "pwl".to_string();
            for &(t, v) in points {
                s.push(':');
                s.push_str(&quant(t));
                s.push(':');
                s.push_str(&quant(v));
            }
            s
        }
        SourceWave::Sine {
            offset,
            ampl,
            freq,
            delay,
        } => format!(
            "sine:{}:{}:{}:{}",
            quant(*offset),
            quant(*ampl),
            quant(*freq),
            quant(*delay)
        ),
    }
}

/// Device color: kind tag plus quantized parameters. Terminals are
/// *not* part of the color — the graph edges carry them.
fn device_color(device: &Device) -> String {
    match device {
        Device::Resistor { ohms, .. } => format!("R:{}", quant(*ohms)),
        Device::Capacitor { farads, ic, .. } => match ic {
            Some(v) => format!("C:{}:ic{}", quant(*farads), quant(*v)),
            None => format!("C:{}", quant(*farads)),
        },
        Device::VSource { wave, .. } => format!("V:{}", wave_color(wave)),
        Device::ISource { wave, .. } => format!("I:{}", wave_color(wave)),
        Device::Switch {
            closed,
            r_on,
            r_off,
            ..
        } => format!(
            "S:{}:{}:{}",
            if *closed { "on" } else { "off" },
            quant(*r_on),
            quant(*r_off)
        ),
        Device::Diode {
            i_sat, ideality, ..
        } => format!("D:{}:{}", quant(*i_sat), quant(*ideality)),
        Device::Mosfet {
            polarity,
            vth,
            kp,
            lambda,
            ..
        } => format!(
            "M:{polarity:?}:{}:{}:{}",
            quant(*vth),
            quant(*kp),
            quant(*lambda)
        ),
        Device::Vcvs { gain, .. } => format!("E:{}", quant(*gain)),
        Device::Vccs { gm, .. } => format!("G:{}", quant(*gm)),
    }
}

fn terminal_roles(device: &Device) -> Vec<(u8, NodeId)> {
    match *device {
        Device::Resistor { a, b, .. }
        | Device::Capacitor { a, b, .. }
        | Device::Switch { a, b, .. } => vec![(ROLE_SYM, a), (ROLE_SYM, b)],
        Device::VSource { p, n, .. } | Device::ISource { p, n, .. } => {
            vec![(ROLE_P, p), (ROLE_N, n)]
        }
        Device::Diode { anode, cathode, .. } => vec![(ROLE_P, anode), (ROLE_N, cathode)],
        Device::Mosfet { d, g, s, .. } => vec![(ROLE_D, d), (ROLE_G, g), (ROLE_S, s)],
        Device::Vcvs { p, n, cp, cn, .. } | Device::Vccs { p, n, cp, cn, .. } => {
            vec![(ROLE_P, p), (ROLE_N, n), (ROLE_CP, cp), (ROLE_CN, cn)]
        }
    }
}

/// The colored multigraph of a netlist: vertices `0..node_count` are the
/// circuit nodes, `node_count..node_count+device_count` the devices.
struct ColoredGraph {
    node_count: usize,
    vertex_count: usize,
    /// Per-vertex adjacency: `(role, other_vertex)`, sorted.
    adj: Vec<Vec<(u8, usize)>>,
    /// Canonical initial color id per vertex (dense, by sorted color
    /// string — invariant under deck order and node naming).
    initial: Vec<u32>,
    initial_count: usize,
}

impl ColoredGraph {
    fn build(nl: &Netlist, node_colors: &BTreeMap<usize, String>) -> ColoredGraph {
        let node_count = nl.node_count();
        let device_count = nl.device_count();
        let vertex_count = node_count + device_count;
        let mut adj: Vec<Vec<(u8, usize)>> = vec![Vec::new(); vertex_count];
        let mut color_strings: Vec<String> = Vec::with_capacity(vertex_count);

        for node in nl.nodes() {
            let idx = node.index();
            let tag = node_colors.get(&idx).cloned().unwrap_or_default();
            if node.is_ground() {
                color_strings.push(format!("node:gnd:{tag}"));
            } else {
                // Deliberately name-blind: two isomorphic decks with
                // different node names must land on the same colors.
                color_strings.push(format!("node:{tag}"));
            }
        }
        for (id, device) in nl.iter() {
            let dv = node_count + id.index();
            color_strings.push(format!("dev:{}", device_color(device)));
            for (role, node) in terminal_roles(device) {
                adj[dv].push((role, node.index()));
                adj[node.index()].push((role, dv));
            }
        }
        for list in &mut adj {
            list.sort_unstable();
        }

        // Dense canonical ids by sorted distinct color string.
        let mut distinct: Vec<&String> = color_strings.iter().collect();
        distinct.sort_unstable();
        distinct.dedup();
        let index: BTreeMap<&String, u32> = distinct
            .iter()
            .enumerate()
            .map(|(i, s)| (*s, i as u32))
            .collect();
        let initial: Vec<u32> = color_strings.iter().map(|s| index[s]).collect();
        ColoredGraph {
            node_count,
            vertex_count,
            adj,
            initial_count: distinct.len(),
            initial,
        }
    }

    /// One full WL refinement: iterate color-splitting passes until the
    /// number of distinct colors stabilizes. Returns the stable coloring
    /// (dense ids assigned by sorted signature — canonical).
    fn refine(&self, start: &[u32]) -> Vec<u32> {
        /// One WL signature: own color plus the sorted
        /// `(edge role, neighbor color)` multiset.
        type WlSignature = (u32, Vec<(u8, u32)>);
        let mut colors = start.to_vec();
        let mut distinct = {
            let mut c = colors.clone();
            c.sort_unstable();
            c.dedup();
            c.len()
        };
        loop {
            let mut signatures: Vec<WlSignature> = Vec::with_capacity(self.vertex_count);
            for v in 0..self.vertex_count {
                let mut neigh: Vec<(u8, u32)> = self.adj[v]
                    .iter()
                    .map(|&(role, u)| (role, colors[u]))
                    .collect();
                neigh.sort_unstable();
                signatures.push((colors[v], neigh));
            }
            let mut order: Vec<&WlSignature> = signatures.iter().collect();
            order.sort_unstable();
            order.dedup();
            if order.len() == distinct {
                return colors;
            }
            distinct = order.len();
            let index: BTreeMap<&WlSignature, u32> = order
                .iter()
                .enumerate()
                .map(|(i, s)| (*s, i as u32))
                .collect();
            colors = signatures.iter().map(|s| index[s]).collect();
        }
    }

    fn is_discrete(&self, colors: &[u32]) -> bool {
        let mut seen = vec![false; self.vertex_count];
        for &c in colors {
            let c = c as usize;
            if seen[c] {
                return false;
            }
            seen[c] = true;
        }
        true
    }

    /// First (smallest color id) cell with more than one member.
    fn first_nonsingleton_cell(&self, colors: &[u32]) -> Option<Vec<usize>> {
        let mut cells: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (v, &c) in colors.iter().enumerate() {
            cells.entry(c).or_default().push(v);
        }
        cells.into_values().find(|members| members.len() > 1)
    }

    /// Encodes a *discrete* coloring as a comparable certificate: for each
    /// vertex in canonical (color) order, its initial color and its sorted
    /// role-labeled adjacency in canonical indices.
    fn encode(&self, colors: &[u32]) -> Vec<u64> {
        debug_assert!(self.is_discrete(colors));
        let mut by_color: Vec<usize> = (0..self.vertex_count).collect();
        by_color.sort_unstable_by_key(|&v| colors[v]);
        let mut cert: Vec<u64> = Vec::with_capacity(self.vertex_count * 4);
        cert.push(self.vertex_count as u64);
        cert.push(self.node_count as u64);
        for &v in &by_color {
            cert.push(u64::from(self.initial[v]));
            let mut edges: Vec<(u8, u32)> = self.adj[v]
                .iter()
                .map(|&(role, u)| (role, colors[u]))
                .collect();
            edges.sort_unstable();
            cert.push(edges.len() as u64);
            for (role, c) in edges {
                cert.push((u64::from(role) << 32) | u64::from(c));
            }
        }
        cert
    }

    /// Canonical certificate of the graph under `start` colors: the
    /// lexicographically smallest encoding over all individualization
    /// branches, together with the discrete coloring that realizes it.
    /// `None` when the branch budget runs out.
    fn canonical(&self, start: &[u32], budget: &mut usize) -> Option<(Vec<u64>, Vec<u32>)> {
        let colors = self.refine(start);
        if self.is_discrete(&colors) {
            return Some((self.encode(&colors), colors));
        }
        let cell = self
            .first_nonsingleton_cell(&colors)
            .expect("non-discrete coloring has a non-singleton cell");
        let mut best: Option<(Vec<u64>, Vec<u32>)> = None;
        for v in cell {
            if *budget == 0 {
                return None;
            }
            *budget -= 1;
            let mut branched = colors.clone();
            // Individualize: give v a fresh color *below* every other so
            // the choice is positionally canonical across branches.
            for c in &mut branched {
                *c += 1;
            }
            branched[v] = 0;
            let cand = self.canonical(&branched, budget)?;
            best = Some(match best {
                Some(b) if b.0 <= cand.0 => b,
                _ => cand,
            });
        }
        best
    }

    /// Canonical certificate of the graph with vertex `v` marked
    /// (individualized). Equal marked certificates ⇔ an automorphism maps
    /// the two marked vertices onto each other — and the two returned
    /// discrete colorings realize it as an explicit position map.
    fn marked_canonical(
        &self,
        stable: &[u32],
        v: usize,
        budget: &mut usize,
    ) -> Option<(Vec<u64>, Vec<u32>)> {
        let mut marked = stable.to_vec();
        for c in &mut marked {
            *c += 1;
        }
        marked[v] = 0;
        self.canonical(&marked, budget)
    }
}

/// The orbit partition of one netlist.
#[derive(Debug, Clone)]
pub struct OrbitPartition {
    /// Orbit id per circuit node, indexed by `NodeId::index()`. Ids are
    /// canonical: isomorphic decks produce identical id assignments for
    /// corresponding vertices.
    pub node_orbits: Vec<usize>,
    /// Orbit id per device, indexed by `DeviceId::index()`. Shares the id
    /// space with `node_orbits`.
    pub device_orbits: Vec<usize>,
    /// Total distinct orbits across nodes and devices.
    pub orbit_count: usize,
    /// FNV-1a hash of the canonical certificate — a deck fingerprint that
    /// is stable across card shuffles and node renames.
    pub certificate: u64,
}

impl OrbitPartition {
    /// Number of distinct node orbits.
    pub fn node_orbit_count(&self) -> usize {
        let mut ids: Vec<usize> = self.node_orbits.clone();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Number of distinct device orbits.
    pub fn device_orbit_count(&self) -> usize {
        let mut ids: Vec<usize> = self.device_orbits.clone();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

fn fnv1a(data: &[u64]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &word in data {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Computes the orbit partition of `nl`. `node_colors` carries the
/// observation coloring: `NodeId::index() → tag`; an automorphism must
/// preserve each tag, which is what restricts orbits to symmetries that
/// fix every invariance's observation structure.
///
/// Orbits are **exact** automorphism orbits (soundness): WL cells are
/// split by marked-certificate comparison, and a budget overrun degrades
/// to singleton orbits rather than over-merged ones.
pub fn orbit_partition(nl: &Netlist, node_colors: &BTreeMap<usize, String>) -> OrbitPartition {
    let graph = ColoredGraph::build(nl, node_colors);
    let initial: Vec<u32> = graph.initial.clone();
    debug_assert!(graph.initial_count <= graph.vertex_count);
    let stable = graph.refine(&initial);

    let mut cells: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (v, &c) in stable.iter().enumerate() {
        cells.entry(c).or_default().push(v);
    }

    // Discover automorphism generators cell by cell. Within a cell, one
    // representative per not-yet-merged group is marked and canonically
    // certified; equal certificates prove co-orbitality *and* hand over
    // the automorphism explicitly (the position map between the two
    // discrete colorings), which is unioned across every vertex of the
    // deck. The first mirror generator therefore merges every P/N pair at
    // once, and later cells collapse to a single group before any of
    // their certificates are computed.
    let mut dsu = DisjointSet::new(graph.vertex_count);
    let mut cert_of: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    for members in cells.values() {
        if members.len() == 1 {
            continue;
        }
        // Representatives of the current merge-groups, in member order.
        let mut reps: Vec<usize> = Vec::new();
        let mut roots: Vec<usize> = Vec::new();
        for &v in members {
            let root = dsu.find(v);
            if !roots.contains(&root) {
                roots.push(root);
                reps.push(v);
            }
        }
        if reps.len() == 1 {
            continue;
        }
        let mut done: Vec<(Vec<u64>, Vec<u32>, usize)> = Vec::new();
        for v in reps {
            let mut budget = BRANCH_BUDGET;
            let Some((cert, coloring)) = graph.marked_canonical(&stable, v, &mut budget) else {
                // Budget overrun: conservative singleton group.
                continue;
            };
            if let Some((_, prior_coloring, _)) = done.iter().find(|(prior, _, _)| *prior == cert) {
                // Same certificate: σ(x) = the vertex holding x's canonical
                // position in the prior coloring — an automorphism mapping
                // v onto the prior representative. Union its entire cycle
                // structure, not just the tested pair.
                let mut pos = vec![0usize; graph.vertex_count];
                for (x, &c) in prior_coloring.iter().enumerate() {
                    pos[c as usize] = x;
                }
                for (x, &c) in coloring.iter().enumerate() {
                    dsu.union(x, pos[c as usize]);
                }
            } else {
                cert_of.insert(v, cert.clone());
                done.push((cert, coloring, v));
            }
        }
    }

    // Canonical orbit ids: cells in color order; groups inside a cell
    // ordered by marked certificate (deck-invariant), with certificate-
    // less groups — the budget-degraded remainder — last, in member
    // order.
    let mut orbit_of: Vec<usize> = vec![0; graph.vertex_count];
    let mut next_orbit = 0;
    for members in cells.values() {
        if members.len() == 1 {
            orbit_of[members[0]] = next_orbit;
            next_orbit += 1;
            continue;
        }
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut order: Vec<usize> = Vec::new();
        for &v in members {
            let root = dsu.find(v);
            if !groups.contains_key(&root) {
                order.push(root);
            }
            groups.entry(root).or_default().push(v);
        }
        order.sort_by(|a, b| {
            let (ca, cb) = (
                groups[a].iter().find_map(|v| cert_of.get(v)),
                groups[b].iter().find_map(|v| cert_of.get(v)),
            );
            match (ca, cb) {
                (Some(ca), Some(cb)) => ca.cmp(cb),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => std::cmp::Ordering::Equal,
            }
        });
        for root in order {
            for &v in &groups[&root] {
                orbit_of[v] = next_orbit;
            }
            next_orbit += 1;
        }
    }

    let mut budget = BRANCH_BUDGET;
    let certificate = graph
        .canonical(&stable, &mut budget)
        .map(|(cert, _)| fnv1a(&cert))
        // Budget overrun: fall back to a weaker but still
        // shuffle-invariant fingerprint — the sorted stable colors.
        .unwrap_or_else(|| {
            let mut sorted: Vec<u64> = stable.iter().map(|&c| u64::from(c)).collect();
            sorted.sort_unstable();
            fnv1a(&sorted)
        });

    OrbitPartition {
        node_orbits: orbit_of[..graph.node_count].to_vec(),
        device_orbits: orbit_of[graph.node_count..].to_vec(),
        orbit_count: next_orbit,
        certificate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_colors() -> BTreeMap<usize, String> {
        BTreeMap::new()
    }

    /// A symmetric FD divider: two identical legs off one source.
    fn fd_divider() -> Netlist {
        let mut nl = Netlist::new();
        let vref = nl.node("vref");
        let outp = nl.node("outp");
        let outn = nl.node("outn");
        nl.vsource(vref, Netlist::GND, 1.2);
        nl.resistor(vref, outp, 1_000.0);
        nl.resistor(outp, Netlist::GND, 1_000.0);
        nl.resistor(vref, outn, 1_000.0);
        nl.resistor(outn, Netlist::GND, 1_000.0);
        nl
    }

    #[test]
    fn symmetric_legs_share_orbits() {
        let nl = fd_divider();
        let orbits = orbit_partition(&nl, &no_colors());
        let outp = nl.find_node("outp").unwrap().index();
        let outn = nl.find_node("outn").unwrap().index();
        assert_eq!(orbits.node_orbits[outp], orbits.node_orbits[outn]);
        // Devices 1..5 are the four leg resistors: upper pair and lower
        // pair each share an orbit, and the pairs differ.
        assert_eq!(orbits.device_orbits[1], orbits.device_orbits[3]);
        assert_eq!(orbits.device_orbits[2], orbits.device_orbits[4]);
        assert_ne!(orbits.device_orbits[1], orbits.device_orbits[2]);
    }

    #[test]
    fn observation_coloring_restricts_orbits() {
        let nl = fd_divider();
        let outp = nl.find_node("outp").unwrap().index();
        let outn = nl.find_node("outn").unwrap().index();
        // Same tag on both: the mirror survives.
        let mut same = BTreeMap::new();
        same.insert(outp, "obs".to_string());
        same.insert(outn, "obs".to_string());
        let orbits = orbit_partition(&nl, &same);
        assert_eq!(orbits.node_orbits[outp], orbits.node_orbits[outn]);
        // Distinct tags: the mirror is forbidden, everything splits.
        let mut distinct = BTreeMap::new();
        distinct.insert(outp, "obs-a".to_string());
        distinct.insert(outn, "obs-b".to_string());
        let orbits = orbit_partition(&nl, &distinct);
        assert_ne!(orbits.node_orbits[outp], orbits.node_orbits[outn]);
        assert_ne!(orbits.device_orbits[1], orbits.device_orbits[3]);
    }

    #[test]
    fn value_mismatch_splits_orbits() {
        let mut nl = Netlist::new();
        let vref = nl.node("vref");
        let outp = nl.node("outp");
        let outn = nl.node("outn");
        nl.vsource(vref, Netlist::GND, 1.2);
        nl.resistor(vref, outp, 1_000.0);
        nl.resistor(outp, Netlist::GND, 1_000.0);
        nl.resistor(vref, outn, 1_100.0); // broken mirror
        nl.resistor(outn, Netlist::GND, 1_000.0);
        let orbits = orbit_partition(&nl, &no_colors());
        let outp = nl.find_node("outp").unwrap().index();
        let outn = nl.find_node("outn").unwrap().index();
        assert_ne!(orbits.node_orbits[outp], orbits.node_orbits[outn]);
    }

    #[test]
    fn shuffled_isomorphic_decks_share_certificates() {
        // Same circuit, different card order and node names.
        let a = fd_divider();
        let mut b = Netlist::new();
        let n_out = b.node("neg_leg");
        let p_out = b.node("pos_leg");
        let supply = b.node("supply");
        b.resistor(n_out, Netlist::GND, 1_000.0);
        b.resistor(supply, n_out, 1_000.0);
        b.resistor(p_out, Netlist::GND, 1_000.0);
        b.vsource(supply, Netlist::GND, 1.2);
        b.resistor(supply, p_out, 1_000.0);
        let oa = orbit_partition(&a, &no_colors());
        let ob = orbit_partition(&b, &no_colors());
        assert_eq!(oa.certificate, ob.certificate);
        assert_eq!(oa.orbit_count, ob.orbit_count);
        assert_eq!(oa.node_orbit_count(), ob.node_orbit_count());
        assert_eq!(oa.device_orbit_count(), ob.device_orbit_count());
        // And a genuinely different deck does not collide.
        let mut c = fd_divider();
        let outp = c.find_node("outp").unwrap();
        c.capacitor(outp, Netlist::GND, 1e-12);
        let oc = orbit_partition(&c, &no_colors());
        assert_ne!(oa.certificate, oc.certificate);
    }

    #[test]
    fn asymmetric_roles_do_not_merge() {
        // Two anti-series diodes: anode/cathode roles differ, so the two
        // diodes must not share an orbit even though params match.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let mid = nl.node("mid");
        nl.vsource(a, Netlist::GND, 1.0);
        nl.diode(a, mid, 1e-15, 1.0);
        nl.diode(Netlist::GND, mid, 1e-15, 1.0);
        let orbits = orbit_partition(&nl, &no_colors());
        assert_ne!(orbits.device_orbits[1], orbits.device_orbits[2]);
    }

    #[test]
    fn three_way_replica_forms_one_orbit() {
        // Three identical legs: one orbit of size 3 per position.
        let mut nl = Netlist::new();
        let vref = nl.node("vref");
        nl.vsource(vref, Netlist::GND, 1.0);
        for name in ["x", "y", "z"] {
            let out = nl.node(name);
            nl.resistor(vref, out, 2_000.0);
            nl.resistor(out, Netlist::GND, 2_000.0);
        }
        let orbits = orbit_partition(&nl, &no_colors());
        let x = nl.find_node("x").unwrap().index();
        let y = nl.find_node("y").unwrap().index();
        let z = nl.find_node("z").unwrap().index();
        assert_eq!(orbits.node_orbits[x], orbits.node_orbits[y]);
        assert_eq!(orbits.node_orbits[y], orbits.node_orbits[z]);
    }
}
