//! # symbist-lint — static netlist & symmetry analyzer
//!
//! Diagnostics for the SymBIST reproduction that require **no
//! simulation**: the analyzer inspects [`Netlist`] topology, the ADC's
//! declared FD-symmetry pairs, and [`DefectUniverse`] structure, and
//! predicts the failures the runtime engines would otherwise hit mid-
//! campaign — MNA singularities, invariance-breaking asymmetries, and
//! coverage-corrupting universes.
//!
//! Every finding carries a stable `SYM-Lxxx` rule ID (see [`Rule`]), a
//! severity, and device/node attribution. Error-level findings gate: the
//! `lint` binary exits nonzero on them (CI), and the BIST job service
//! rejects campaign submissions against a DUT that fails pre-flight.
//!
//! ```
//! use symbist_adc::{AdcConfig, SarAdc};
//! use symbist_lint::lint_adc;
//!
//! let report = lint_adc(&SarAdc::new(AdcConfig::default()));
//! assert_eq!(report.error_count(), 0);
//! ```
//!
//! Rule groups:
//!
//! - `SYM-L00x` connectivity: floating components, dangling terminals
//! - `SYM-L01x` singularity prediction: V-source loops, I-source
//!   cutsets, no-DC-path (gmin-only) islands
//! - `SYM-L02x` parameter sanity per device kind
//! - `SYM-L030` FD-symmetry of declared P/N half-circuits
//! - `SYM-L04x` defect-universe structure
//! - `SYM-L05x`/`SYM-L060` stage two — symmetry orbits & detectability
//!   (see [`orbit`] and [`analysis`])
//!
//! [`Netlist`]: symbist_circuit::netlist::Netlist
//! [`DefectUniverse`]: symbist_defects::DefectUniverse

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod diag;
pub mod orbit;
pub mod rules;
pub mod suite;
pub mod symmetry;
pub mod universe_rules;

pub use analysis::{
    analyze, analyze_adc, analyze_adc_with_universe, check_fd_pair_orbits, AnalysisModel,
    AnalysisReport, DefectClass, ObservedInvariance,
};
pub use diag::{Diagnostic, LintReport, Rule, Severity};
pub use orbit::{orbit_partition, OrbitPartition};
pub use rules::lint_netlist;
pub use suite::{lint_adc, lint_adc_with_universe};
pub use symmetry::check_fd_symmetry;
pub use universe_rules::lint_universe;
