//! Defect-universe validation (rules SYM-L040..L042).
//!
//! A structurally broken universe corrupts coverage accounting silently:
//! a dangling site crashes (or worse, mis-targets) injection, a
//! non-finite likelihood poisons every weighted-coverage sum, and a
//! duplicated site double-counts its weight. `symbist-defects` reports
//! these as [`UniverseIssue`]s; this module maps them onto stable rule
//! IDs so gates and clients can key on them.

use symbist_adc::fault::ComponentInfo;
use symbist_defects::{DefectUniverse, UniverseIssue};

use crate::diag::{Diagnostic, LintReport, Rule};

/// Lints `universe` against the component catalog it was built for.
pub fn lint_universe(universe: &DefectUniverse, catalog: &[ComponentInfo]) -> LintReport {
    let mut report = LintReport::new();
    let context = "defect universe";
    for issue in universe.lint_issues(catalog) {
        let rule = match issue {
            UniverseIssue::DanglingSite { .. } | UniverseIssue::InapplicableKind { .. } => {
                Rule::DanglingDefectSite
            }
            UniverseIssue::BadLikelihood { .. } => Rule::BadLikelihood,
            UniverseIssue::DuplicateSite { .. } => Rule::DuplicateDefect,
        };
        let subject = match &issue {
            UniverseIssue::DanglingSite { index, .. }
            | UniverseIssue::InapplicableKind { index, .. }
            | UniverseIssue::BadLikelihood { index, .. } => format!("defect #{index}"),
            UniverseIssue::DuplicateSite { index, first, .. } => {
                format!("defect #{index} (first at #{first})")
            }
        };
        report.push(Diagnostic::new(rule, context, subject, issue.to_string()));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbist_adc::fault::Faultable;
    use symbist_adc::{AdcConfig, SarAdc};
    use symbist_defects::LikelihoodModel;

    #[test]
    fn enumerated_universe_is_clean() {
        let adc = SarAdc::new(AdcConfig::default());
        let universe = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
        let report = lint_universe(&universe, adc.components());
        assert!(report.diagnostics().is_empty(), "{}", report.render_text());
    }

    #[test]
    fn corrupted_universe_maps_to_rules() {
        let adc = SarAdc::new(AdcConfig::default());
        let universe = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
        let catalog_len = adc.components().len();
        let mut defects = universe.defects().to_vec();
        defects[0].site.component = catalog_len + 3;
        defects[1].likelihood = -1.0;
        defects[3] = defects[2].clone();
        let universe = DefectUniverse::from_defects(defects);
        let report = lint_universe(&universe, adc.components());
        assert!(report.has_rule("SYM-L040"), "{}", report.render_text());
        assert!(report.has_rule("SYM-L041"));
        assert!(report.has_rule("SYM-L042"));
    }
}
