//! Diagnostics: rule identities, severities, and the report container.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational — worth knowing, never actionable by a gate.
    Info,
    /// Suspicious but simulable; the circuit may still behave as intended.
    Warning,
    /// The netlist (or universe) is structurally broken: simulation would
    /// fail, produce regularization-dependent garbage, or corrupt
    /// coverage accounting. Gates reject on Errors.
    Error,
}

impl Severity {
    /// Lower-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Every rule the analyzer implements. The `SYM-Lxxx` codes are stable API:
/// tests assert on them, CI greps for them, and service clients key on
/// them — never renumber an existing rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// A connected component of the device graph with no path to ground.
    FloatingNode,
    /// A device terminal landing on a node nothing else touches.
    DanglingNode,
    /// A cycle of ideal voltage constraints (V sources / VCVS outputs).
    VsourceLoop,
    /// A DC island whose only drive is a current source — KCL cannot be
    /// satisfied at DC.
    IsourceCutset,
    /// A node (or island) with no DC-conductive path to ground: its DC
    /// value exists only by the solver's gmin regularization.
    NoDcPath,
    /// Non-positive or non-finite resistance.
    BadResistor,
    /// Non-positive/non-finite capacitance or non-finite initial condition.
    BadCapacitor,
    /// Switch with invalid r_on/r_off (including r_on ≥ r_off).
    BadSwitch,
    /// Degenerate MOS parameters (vth/kp/lambda out of range).
    BadMosfet,
    /// Degenerate diode parameters (i_sat/ideality out of range).
    BadDiode,
    /// Non-finite source value, waveform field, or controlled-source gain.
    BadSource,
    /// Declared P/N half-circuits are not isomorphic with matched values.
    FdAsymmetry,
    /// A defect site referencing a dead component index or a defect kind
    /// inapplicable to its component.
    DanglingDefectSite,
    /// A zero/negative/non-finite defect likelihood.
    BadLikelihood,
    /// The same injection listed twice in a universe.
    DuplicateDefect,
    /// A defect site outside every invariance's cone of influence — no
    /// invariance can ever observe it (an honest, provable escape).
    StaticallyUndetectable,
    /// An invariance whose cone of influence contains no defect site at
    /// all — it consumes checker area but can never detect anything.
    DeadInvariance,
    /// A declared symmetric pair whose halves land in different structural
    /// orbits — no automorphism exchanges them (refines L030 from
    /// value-matching to graph-automorphism evidence).
    SymmetryBrokenPair,
    /// Informational orbit-partition summary for a netlist.
    OrbitSummary,
}

impl Rule {
    /// The stable rule ID.
    pub fn code(self) -> &'static str {
        match self {
            Rule::FloatingNode => "SYM-L001",
            Rule::DanglingNode => "SYM-L002",
            Rule::VsourceLoop => "SYM-L010",
            Rule::IsourceCutset => "SYM-L011",
            Rule::NoDcPath => "SYM-L012",
            Rule::BadResistor => "SYM-L020",
            Rule::BadCapacitor => "SYM-L021",
            Rule::BadSwitch => "SYM-L022",
            Rule::BadMosfet => "SYM-L023",
            Rule::BadDiode => "SYM-L024",
            Rule::BadSource => "SYM-L025",
            Rule::FdAsymmetry => "SYM-L030",
            Rule::DanglingDefectSite => "SYM-L040",
            Rule::BadLikelihood => "SYM-L041",
            Rule::DuplicateDefect => "SYM-L042",
            Rule::StaticallyUndetectable => "SYM-L050",
            Rule::DeadInvariance => "SYM-L051",
            Rule::SymmetryBrokenPair => "SYM-L052",
            Rule::OrbitSummary => "SYM-L060",
        }
    }

    /// Short kebab-case rule name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::FloatingNode => "floating-node",
            Rule::DanglingNode => "dangling-node",
            Rule::VsourceLoop => "vsource-loop",
            Rule::IsourceCutset => "isource-cutset",
            Rule::NoDcPath => "no-dc-path",
            Rule::BadResistor => "bad-resistor",
            Rule::BadCapacitor => "bad-capacitor",
            Rule::BadSwitch => "bad-switch",
            Rule::BadMosfet => "bad-mosfet",
            Rule::BadDiode => "bad-diode",
            Rule::BadSource => "bad-source",
            Rule::FdAsymmetry => "fd-asymmetry",
            Rule::DanglingDefectSite => "dangling-defect-site",
            Rule::BadLikelihood => "bad-likelihood",
            Rule::DuplicateDefect => "duplicate-defect",
            Rule::StaticallyUndetectable => "statically-undetectable",
            Rule::DeadInvariance => "dead-invariance",
            Rule::SymmetryBrokenPair => "symmetry-broken-pair",
            Rule::OrbitSummary => "orbit-summary",
        }
    }

    /// Default severity of the rule.
    pub fn severity(self) -> Severity {
        match self {
            // Undetectable defects and dead invariances are honest design
            // facts (e.g. decoupling-cap opens are expected escapes), not
            // structural breakage — they inform, they don't gate.
            Rule::DanglingNode | Rule::StaticallyUndetectable | Rule::DeadInvariance => {
                Severity::Warning
            }
            Rule::OrbitSummary => Severity::Info,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code(), self.name())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// Severity (defaults to the rule's, but a producer may downgrade).
    pub severity: Severity,
    /// What was being analyzed (block/netlist label, e.g. `"sc array
    /// (P side)"` or `"defect universe"`).
    pub context: String,
    /// The offending device/node/site within the context, e.g.
    /// `"device #3 (switch)"` or `"node top"`.
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic at the rule's default severity.
    pub fn new(
        rule: Rule,
        context: impl Into<String>,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            rule,
            severity: rule.severity(),
            context: context.into(),
            subject: subject.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} [{}] {}: {}",
            self.severity,
            self.rule.code(),
            self.context,
            self.subject,
            self.message
        )
    }
}

/// An ordered collection of diagnostics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends another report's diagnostics.
    pub fn extend(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// All diagnostics in insertion order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of diagnostics at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Number of Error-level diagnostics.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Whether any Error-level diagnostic is present — the gate predicate.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Whether any rule with the given code fired.
    pub fn has_rule(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.rule.code() == code)
    }

    /// Human-readable multi-line rendering (one diagnostic per line plus a
    /// summary line).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(
            out,
            "{} error(s), {} warning(s), {} info",
            self.error_count(),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        );
        out
    }

    /// Machine-readable JSON rendering:
    /// `{"errors": N, "warnings": N, "diagnostics": [...]}`.
    pub fn to_json_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.error_count(),
            self.count(Severity::Warning)
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":{},\"name\":{},\"severity\":{},\"context\":{},\"subject\":{},\"message\":{}}}",
                json_str(d.rule.code()),
                json_str(d.rule.name()),
                json_str(d.severity.label()),
                json_str(&d.context),
                json_str(&d.subject),
                json_str(&d.message),
            );
        }
        out.push_str("]}");
        out
    }
}

/// JSON string literal with escaping (the same minimal escape set the
/// service's hand-rolled parser understands).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique() {
        let all = [
            Rule::FloatingNode,
            Rule::DanglingNode,
            Rule::VsourceLoop,
            Rule::IsourceCutset,
            Rule::NoDcPath,
            Rule::BadResistor,
            Rule::BadCapacitor,
            Rule::BadSwitch,
            Rule::BadMosfet,
            Rule::BadDiode,
            Rule::BadSource,
            Rule::FdAsymmetry,
            Rule::DanglingDefectSite,
            Rule::BadLikelihood,
            Rule::DuplicateDefect,
            Rule::StaticallyUndetectable,
            Rule::DeadInvariance,
            Rule::SymmetryBrokenPair,
            Rule::OrbitSummary,
        ];
        let mut codes: Vec<&str> = all.iter().map(|r| r.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len());
    }

    #[test]
    fn report_counts_and_gate() {
        let mut report = LintReport::new();
        assert!(!report.has_errors());
        report.push(Diagnostic::new(Rule::DanglingNode, "ctx", "node x", "m"));
        assert!(!report.has_errors(), "warnings do not gate");
        report.push(Diagnostic::new(Rule::FloatingNode, "ctx", "node y", "m"));
        assert!(report.has_errors());
        assert_eq!(report.error_count(), 1);
        assert!(report.has_rule("SYM-L001"));
        assert!(!report.has_rule("SYM-L030"));
    }

    #[test]
    fn json_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        let mut report = LintReport::new();
        report.push(Diagnostic::new(Rule::BadResistor, "c\"x", "s", "m"));
        let json = report.to_json_string();
        assert!(json.contains(r#""rule":"SYM-L020""#), "{json}");
        assert!(json.contains(r#""errors":1"#), "{json}");
    }
}
