//! The full analysis suite over a SAR ADC instance: every built-in block
//! netlist through the netlist rules, every declared FD pair through the
//! symmetry rule, and (optionally) a defect universe through the universe
//! rules. This is what the `lint` binary and the service pre-flight run.

use symbist_adc::fault::Faultable;
use symbist_adc::SarAdc;
use symbist_defects::DefectUniverse;

use crate::diag::LintReport;
use crate::rules::lint_netlist;
use crate::symmetry::check_fd_symmetry;
use crate::universe_rules::lint_universe;

/// Lints every block netlist and FD-symmetry declaration of `adc`.
///
/// The instance's current defect/mismatch state flows into the snapshots,
/// so linting an injected instance shows *which* structural asymmetry the
/// defect introduces; gates lint the healthy instance.
pub fn lint_adc(adc: &SarAdc) -> LintReport {
    let mut report = LintReport::new();
    for (context, nl) in adc.lint_netlists() {
        report.extend(lint_netlist(&context, &nl));
    }
    for pair in adc.fd_pairs() {
        report.extend(check_fd_symmetry(&pair));
    }
    report
}

/// [`lint_adc`] plus defect-universe validation against the ADC's
/// component catalog.
pub fn lint_adc_with_universe(adc: &SarAdc, universe: &DefectUniverse) -> LintReport {
    let mut report = lint_adc(adc);
    report.extend(lint_universe(universe, adc.components()));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbist_adc::AdcConfig;
    use symbist_defects::LikelihoodModel;

    #[test]
    fn healthy_adc_has_no_errors() {
        let adc = SarAdc::new(AdcConfig::default());
        let report = lint_adc(&adc);
        assert_eq!(report.error_count(), 0, "{}", report.render_text());
    }

    #[test]
    fn suite_includes_universe_rules() {
        let adc = SarAdc::new(AdcConfig::default());
        let universe = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
        let report = lint_adc_with_universe(&adc, &universe);
        assert_eq!(report.error_count(), 0, "{}", report.render_text());
    }
}
