//! Stage-two static analysis: symmetry orbits, cone-of-influence
//! detectability, and the defect-class partition (rules `SYM-L050`,
//! `SYM-L051`, `SYM-L052`, `SYM-L060`).
//!
//! Where stage one ([`crate::rules`]) asks *"will this netlist simulate?"*,
//! this stage asks *"which defects can the declared invariances even
//! observe, and which are equivalent to each other?"* — all before a
//! single defect is injected. Two facts power it:
//!
//! * **Orbit equivalence.** If an automorphism of the colored netlist
//!   graph (colors: device kind + quantized parameters + per-invariance
//!   observation tags) maps device `u` onto device `v`, then any defect on
//!   `u` produces, up to that same relabeling, the *identical* faulty
//!   network — and because the automorphism fixes every invariance's
//!   observation structure, the invariance deviations coincide. Same-orbit
//!   defects of the same kind are therefore equivalence-class siblings:
//!   one representative simulation decides the whole class. (For DUTs
//!   whose campaign behavior goes through behavioral abstractions rather
//!   than the analyzed netlist, the claim is validated empirically by the
//!   class campaign's seeded sibling cross-check.)
//! * **Cone of influence.** A defect can only move an invariance's
//!   deviation if its component is topologically connected to the
//!   invariance's observed nodes. Connectivity is taken conservatively —
//!   switches conduct regardless of state, capacitors couple (transient),
//!   every MOSFET terminal couples, controlled sources couple their
//!   control pairs — so "outside the cone" is a *proof* of static
//!   undetectability, never a guess.

use std::collections::BTreeMap;

use symbist_adc::SarAdc;
use symbist_circuit::netlist::{Device, DeviceId, Netlist, NodeId};
use symbist_circuit::topology::DisjointSet;
use symbist_defects::{DefectUniverse, LikelihoodModel};

use crate::diag::{json_str, Diagnostic, LintReport, Rule};
use crate::orbit::{orbit_partition, OrbitPartition};

/// One invariance as the analyzer sees it: a named set of observed nodes
/// (mutually symmetric — the invariance reads them interchangeably, as
/// both `V_a + V_b` and `|V_a − V_b|` do) plus reference taps the checker
/// compares against.
#[derive(Debug, Clone)]
pub struct ObservedInvariance {
    /// Invariance name (stable; used in diagnostics and class reports).
    pub name: String,
    /// Kind tag, e.g. `"complementary"` or `"replica"`.
    pub kind: String,
    /// Whether the invariance *claims* structural symmetry between its
    /// observed nodes (replica/FD halves). Only claiming invariances are
    /// checked by `SYM-L052`.
    pub symmetric: bool,
    /// The observed nodes (interchangeable under the invariance).
    pub observed: Vec<NodeId>,
    /// Reference nodes (window-comparator references etc.).
    pub reference: Vec<NodeId>,
}

/// Input to the analyzer: a netlist, the defect-catalog bindings, and the
/// observed invariances.
///
/// `bindings[i]` is the netlist device representing catalog component `i`,
/// or `None` when the component is behavioral (not present in the static
/// netlist). Unbound components are handled conservatively: their defects
/// form singleton classes and are never claimed undetectable.
#[derive(Debug)]
pub struct AnalysisModel<'a> {
    /// Report context (DUT name).
    pub context: String,
    /// The healthy netlist under analysis.
    pub netlist: &'a Netlist,
    /// Catalog index → device binding.
    pub bindings: &'a [Option<DeviceId>],
    /// The declared invariances.
    pub invariances: &'a [ObservedInvariance],
}

/// One equivalence class of defects: same device orbit, same defect kind.
#[derive(Debug, Clone, PartialEq)]
pub struct DefectClass {
    /// Canonical orbit id of the class's devices (or a synthetic singleton
    /// id for unbound components).
    pub orbit: usize,
    /// Defect-kind label (`short`, `open-gate`, …).
    pub kind: String,
    /// Universe indices of the members, ascending. The first member is the
    /// class representative.
    pub members: Vec<usize>,
}

/// The full static-analysis result for one DUT.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisReport {
    /// Report context (DUT name).
    pub context: String,
    /// Universe size the classes partition.
    pub universe_size: usize,
    /// Catalog components bound to a netlist device.
    pub bound_components: usize,
    /// Catalog components with no binding (behavioral).
    pub unmodeled_components: usize,
    /// Distinct node orbits of the analyzed netlist.
    pub node_orbit_count: usize,
    /// Distinct device orbits of the analyzed netlist.
    pub device_orbit_count: usize,
    /// Canonical certificate hash (deck fingerprint, shuffle-invariant).
    pub certificate: u64,
    /// The defect-class partition, in deterministic (orbit, kind) order.
    pub classes: Vec<DefectClass>,
    /// Universe indices provably outside every invariance's cone.
    pub undetectable: Vec<usize>,
    /// L050/L051/L052/L060 findings.
    pub diagnostics: LintReport,
}

impl AnalysisReport {
    /// The class partition as plain member lists — the input shape of the
    /// class-representative campaign in `symbist-defects` (which must not
    /// depend on this crate).
    pub fn partition(&self) -> Vec<Vec<usize>> {
        self.classes.iter().map(|c| c.members.clone()).collect()
    }

    /// Number of classes with more than one member (the simulation-savings
    /// substrate).
    pub fn multi_member_classes(&self) -> usize {
        self.classes.iter().filter(|c| c.members.len() > 1).count()
    }

    /// Defects that a class-representative campaign would *not* simulate:
    /// `universe_size − classes.len()` (one representative per class).
    pub fn defects_saved(&self) -> usize {
        self.universe_size.saturating_sub(self.classes.len())
    }

    /// Machine-readable JSON rendering.
    pub fn to_json_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"context\":{},\"universe_size\":{},\"bound_components\":{},\
             \"unmodeled_components\":{},\"node_orbits\":{},\"device_orbits\":{},\
             \"certificate\":\"{:016x}\",\"class_count\":{},\"defects_saved\":{},\
             \"undetectable\":[",
            json_str(&self.context),
            self.universe_size,
            self.bound_components,
            self.unmodeled_components,
            self.node_orbit_count,
            self.device_orbit_count,
            self.certificate,
            self.classes.len(),
            self.defects_saved(),
        );
        for (i, idx) in self.undetectable.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{idx}");
        }
        out.push_str("],\"classes\":[");
        for (i, class) in self.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"orbit\":{},\"kind\":{},\"members\":[",
                class.orbit,
                json_str(&class.kind)
            );
            for (j, m) in class.members.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{m}");
            }
            out.push_str("]}");
        }
        out.push_str("],\"diagnostics\":");
        out.push_str(&self.diagnostics.to_json_string());
        out.push('}');
        out
    }

    /// Short JSON summary (counts only) — folded into `GET /v1/lint/{id}`.
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"node_orbits\":{},\"device_orbits\":{},\"class_count\":{},\
             \"defects_saved\":{},\"undetectable\":{},\"certificate\":\"{:016x}\",\
             \"errors\":{},\"warnings\":{}}}",
            self.node_orbit_count,
            self.device_orbit_count,
            self.classes.len(),
            self.defects_saved(),
            self.undetectable.len(),
            self.certificate,
            self.diagnostics.error_count(),
            self.diagnostics.count(crate::Severity::Warning),
        )
    }

    /// Human-readable rendering (the `lint --analysis` default output).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "static symmetry analysis: {}", self.context);
        let _ = writeln!(
            out,
            "  universe: {} defect(s) over {} bound + {} unmodeled component(s)",
            self.universe_size, self.bound_components, self.unmodeled_components
        );
        let _ = writeln!(
            out,
            "  orbits: {} node, {} device (certificate {:016x})",
            self.node_orbit_count, self.device_orbit_count, self.certificate
        );
        let _ = writeln!(
            out,
            "  classes: {} ({} multi-member) — a representative campaign \
             simulates {} instead of {}",
            self.classes.len(),
            self.multi_member_classes(),
            self.classes.len(),
            self.universe_size
        );
        let _ = writeln!(
            out,
            "  statically undetectable: {} defect(s)",
            self.undetectable.len()
        );
        out.push_str(&self.diagnostics.render_text());
        out
    }
}

/// Builds the observation coloring: every observed/reference node is
/// tagged with its invariance memberships, so automorphisms must fix each
/// invariance's observation structure (observed nodes of one invariance
/// stay interchangeable; reference nodes stay pinned to their role).
fn observation_colors(invariances: &[ObservedInvariance]) -> BTreeMap<usize, String> {
    let mut tags: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for inv in invariances {
        for &node in &inv.observed {
            tags.entry(node.index())
                .or_default()
                .push(format!("inv:{}:{}:obs", inv.name, inv.kind));
        }
        for &node in &inv.reference {
            tags.entry(node.index())
                .or_default()
                .push(format!("inv:{}:{}:ref", inv.name, inv.kind));
        }
    }
    tags.into_iter()
        .map(|(node, mut list)| {
            list.sort_unstable();
            list.dedup();
            (node, list.join("|"))
        })
        .collect()
}

/// Conservative influence closure: every device couples all its terminals
/// (switches regardless of state, capacitors, MOS gates, control pairs).
fn influence_components(nl: &Netlist) -> DisjointSet {
    let mut dsu = DisjointSet::new(nl.node_count());
    for (_, device) in nl.iter() {
        let terminals = device.terminals();
        if let Some((&first, rest)) = terminals.split_first() {
            for &t in rest {
                dsu.union(first.index(), t.index());
            }
        }
    }
    dsu
}

/// Runs the stage-two analysis.
///
/// # Panics
///
/// Panics if a binding references a device outside the netlist, or if a
/// universe defect references a component outside the bindings slice —
/// both are construction bugs of the caller, not data errors.
pub fn analyze(model: &AnalysisModel<'_>, universe: &DefectUniverse) -> AnalysisReport {
    let nl = model.netlist;
    let colors = observation_colors(model.invariances);
    let orbits: OrbitPartition = orbit_partition(nl, &colors);
    let mut report = LintReport::new();
    let context = model.context.clone();

    // --- Cone of influence per invariance ------------------------------
    let mut dsu = influence_components(nl);
    let inv_roots: Vec<Vec<usize>> = model
        .invariances
        .iter()
        .map(|inv| {
            let mut roots: Vec<usize> = inv
                .observed
                .iter()
                .chain(&inv.reference)
                .map(|n| dsu.find(n.index()))
                .collect();
            roots.sort_unstable();
            roots.dedup();
            roots
        })
        .collect();
    let device_in_cone = |device: DeviceId, roots: &[usize], dsu: &mut DisjointSet| {
        nl.device(device)
            .terminals()
            .iter()
            .any(|t| roots.binary_search(&dsu.find(t.index())).is_ok())
    };

    // Per-component reachability: in the cone of at least one invariance?
    let mut component_reachable: Vec<Option<bool>> = Vec::with_capacity(model.bindings.len());
    for binding in model.bindings {
        component_reachable.push(binding.map(|device| {
            inv_roots
                .iter()
                .any(|roots| device_in_cone(device, roots, &mut dsu))
        }));
    }

    // --- SYM-L051: invariance observing no defect site -----------------
    for (inv, roots) in model.invariances.iter().zip(&inv_roots) {
        let observes_any = model
            .bindings
            .iter()
            .flatten()
            .any(|&device| device_in_cone(device, roots, &mut dsu));
        if !observes_any {
            report.push(Diagnostic::new(
                Rule::DeadInvariance,
                context.clone(),
                format!("invariance {}", inv.name),
                "no defect site lies in this invariance's cone of influence \
                 — it can never detect anything"
                    .to_string(),
            ));
        }
    }

    // --- SYM-L052: symmetry-broken declared pair ------------------------
    // Checked against a partition colored by *this invariance alone*: the
    // claim is that the netlist (plus this invariance's own observation
    // structure) admits an automorphism exchanging the declared halves.
    // The global partition would be wrong here — a node observed by two
    // invariances gets a different color than its partner observed by one,
    // so any overlapping declarations would fail the check even on
    // perfectly mirrored structure.
    for inv in model.invariances {
        if !inv.symmetric || inv.observed.len() < 2 {
            continue;
        }
        let solo = orbit_partition(nl, &observation_colors(std::slice::from_ref(inv)));
        let first = inv.observed[0];
        for &other in &inv.observed[1..] {
            if solo.node_orbits[first.index()] != solo.node_orbits[other.index()] {
                report.push(Diagnostic::new(
                    Rule::SymmetryBrokenPair,
                    context.clone(),
                    format!("invariance {}", inv.name),
                    format!(
                        "declared symmetric nodes {} and {} lie in different \
                         structural orbits — the halves are not exchangeable \
                         by any netlist automorphism",
                        node_label(nl, first),
                        node_label(nl, other),
                    ),
                ));
                break;
            }
        }
    }

    // --- Defect classes + SYM-L050 --------------------------------------
    // Key: bound → (device orbit, kind); unbound → (synthetic singleton
    // orbit per component, kind). Synthetic ids start past the real ones.
    let singleton_base = orbits.orbit_count;
    let mut classes: BTreeMap<(usize, String), Vec<usize>> = BTreeMap::new();
    let mut undetectable: Vec<usize> = Vec::new();
    let mut undetectable_components: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (idx, defect) in universe.iter().enumerate() {
        let component = defect.site.component;
        let kind = defect.site.kind.to_string();
        let orbit = match model.bindings[component] {
            Some(device) => orbits.device_orbits[device.index()],
            None => singleton_base + component,
        };
        classes.entry((orbit, kind.clone())).or_default().push(idx);
        if component_reachable[component] == Some(false) {
            undetectable.push(idx);
            undetectable_components
                .entry(component)
                .or_default()
                .push(kind);
        }
    }
    for (component, kinds) in undetectable_components {
        let name = universe
            .iter()
            .find(|d| d.site.component == component)
            .map(|d| d.component_name.clone())
            .unwrap_or_else(|| format!("component#{component}"));
        report.push(Diagnostic::new(
            Rule::StaticallyUndetectable,
            context.clone(),
            name,
            format!(
                "outside every invariance's cone of influence — {} defect(s) \
                 ({}) cannot move any observed node",
                kinds.len(),
                kinds.join(", "),
            ),
        ));
    }

    let classes: Vec<DefectClass> = classes
        .into_iter()
        .map(|((orbit, kind), members)| DefectClass {
            orbit,
            kind,
            members,
        })
        .collect();

    let bound = model.bindings.iter().flatten().count();
    let mut out = AnalysisReport {
        context: context.clone(),
        universe_size: universe.len(),
        bound_components: bound,
        unmodeled_components: model.bindings.len() - bound,
        node_orbit_count: orbits.node_orbit_count(),
        device_orbit_count: orbits.device_orbit_count(),
        certificate: orbits.certificate,
        classes,
        undetectable,
        diagnostics: report,
    };

    // --- SYM-L060: orbit summary ----------------------------------------
    out.diagnostics.push(Diagnostic::new(
        Rule::OrbitSummary,
        context,
        "orbit summary",
        format!(
            "{} node orbit(s), {} device orbit(s), {} defect class(es) over \
             {} defect(s) ({} saved by class representatives); certificate \
             {:016x}",
            out.node_orbit_count,
            out.device_orbit_count,
            out.classes.len(),
            out.universe_size,
            out.defects_saved(),
            out.certificate,
        ),
    ));
    out
}

fn node_label(nl: &Netlist, node: NodeId) -> String {
    match nl.node_name(node) {
        Some(name) => name.to_string(),
        None if node.is_ground() => "gnd".to_string(),
        None => format!("n{}", node.index()),
    }
}

/// Copies `src` into `dst`, returning the node mapping (`src` node index →
/// `dst` node). Ground maps to ground; every other node gets a fresh
/// anonymous node (names are deliberately dropped — orbit analysis is
/// name-blind). Returns the device mapping in card order.
fn splice_netlist(dst: &mut Netlist, src: &Netlist) -> (Vec<NodeId>, Vec<DeviceId>) {
    fn map(dst: &mut Netlist, node: NodeId, node_map: &mut [Option<NodeId>]) -> NodeId {
        if let Some(mapped) = node_map[node.index()] {
            return mapped;
        }
        let fresh = dst.fresh_node();
        node_map[node.index()] = Some(fresh);
        fresh
    }
    let mut node_map: Vec<Option<NodeId>> = vec![None; src.node_count()];
    node_map[Netlist::GND.index()] = Some(Netlist::GND);
    let mut devices = Vec::with_capacity(src.device_count());
    for (_, device) in src.iter() {
        let id = match *device {
            Device::Resistor { a, b, ohms } => {
                let (a, b) = (map(dst, a, &mut node_map), map(dst, b, &mut node_map));
                dst.resistor(a, b, ohms)
            }
            Device::Capacitor { a, b, farads, ic } => {
                let (a, b) = (map(dst, a, &mut node_map), map(dst, b, &mut node_map));
                match ic {
                    Some(v) => dst.capacitor_with_ic(a, b, farads, v),
                    None => dst.capacitor(a, b, farads),
                }
            }
            Device::VSource { p, n, ref wave } => {
                let (p, n) = (map(dst, p, &mut node_map), map(dst, n, &mut node_map));
                dst.vsource_wave(p, n, wave.clone())
            }
            Device::ISource { p, n, ref wave } => {
                let (p, n) = (map(dst, p, &mut node_map), map(dst, n, &mut node_map));
                dst.isource_wave(p, n, wave.clone())
            }
            Device::Switch {
                a,
                b,
                closed,
                r_on,
                r_off,
            } => {
                let (a, b) = (map(dst, a, &mut node_map), map(dst, b, &mut node_map));
                let id = dst.switch(a, b, r_on, r_off);
                dst.set_switch(id, closed);
                id
            }
            Device::Diode {
                anode,
                cathode,
                i_sat,
                ideality,
            } => {
                let (anode, cathode) = (
                    map(dst, anode, &mut node_map),
                    map(dst, cathode, &mut node_map),
                );
                dst.diode(anode, cathode, i_sat, ideality)
            }
            Device::Mosfet {
                d,
                g,
                s,
                polarity,
                vth,
                kp,
                lambda,
            } => {
                let (d, g, s) = (
                    map(dst, d, &mut node_map),
                    map(dst, g, &mut node_map),
                    map(dst, s, &mut node_map),
                );
                dst.mosfet(d, g, s, polarity, vth, kp, lambda)
            }
            Device::Vcvs { p, n, cp, cn, gain } => {
                let (p, n, cp, cn) = (
                    map(dst, p, &mut node_map),
                    map(dst, n, &mut node_map),
                    map(dst, cp, &mut node_map),
                    map(dst, cn, &mut node_map),
                );
                dst.vcvs(p, n, cp, cn, gain)
            }
            Device::Vccs { p, n, cp, cn, gm } => {
                let (p, n, cp, cn) = (
                    map(dst, p, &mut node_map),
                    map(dst, n, &mut node_map),
                    map(dst, cp, &mut node_map),
                    map(dst, cn, &mut node_map),
                );
                dst.vccs(p, n, cp, cn, gm)
            }
        };
        devices.push(id);
    }
    let nodes = node_map
        .into_iter()
        .map(|n| n.unwrap_or(Netlist::GND))
        .collect();
    (nodes, devices)
}

/// Runs the stage-two analysis over the built-in SAR ADC: the whole-ADC
/// static model through [`analyze`], plus [`check_fd_pair_orbits`] over
/// every declared FD pair.
pub fn analyze_adc(adc: &SarAdc) -> AnalysisReport {
    let universe = DefectUniverse::enumerate(adc, &LikelihoodModel::default());
    analyze_adc_with_universe(adc, &universe)
}

/// [`analyze_adc`] against a caller-supplied universe (which must have
/// been enumerated from the same component catalog).
pub fn analyze_adc_with_universe(adc: &SarAdc, universe: &DefectUniverse) -> AnalysisReport {
    let model = adc.analysis_model();
    let invariances: Vec<ObservedInvariance> = model
        .observations
        .iter()
        .map(|o| ObservedInvariance {
            name: o.name.clone(),
            kind: o.kind.clone(),
            symmetric: o.symmetric,
            observed: o.observed.clone(),
            reference: o.reference.clone(),
        })
        .collect();
    let analysis_model = AnalysisModel {
        context: "sar-adc".into(),
        netlist: &model.netlist,
        bindings: &model.bindings,
        invariances: &invariances,
    };
    let mut report = analyze(&analysis_model, universe);
    for pair in adc.fd_pairs() {
        report.diagnostics.extend(check_fd_pair_orbits(&pair));
    }
    report
}

/// Structural-orbit refinement of the FD-pair check (`SYM-L052` on an
/// [`FdPair`]): merges both halves into one deck, pins the declared seed
/// correspondences with shared colors, and verifies that every seed pair —
/// and every same-position device pair — lands in one orbit, i.e. the two
/// halves are exchangeable by an actual automorphism of the merged
/// network.
///
/// [`FdPair`]: symbist_adc::FdPair
pub fn check_fd_pair_orbits(pair: &symbist_adc::FdPair) -> LintReport {
    let mut report = LintReport::new();
    let context = format!("fd pair: {}", pair.name);
    if pair.p.device_count() != pair.n.device_count() {
        // Grossly asymmetric; L030 already reports the cardinality
        // mismatch with better attribution.
        return report;
    }
    let mut merged = Netlist::new();
    let (p_nodes, p_devices) = splice_netlist(&mut merged, &pair.p);
    let (n_nodes, n_devices) = splice_netlist(&mut merged, &pair.n);
    let mut colors: BTreeMap<usize, String> = BTreeMap::new();
    for (i, &(p, n)) in pair.seeds.iter().enumerate() {
        colors.insert(p_nodes[p.index()].index(), format!("seed:{i}"));
        colors.insert(n_nodes[n.index()].index(), format!("seed:{i}"));
    }
    let orbits = orbit_partition(&merged, &colors);
    for (i, (&pd, &nd)) in p_devices.iter().zip(&n_devices).enumerate() {
        if orbits.device_orbits[pd.index()] != orbits.device_orbits[nd.index()] {
            report.push(Diagnostic::new(
                Rule::SymmetryBrokenPair,
                context.clone(),
                format!("device #{i}"),
                "P and N instances of this position lie in different \
                 structural orbits — no automorphism of the merged network \
                 exchanges the declared halves"
                    .to_string(),
            ));
            return report;
        }
    }
    for (i, &(p, n)) in pair.seeds.iter().enumerate() {
        let (pm, nm) = (p_nodes[p.index()], n_nodes[n.index()]);
        if orbits.node_orbits[pm.index()] != orbits.node_orbits[nm.index()] {
            report.push(Diagnostic::new(
                Rule::SymmetryBrokenPair,
                context.clone(),
                format!("seed #{i}"),
                format!(
                    "seed correspondence {} ↔ {} is not realized by any \
                     automorphism of the merged network",
                    node_label(&pair.p, p),
                    node_label(&pair.n, n),
                ),
            ));
            return report;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbist_adc::fault::{BlockKind, ComponentInfo, ComponentKind, DefectSite, Faultable};
    use symbist_defects::LikelihoodModel;

    /// A minimal faultable harness over an explicit catalog.
    struct Harness(Vec<ComponentInfo>);
    impl Faultable for Harness {
        fn components(&self) -> &[ComponentInfo] {
            &self.0
        }
        fn inject(&mut self, _site: DefectSite) {}
        fn clear_defects(&mut self) {}
        fn injected(&self) -> Option<DefectSite> {
            None
        }
    }

    fn resistor_info(name: &str) -> ComponentInfo {
        ComponentInfo {
            block: BlockKind::ScArray,
            name: name.to_string(),
            kind: ComponentKind::Resistor,
            area: 2.0,
        }
    }

    #[test]
    fn symmetric_divider_halves_classes() {
        // FD divider: 4 resistors, P/N mirror. Classes must pair them.
        let mut nl = Netlist::new();
        let vref = nl.node("vref");
        let outp = nl.node("outp");
        let outn = nl.node("outn");
        nl.vsource(vref, Netlist::GND, 1.2);
        let r1 = nl.resistor(vref, outp, 1e3);
        let r2 = nl.resistor(outp, Netlist::GND, 1e3);
        let r3 = nl.resistor(vref, outn, 1e3);
        let r4 = nl.resistor(outn, Netlist::GND, 1e3);
        let harness = Harness(vec![
            resistor_info("RP1"),
            resistor_info("RP2"),
            resistor_info("RN1"),
            resistor_info("RN2"),
        ]);
        let universe = DefectUniverse::enumerate(&harness, &LikelihoodModel::default());
        assert_eq!(universe.len(), 16);
        let bindings = vec![Some(r1), Some(r2), Some(r3), Some(r4)];
        let invariances = vec![ObservedInvariance {
            name: "sum".into(),
            kind: "complementary".into(),
            symmetric: true,
            observed: vec![outp, outn],
            reference: vec![],
        }];
        let model = AnalysisModel {
            context: "divider".into(),
            netlist: &nl,
            bindings: &bindings,
            invariances: &invariances,
        };
        let analysis = analyze(&model, &universe);
        // 4 kinds × 2 orbit pairs = 8 classes, each of size 2.
        assert_eq!(analysis.classes.len(), 8, "{}", analysis.render_text());
        assert!(analysis.classes.iter().all(|c| c.members.len() == 2));
        assert_eq!(analysis.defects_saved(), 8);
        assert!(analysis.undetectable.is_empty());
        assert!(!analysis.diagnostics.has_errors());
        assert!(analysis.diagnostics.has_rule("SYM-L060"));
        // Partition covers the whole universe exactly once.
        let mut all: Vec<usize> = analysis.partition().into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn isolated_site_fires_l050() {
        let mut nl = Netlist::new();
        let vref = nl.node("vref");
        let out = nl.node("out");
        nl.vsource(vref, Netlist::GND, 1.0);
        let r_main = nl.resistor(vref, out, 1e3);
        // An island: two resistors chained off a floating net, no path to
        // the observed part.
        let island_a = nl.node("island_a");
        let island_b = nl.node("island_b");
        let r_island = nl.resistor(island_a, island_b, 1e3);
        let harness = Harness(vec![resistor_info("RMAIN"), resistor_info("RISLAND")]);
        let universe = DefectUniverse::enumerate(&harness, &LikelihoodModel::default());
        let bindings = vec![Some(r_main), Some(r_island)];
        let invariances = vec![ObservedInvariance {
            name: "obs".into(),
            kind: "replica".into(),
            symmetric: false,
            observed: vec![out],
            reference: vec![],
        }];
        let model = AnalysisModel {
            context: "island".into(),
            netlist: &nl,
            bindings: &bindings,
            invariances: &invariances,
        };
        let analysis = analyze(&model, &universe);
        assert!(analysis.diagnostics.has_rule("SYM-L050"));
        // All 4 defects of RISLAND, none of RMAIN.
        assert_eq!(analysis.undetectable, vec![4, 5, 6, 7]);
    }

    #[test]
    fn dead_invariance_fires_l051() {
        let mut nl = Netlist::new();
        let vref = nl.node("vref");
        let out = nl.node("out");
        nl.vsource(vref, Netlist::GND, 1.0);
        let r = nl.resistor(vref, out, 1e3);
        // A second, disconnected observed net with no defect sites on it.
        let dead_a = nl.node("dead_a");
        let dead_b = nl.node("dead_b");
        nl.vsource(dead_a, dead_b, 0.5);
        let harness = Harness(vec![resistor_info("R1")]);
        let universe = DefectUniverse::enumerate(&harness, &LikelihoodModel::default());
        let bindings = vec![Some(r)];
        let invariances = vec![
            ObservedInvariance {
                name: "live".into(),
                kind: "replica".into(),
                symmetric: false,
                observed: vec![out],
                reference: vec![],
            },
            ObservedInvariance {
                name: "dead".into(),
                kind: "replica".into(),
                symmetric: false,
                observed: vec![dead_a, dead_b],
                reference: vec![],
            },
        ];
        let model = AnalysisModel {
            context: "dead-inv".into(),
            netlist: &nl,
            bindings: &bindings,
            invariances: &invariances,
        };
        let analysis = analyze(&model, &universe);
        assert!(analysis.diagnostics.has_rule("SYM-L051"));
        let l051: Vec<_> = analysis
            .diagnostics
            .diagnostics()
            .iter()
            .filter(|d| d.rule == Rule::DeadInvariance)
            .collect();
        assert_eq!(l051.len(), 1);
        assert!(l051[0].subject.contains("dead"), "{}", l051[0].subject);
    }

    #[test]
    fn asymmetric_pair_fires_l052() {
        let mut nl = Netlist::new();
        let vref = nl.node("vref");
        let outp = nl.node("outp");
        let outn = nl.node("outn");
        nl.vsource(vref, Netlist::GND, 1.2);
        let r1 = nl.resistor(vref, outp, 1e3);
        let r2 = nl.resistor(outp, Netlist::GND, 1e3);
        let r3 = nl.resistor(vref, outn, 2e3); // asymmetric leg
        let r4 = nl.resistor(outn, Netlist::GND, 1e3);
        let harness = Harness(vec![
            resistor_info("RP1"),
            resistor_info("RP2"),
            resistor_info("RN1"),
            resistor_info("RN2"),
        ]);
        let universe = DefectUniverse::enumerate(&harness, &LikelihoodModel::default());
        let bindings = vec![Some(r1), Some(r2), Some(r3), Some(r4)];
        let invariances = vec![ObservedInvariance {
            name: "rep".into(),
            kind: "replica".into(),
            symmetric: true,
            observed: vec![outp, outn],
            reference: vec![],
        }];
        let model = AnalysisModel {
            context: "broken".into(),
            netlist: &nl,
            bindings: &bindings,
            invariances: &invariances,
        };
        let analysis = analyze(&model, &universe);
        assert!(analysis.diagnostics.has_rule("SYM-L052"));
        assert!(analysis.diagnostics.has_errors());
        // No classes pair across the broken mirror.
        assert!(analysis.classes.iter().all(|c| c.members.len() == 1));
    }

    #[test]
    fn adc_analysis_pairs_differential_halves() {
        use symbist_adc::{AdcConfig, SarAdc};
        let report = analyze_adc(&SarAdc::new(AdcConfig::default()));
        // The P/N mirror must hold: no symmetry-broken pairs, and every
        // invariance observes defect sites.
        assert!(
            !report.diagnostics.has_errors(),
            "{}",
            report.diagnostics.render_text()
        );
        assert!(!report.diagnostics.has_rule("SYM-L051"));
        // 16 bandgap + 41 refbuf/ladder + 2×276 sub-DAC + 14 SC + 6 Vcm
        // bound; the behavioral comparator chain and the dead end taps
        // (P/tap32, N/tap0 — never selected by the 5-bit sweep) stay
        // unmodeled.
        assert_eq!(report.bound_components, 629);
        assert_eq!(report.unmodeled_components, 42);
        // Every mirrored component pair collapses its per-kind defects:
        // 268 sub-DAC MOSFET pairs ×6 kinds + 2 SC cap pairs ×4 + 5 SC
        // switch pairs ×6.
        assert_eq!(report.multi_member_classes(), 1646);
        assert_eq!(report.defects_saved(), 1646);
        // The partition covers the universe exactly.
        let covered: usize = report.classes.iter().map(|c| c.members.len()).sum();
        assert_eq!(covered, report.universe_size);
        // Deterministic across fresh constructions.
        let again = analyze_adc(&SarAdc::new(AdcConfig::default()));
        assert_eq!(report.certificate, again.certificate);
        assert_eq!(report.classes, again.classes);
    }

    #[test]
    fn json_and_summary_render() {
        let mut nl = Netlist::new();
        let out = nl.node("out");
        nl.vsource(out, Netlist::GND, 1.0);
        let r = nl.resistor(out, Netlist::GND, 1e3);
        let harness = Harness(vec![resistor_info("R1")]);
        let universe = DefectUniverse::enumerate(&harness, &LikelihoodModel::default());
        let bindings = vec![Some(r)];
        let invariances = vec![ObservedInvariance {
            name: "obs".into(),
            kind: "replica".into(),
            symmetric: false,
            observed: vec![out],
            reference: vec![],
        }];
        let model = AnalysisModel {
            context: "tiny".into(),
            netlist: &nl,
            bindings: &bindings,
            invariances: &invariances,
        };
        let analysis = analyze(&model, &universe);
        let json = analysis.to_json_string();
        assert!(json.contains("\"class_count\":4"), "{json}");
        assert!(json.contains("\"context\":\"tiny\""), "{json}");
        assert!(json.contains("SYM-L060"), "{json}");
        let summary = analysis.summary_json();
        assert!(summary.contains("\"class_count\":4"), "{summary}");
    }
}
