//! Netlist-level rules: connectivity, singularity prediction, and
//! parameter sanity.
//!
//! The singularity rules mirror the zero-pivot cases the sparse MNA engine
//! hits at runtime (`CircuitError::Singular`): a floating subcircuit, a
//! loop of ideal voltage constraints, a current source driving into a DC
//! cutset, and a node whose DC value exists only because the solver adds
//! gmin. Each is detected purely from the device graph — no matrix is
//! assembled.

use std::collections::BTreeMap;

use symbist_circuit::netlist::{device_param_issue, Device, Netlist, NodeId};
use symbist_circuit::topology::{DisjointSet, Topology};

use crate::diag::{Diagnostic, LintReport, Rule, Severity};

/// Renders a node for diagnostics: its name when it has one, else `n{idx}`.
fn node_label(nl: &Netlist, node: NodeId) -> String {
    match nl.node_name(node) {
        Some(name) => format!("node {name}"),
        None if node.is_ground() => "node gnd".to_string(),
        None => format!("node n{}", node.index()),
    }
}

/// Renders a device for diagnostics.
fn device_label(nl: &Netlist, id: symbist_circuit::DeviceId) -> String {
    format!("device #{} ({})", id.index(), nl.device(id).kind_name())
}

/// True when the device provides a DC-conductive (or DC-constraining)
/// edge between two terminals — the edge set of the DC-path analysis.
/// Capacitors block DC; current-source outputs and all control/gate
/// terminals inject no conductance into their nodes.
fn dc_edge(device: &Device) -> Option<(NodeId, NodeId)> {
    match *device {
        Device::Resistor { a, b, .. } | Device::Switch { a, b, .. } => Some((a, b)),
        Device::Diode { anode, cathode, .. } => Some((anode, cathode)),
        Device::Mosfet { d, s, .. } => Some((d, s)),
        Device::VSource { p, n, .. } | Device::Vcvs { p, n, .. } => Some((p, n)),
        Device::Capacitor { .. } | Device::ISource { .. } | Device::Vccs { .. } => None,
    }
}

/// True when the device forces an ideal voltage between two nodes —
/// the edge set of the voltage-loop analysis.
fn voltage_edge(device: &Device) -> Option<(NodeId, NodeId)> {
    match *device {
        Device::VSource { p, n, .. } | Device::Vcvs { p, n, .. } => Some((p, n)),
        _ => None,
    }
}

/// Runs every netlist rule on `nl`, labeling diagnostics with `context`.
pub fn lint_netlist(context: &str, nl: &Netlist) -> LintReport {
    let mut report = LintReport::new();
    let topo = Topology::of(nl);

    parameter_rules(context, nl, &mut report);
    floating_and_dangling(context, nl, &topo, &mut report);
    vsource_loops(context, nl, &mut report);
    dc_path_rules(context, nl, &topo, &mut report);
    report
}

/// SYM-L020..L025: one diagnostic per device whose parameters fail the
/// shared validator (the same check `Netlist::push` applies in debug
/// builds, so release-built netlists still get vetted here).
fn parameter_rules(context: &str, nl: &Netlist, report: &mut LintReport) {
    for (id, device) in nl.iter() {
        if let Some(issue) = device_param_issue(device) {
            let rule = match device {
                Device::Resistor { .. } => Rule::BadResistor,
                Device::Capacitor { .. } => Rule::BadCapacitor,
                Device::Switch { .. } => Rule::BadSwitch,
                Device::Mosfet { .. } => Rule::BadMosfet,
                Device::Diode { .. } => Rule::BadDiode,
                Device::VSource { .. }
                | Device::ISource { .. }
                | Device::Vcvs { .. }
                | Device::Vccs { .. } => Rule::BadSource,
            };
            report.push(Diagnostic::new(rule, context, device_label(nl, id), issue));
        }
    }
}

/// SYM-L001 (floating component) and SYM-L002 (dangling terminal).
fn floating_and_dangling(context: &str, nl: &Netlist, topo: &Topology, report: &mut LintReport) {
    // Group non-ground-connected nodes by component label.
    let mut islands: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
    for node in nl.nodes() {
        if !topo.connected_to_ground(node) {
            islands
                .entry(topo.component_label(node))
                .or_default()
                .push(node);
        }
    }
    for nodes in islands.values() {
        let labels: Vec<String> = nodes.iter().map(|&n| node_label(nl, n)).collect();
        report.push(Diagnostic::new(
            Rule::FloatingNode,
            context,
            labels.join(", "),
            format!(
                "{} node(s) have no connection to ground; their MNA rows are \
                 singular (or gmin-defined at best)",
                nodes.len()
            ),
        ));
    }
    // Dangling: exactly one terminal lands here and it is not an
    // independent source's (a source stub is deliberate drive, not a wiring
    // mistake). A *named* degree-1 node is a declared port — block outputs
    // like `m_plus` are observed by the solver, not loaded — so it is
    // reported at Info; an anonymous one is a likely unconnected wire.
    for node in nl.nodes() {
        if node.is_ground() || topo.degree(node) != 1 {
            continue;
        }
        let device = topo.devices_at(node)[0];
        if matches!(
            nl.device(device),
            Device::VSource { .. } | Device::ISource { .. }
        ) {
            continue;
        }
        let mut diag = Diagnostic::new(
            Rule::DanglingNode,
            context,
            node_label(nl, node),
            format!(
                "only one terminal ({}) lands on this node — likely an \
                 unconnected wire",
                device_label(nl, device)
            ),
        );
        if nl.node_name(node).is_some() {
            diag.severity = Severity::Info;
            diag.message = format!(
                "only one terminal ({}) lands on this named node — \
                 treated as a declared observation port",
                device_label(nl, device)
            );
        }
        report.push(diag);
    }
}

/// SYM-L010: a new ideal-voltage edge closing a cycle over the
/// voltage-constraint graph over-determines (or degenerates) the branch
/// equations. Includes the degenerate `p == n` self-loop.
fn vsource_loops(context: &str, nl: &Netlist, report: &mut LintReport) {
    let mut sets = DisjointSet::new(nl.node_count());
    for (id, device) in nl.iter() {
        let Some((p, n)) = voltage_edge(device) else {
            continue;
        };
        if !sets.union(p.index(), n.index()) {
            report.push(Diagnostic::new(
                Rule::VsourceLoop,
                context,
                device_label(nl, id),
                format!(
                    "closes a loop of ideal voltage constraints between {} \
                     and {}; the MNA branch equations become singular or \
                     contradictory",
                    node_label(nl, p),
                    node_label(nl, n)
                ),
            ));
        }
    }
}

/// SYM-L011 / SYM-L012: DC islands. Nodes that are attached to the circuit
/// (not floating) but have no DC-conductive path to ground either float
/// behind capacitors/controls (L012) or are driven only by a current
/// source, which cannot satisfy DC KCL (L011).
fn dc_path_rules(context: &str, nl: &Netlist, topo: &Topology, report: &mut LintReport) {
    let mut dc = DisjointSet::new(nl.node_count());
    for (_, device) in nl.iter() {
        if let Some((a, b)) = dc_edge(device) {
            dc.union(a.index(), b.index());
        }
    }
    let ground_root = dc.find(0);
    // Group DC-unreachable (but physically attached) nodes into islands.
    let mut islands: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
    for node in nl.nodes() {
        if dc.find(node.index()) != ground_root && topo.connected_to_ground(node) {
            islands.entry(dc.find(node.index())).or_default().push(node);
        }
    }
    for nodes in islands.values() {
        // Does a current source terminal land on this island?
        let has_isource = nodes.iter().any(|&node| {
            topo.devices_at(node).iter().any(|&id| match nl.device(id) {
                Device::ISource { p, n, .. } | Device::Vccs { p, n, .. } => {
                    *p == node || *n == node
                }
                _ => false,
            })
        });
        let labels: Vec<String> = nodes.iter().map(|&n| node_label(nl, n)).collect();
        if has_isource {
            report.push(Diagnostic::new(
                Rule::IsourceCutset,
                context,
                labels.join(", "),
                "a current source drives into an island with no DC return \
                 path; DC KCL cannot be satisfied"
                    .to_string(),
            ));
        } else {
            report.push(Diagnostic::new(
                Rule::NoDcPath,
                context,
                labels.join(", "),
                format!(
                    "{} node(s) reach ground only through capacitors or \
                     control terminals; their DC value is set by gmin \
                     regularization, not by the circuit",
                    nodes.len()
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbist_circuit::netlist::MosPolarity;

    fn lint(nl: &Netlist) -> LintReport {
        lint_netlist("test", nl)
    }

    #[test]
    fn clean_divider_is_clean() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource(a, Netlist::GND, 1.0);
        nl.resistor(a, b, 1e3);
        nl.resistor(b, Netlist::GND, 1e3);
        let report = lint(&nl);
        assert!(report.diagnostics().is_empty(), "{}", report.render_text());
    }

    #[test]
    fn floating_island_fires_l001() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let x = nl.node("x");
        let y = nl.node("y");
        nl.resistor(a, Netlist::GND, 1e3);
        nl.resistor(x, y, 1e3);
        let report = lint(&nl);
        assert!(report.has_rule("SYM-L001"), "{}", report.render_text());
    }

    #[test]
    fn vsource_loop_fires_l010() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource(a, Netlist::GND, 1.0);
        nl.vsource(a, Netlist::GND, 2.0); // parallel ideal sources
        let report = lint(&nl);
        assert!(report.has_rule("SYM-L010"), "{}", report.render_text());
    }

    #[test]
    fn cap_only_node_fires_l012() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource(a, Netlist::GND, 1.0);
        nl.capacitor(a, b, 1e-12);
        nl.capacitor(b, Netlist::GND, 1e-12);
        let report = lint(&nl);
        assert!(report.has_rule("SYM-L012"), "{}", report.render_text());
        assert!(!report.has_rule("SYM-L001"), "attached, not floating");
    }

    #[test]
    fn isource_into_cap_fires_l011() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.isource(a, Netlist::GND, 1e-6);
        nl.capacitor(a, Netlist::GND, 1e-12);
        let report = lint(&nl);
        assert!(report.has_rule("SYM-L011"), "{}", report.render_text());
    }

    #[test]
    fn mos_gate_only_node_fires_l012() {
        let mut nl = Netlist::new();
        let d = nl.node("d");
        let g = nl.node("g");
        nl.vsource(d, Netlist::GND, 1.0);
        nl.mosfet(d, g, Netlist::GND, MosPolarity::Nmos, 0.4, 1e-3, 0.0);
        nl.capacitor(g, Netlist::GND, 1e-12);
        let report = lint(&nl);
        // The gate node has no DC drive: its row is gmin-only.
        assert!(report.has_rule("SYM-L012"), "{}", report.render_text());
    }

    #[test]
    fn dangling_terminal_warns_l002() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let stub = nl.fresh_node(); // anonymous → suspicious
        nl.vsource(a, Netlist::GND, 1.0);
        nl.resistor(a, Netlist::GND, 1e3);
        nl.resistor(a, stub, 1e3); // goes nowhere
        let report = lint(&nl);
        assert!(report.has_rule("SYM-L002"), "{}", report.render_text());
        assert_eq!(report.count(Severity::Warning), 1);
        // Dangling is a warning, but the stub node is also DC-connected
        // through the resistor — it must NOT fire the island rules.
        assert!(!report.has_rule("SYM-L012"));
        assert!(!report.has_rule("SYM-L001"));
    }

    #[test]
    fn named_port_downgrades_to_info() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let out = nl.node("out"); // declared observation port
        nl.vsource(a, Netlist::GND, 1.0);
        nl.resistor(a, Netlist::GND, 1e3);
        nl.resistor(a, out, 1e3);
        let report = lint(&nl);
        assert!(report.has_rule("SYM-L002"));
        assert_eq!(report.count(Severity::Warning), 0);
        assert_eq!(report.count(Severity::Info), 1);
    }
}
