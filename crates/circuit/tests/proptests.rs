//! Property-based tests for the circuit engine.
//!
//! Each property runs over a deterministic family of seeded random cases
//! (the repo's own [`Rng`] is the case generator, so no external
//! property-testing dependency is needed and every failure is reproducible
//! from the printed seed).
#![allow(clippy::unwrap_used)] // integration tests assert by panicking

use symbist_circuit::dc::{DcOptions, DcSolver, EngineChoice};
use symbist_circuit::matrix::Matrix;
use symbist_circuit::mc::{MismatchSpec, Param, Variation};
use symbist_circuit::netlist::Netlist;
use symbist_circuit::rng::Rng;
use symbist_circuit::transient::{TransientOptions, TransientSim};

fn solver(engine: EngineChoice) -> DcSolver {
    DcSolver::with_options(DcOptions {
        engine,
        ..Default::default()
    })
}

/// LU solve round-trips: A·x recovered for random well-conditioned A.
#[test]
fn lu_roundtrip() {
    for seed in 0u64..64 {
        let mut rng = Rng::seed_from_u64(seed);
        let n = 1 + rng.below(11) as usize;
        let mut a = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a.set(r, c, rng.uniform(-1.0, 1.0));
            }
            // Diagonal dominance keeps the condition number small.
            a.add(r, r, 2.0 * n as f64);
        }
        let x_true: Vec<f64> = (0..n).map(|_| rng.uniform(-5.0, 5.0)).collect();
        let b = a.mul_vec(&x_true);
        let x = a.solve(&b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "seed {seed}: {got} vs {want}");
        }
    }
}

/// A resistive divider's output is always between the rails and matches
/// the analytic ratio — and the sparse and dense engines agree to 1e-9.
#[test]
fn divider_ratio() {
    for seed in 0u64..100 {
        let mut rng = Rng::seed_from_u64(seed);
        let r1 = rng.uniform(10.0, 1e6);
        let r2 = rng.uniform(10.0, 1e6);
        let v = rng.uniform(-10.0, 10.0);
        let mut nl = Netlist::new();
        let top = nl.node("top");
        let mid = nl.node("mid");
        nl.vsource(top, Netlist::GND, v);
        nl.resistor(top, mid, r1);
        nl.resistor(mid, Netlist::GND, r2);
        let sparse = solver(EngineChoice::Sparse).solve(&nl).unwrap();
        let dense = solver(EngineChoice::Dense).solve(&nl).unwrap();
        let expect = v * r2 / (r1 + r2);
        // gmin (1e-12 S) to ground shifts high-impedance nodes by up to
        // |v|·gmin·(r1 ∥ r2); include that in the tolerance.
        let gmin_shift = v.abs() * 1e-12 * (r1 * r2 / (r1 + r2));
        assert!(
            (sparse.voltage(mid) - expect).abs() < 1e-9 + 2.0 * gmin_shift + 1e-9 * expect.abs(),
            "seed {seed}"
        );
        assert!(
            (sparse.voltage(mid) - dense.voltage(mid)).abs() <= 1e-9,
            "seed {seed}: engines disagree"
        );
    }
}

/// Superposition: a linear circuit's response to two sources is the sum
/// of the responses to each source alone.
#[test]
fn superposition() {
    for seed in 0u64..100 {
        let mut rng = Rng::seed_from_u64(seed);
        let v1 = rng.uniform(-5.0, 5.0);
        let v2 = rng.uniform(-5.0, 5.0);
        let build = |va: f64, vb: f64| {
            let mut nl = Netlist::new();
            let a = nl.node("a");
            let b = nl.node("b");
            let m = nl.node("m");
            nl.vsource(a, Netlist::GND, va);
            nl.vsource(b, Netlist::GND, vb);
            nl.resistor(a, m, 1e3);
            nl.resistor(b, m, 2e3);
            nl.resistor(m, Netlist::GND, 3e3);
            (nl, m)
        };
        let solver = DcSolver::new();
        let (nl, m) = build(v1, v2);
        let both = solver.solve(&nl).unwrap().voltage(m);
        let (nl1, m1) = build(v1, 0.0);
        let only1 = solver.solve(&nl1).unwrap().voltage(m1);
        let (nl2, m2) = build(0.0, v2);
        let only2 = solver.solve(&nl2).unwrap().voltage(m2);
        assert!((both - (only1 + only2)).abs() < 1e-9, "seed {seed}");
    }
}

/// Charge conservation in capacitive charge sharing: total charge before
/// equals total charge after, for arbitrary cap sizes and voltages.
#[test]
fn charge_conservation() {
    for seed in 0u64..24 {
        let mut rng = Rng::seed_from_u64(seed);
        let c1 = rng.uniform(0.1, 10.0) * 1e-12;
        let c2 = rng.uniform(0.1, 10.0) * 1e-12;
        let va = rng.uniform(-1.0, 1.0);
        let vb = rng.uniform(-1.0, 1.0);
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.capacitor_with_ic(a, Netlist::GND, c1, va);
        nl.capacitor_with_ic(b, Netlist::GND, c2, vb);
        let sw = nl.switch(a, b, 50.0, 1e15);
        nl.set_switch(sw, true);
        let mut sim = TransientSim::new(
            &nl,
            TransientOptions {
                dt: 2e-12,
                use_ic: true,
                ..Default::default()
            },
        )
        .unwrap();
        while sim.time() < 5e-9 {
            sim.step(&nl).unwrap();
        }
        let v_final = sim.voltage(a);
        assert!((sim.voltage(b) - v_final).abs() < 1e-4, "seed {seed}");
        let expect = (c1 * va + c2 * vb) / (c1 + c2);
        assert!(
            (v_final - expect).abs() < 1e-3,
            "seed {seed}: v_final {v_final} expect {expect}"
        );
    }
}

/// The Monte-Carlo engine never produces an unsolvable divider and the
/// midpoint stays strictly between the rails; dense and sparse engines
/// agree on every sample.
#[test]
fn mc_divider_always_solvable() {
    for seed in 0u64..200 {
        let mut nl = Netlist::new();
        let top = nl.node("top");
        let mid = nl.node("mid");
        nl.vsource(top, Netlist::GND, 1.0);
        let r1 = nl.resistor(top, mid, 1e3);
        let r2 = nl.resistor(mid, Netlist::GND, 1e3);
        let spec = MismatchSpec::new(vec![
            Variation::relative(r1, Param::Resistance, 0.3),
            Variation::relative(r2, Param::Resistance, 0.3),
        ]);
        let mut rng = Rng::seed_from_u64(seed);
        let sample = spec.perturb(&nl, &mut rng);
        let node = sample.find_node("mid").unwrap();
        let v = solver(EngineChoice::Sparse)
            .solve(&sample)
            .unwrap()
            .voltage(node);
        let vd = solver(EngineChoice::Dense)
            .solve(&sample)
            .unwrap()
            .voltage(node);
        assert!(v > 0.0 && v < 1.0, "seed {seed}");
        assert!((v - vd).abs() <= 1e-9, "seed {seed}: engines disagree");
    }
}

/// RC settling: regardless of R, C in a broad range, after 10 time
/// constants the output is within 0.1% of the source.
#[test]
fn rc_settles() {
    for seed in 0u64..24 {
        let mut rng = Rng::seed_from_u64(seed);
        let r = rng.uniform(0.1, 100.0) * 1e3;
        let c = rng.uniform(0.1, 100.0) * 1e-12;
        let tau = r * c;
        let mut nl = Netlist::new();
        let s = nl.node("s");
        let o = nl.node("o");
        nl.vsource(s, Netlist::GND, 1.0);
        nl.resistor(s, o, r);
        nl.capacitor_with_ic(o, Netlist::GND, c, 0.0);
        let mut sim = TransientSim::new(
            &nl,
            TransientOptions {
                dt: tau / 50.0,
                use_ic: true,
                ..Default::default()
            },
        )
        .unwrap();
        while sim.time() < 10.0 * tau {
            sim.step(&nl).unwrap();
        }
        assert!((sim.voltage(o) - 1.0).abs() < 1e-3, "seed {seed}");
    }
}
