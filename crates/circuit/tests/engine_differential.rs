//! Differential tests: the sparse split-assembly engine against the dense
//! partially-pivoted oracle.
//!
//! Every representative topology from the SymBIST reproduction — the
//! reference-ladder DC network, a bandgap-style nonlinear branch, a
//! switched-capacitor sampling step — plus randomly generated netlists must
//! agree between the two engines to ≤ 1e-9 on every unknown.
#![allow(clippy::unwrap_used)] // integration tests assert by panicking

use symbist_circuit::dc::{DcOptions, DcSolver, EngineChoice};
use symbist_circuit::netlist::{MosPolarity, Netlist, NodeId};
use symbist_circuit::rng::Rng;
use symbist_circuit::transient::{TransientOptions, TransientSim};

const TOL: f64 = 1e-9;

fn solver(engine: EngineChoice) -> DcSolver {
    DcSolver::with_options(DcOptions {
        engine,
        ..Default::default()
    })
}

/// Solves with both engines and asserts the full solution vectors agree.
fn assert_dc_agreement(nl: &Netlist, label: &str) {
    let sparse = solver(EngineChoice::Sparse).solve(nl).unwrap();
    let dense = solver(EngineChoice::Dense).solve(nl).unwrap();
    assert_eq!(sparse.raw().len(), dense.raw().len());
    for (i, (s, d)) in sparse.raw().iter().zip(dense.raw().iter()).enumerate() {
        assert!(
            (s - d).abs() <= TOL,
            "{label}: unknown {i} differs: sparse {s} vs dense {d}"
        );
    }
}

/// 32-segment resistor ladder with tap loads — the shape of the SAR ADC's
/// reference network (`refnet`), the hottest DC solve in the codebase.
#[test]
fn resistor_ladder_dc() {
    let mut nl = Netlist::new();
    let top = nl.node("top");
    nl.vsource(top, Netlist::GND, 1.2);
    let mut prev = top;
    let mut taps: Vec<NodeId> = Vec::new();
    for i in 0..32 {
        let n = nl.node(&format!("tap{i}"));
        nl.resistor(prev, n, 250.0);
        taps.push(n);
        prev = n;
    }
    nl.resistor(prev, Netlist::GND, 250.0);
    // Tap loads emulate the mux/buffer input impedance.
    for (i, tap) in taps.iter().enumerate() {
        if i % 4 == 0 {
            nl.resistor(*tap, Netlist::GND, 1e6);
        }
    }
    assert_dc_agreement(&nl, "resistor ladder");
}

/// Bandgap-style branch: diodes ratioed 1:8, resistors, a MOSFET current
/// leg — exercises the nonlinear re-stamp path of the split assembly.
#[test]
fn bandgap_branch_dc() {
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let a = nl.node("a");
    let b = nl.node("b");
    let fb = nl.node("fb");
    nl.vsource(vdd, Netlist::GND, 3.0);
    nl.resistor(vdd, a, 20e3);
    nl.resistor(vdd, b, 20e3);
    nl.diode(a, Netlist::GND, 1e-15, 1.0);
    // The 8x diode: eight times the saturation current.
    nl.resistor(b, fb, 5e3);
    nl.diode(fb, Netlist::GND, 8e-15, 1.0);
    // A MOSFET leg loading the midpoint.
    nl.mosfet(a, b, Netlist::GND, MosPolarity::Nmos, 0.5, 1e-4, 0.02);
    assert_dc_agreement(&nl, "bandgap branch");
}

/// Controlled sources (the comparator/buffer models): VCVS + VCCS mixed
/// with the resistive network — covers the structurally unsymmetric stamps.
#[test]
fn controlled_sources_dc() {
    let mut nl = Netlist::new();
    let inp = nl.node("inp");
    let mid = nl.node("mid");
    let out = nl.node("out");
    nl.vsource(inp, Netlist::GND, 0.35);
    nl.resistor(inp, mid, 10e3);
    nl.vcvs(out, Netlist::GND, mid, Netlist::GND, 20.0);
    nl.resistor(out, mid, 100e3); // feedback
    nl.vccs(mid, Netlist::GND, out, Netlist::GND, 1e-5);
    nl.resistor(out, Netlist::GND, 5e3);
    assert_dc_agreement(&nl, "controlled sources");
}

/// A switched-capacitor sampling step: caps with initial conditions, series
/// switches toggled mid-run. Both engines must track the whole trajectory,
/// including the switch-state change that invalidates the cached base.
#[test]
fn sc_array_step_transient() {
    let build = || {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let tops: Vec<NodeId> = (0..4).map(|i| nl.node(&format!("top{i}"))).collect();
        nl.vsource(vin, Netlist::GND, 0.8);
        let mut switches = Vec::new();
        for (i, top) in tops.iter().enumerate() {
            // Binary-weighted caps, as in the SAR DAC array.
            let c = 1e-12 * f64::from(1 << i);
            nl.capacitor_with_ic(*top, Netlist::GND, c, 0.0);
            switches.push(nl.switch(vin, *top, 100.0, 1e12));
        }
        (nl, switches, tops)
    };

    let run = |engine: EngineChoice| {
        let (mut nl, switches, tops) = build();
        for sw in &switches {
            nl.set_switch(*sw, true);
        }
        let mut sim = TransientSim::new(
            &nl,
            TransientOptions {
                dt: 1e-10,
                use_ic: true,
                dc: DcOptions {
                    engine,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        // Track phase: all switches closed.
        while sim.time() < 5e-9 {
            sim.step(&nl).unwrap();
        }
        // Hold phase: open every other switch mid-run.
        for sw in switches.iter().step_by(2) {
            nl.set_switch(*sw, false);
        }
        while sim.time() < 1e-8 {
            sim.step(&nl).unwrap();
        }
        tops.iter().map(|t| sim.voltage(*t)).collect::<Vec<f64>>()
    };

    let sparse = run(EngineChoice::Sparse);
    let dense = run(EngineChoice::Dense);
    for (i, (s, d)) in sparse.iter().zip(&dense).enumerate() {
        assert!(
            (s - d).abs() <= TOL,
            "sc step: cap {i} differs: sparse {s} vs dense {d}"
        );
        // Tracked caps should have charged towards the input.
        assert!(*s > 0.7, "cap {i} did not track: {s}");
    }
}

/// Randomly generated ladder/mesh netlists with sources, diodes, and
/// MOSFETs sprinkled in: the generator-driven analogue of the fixed cases.
#[test]
fn random_netlists_dc() {
    for seed in 0u64..40 {
        let mut rng = Rng::seed_from_u64(seed);
        let n_nodes = 4 + rng.below(20) as usize;
        let mut nl = Netlist::new();
        let nodes: Vec<NodeId> = (0..n_nodes).map(|i| nl.node(&format!("n{i}"))).collect();
        nl.vsource(nodes[0], Netlist::GND, rng.uniform(0.5, 3.0));
        // Spanning chain keeps every node connected.
        for w in nodes.windows(2) {
            nl.resistor(w[0], w[1], rng.uniform(100.0, 10e3));
        }
        nl.resistor(nodes[n_nodes - 1], Netlist::GND, rng.uniform(100.0, 10e3));
        // Random extra edges.
        for _ in 0..n_nodes {
            let a = nodes[rng.below(n_nodes as u64) as usize];
            let b = nodes[rng.below(n_nodes as u64) as usize];
            if a != b {
                nl.resistor(a, b, rng.uniform(100.0, 100e3));
            }
        }
        // A couple of nonlinear elements.
        let d = nodes[rng.below(n_nodes as u64) as usize];
        nl.diode(d, Netlist::GND, 1e-14, 1.0);
        let m_d = nodes[rng.below(n_nodes as u64) as usize];
        let m_g = nodes[rng.below(n_nodes as u64) as usize];
        nl.mosfet(m_d, m_g, Netlist::GND, MosPolarity::Nmos, 0.4, 1e-4, 0.01);
        assert_dc_agreement(&nl, &format!("random netlist seed {seed}"));
    }
}

/// The `Auto` default must route through the sparse path and still match
/// the dense oracle on a mixed netlist.
#[test]
fn auto_engine_matches_dense() {
    let mut nl = Netlist::new();
    let a = nl.node("a");
    let b = nl.node("b");
    nl.vsource(a, Netlist::GND, 2.0);
    nl.resistor(a, b, 1e3);
    nl.diode(b, Netlist::GND, 1e-14, 1.0);
    let auto = DcSolver::new().solve(&nl).unwrap();
    let dense = solver(EngineChoice::Dense).solve(&nl).unwrap();
    for (s, d) in auto.raw().iter().zip(dense.raw()) {
        assert!((s - d).abs() <= TOL);
    }
}
