//! Sparse linear algebra for MNA systems with symbolic-factorization reuse.
//!
//! MNA matrices of the circuits in this reproduction (resistor ladders,
//! switched-capacitor arrays, bandgap cores) are >95 % structurally sparse
//! and their sparsity pattern is fixed per topology: it never changes across
//! Newton iterations, transient steps, Monte-Carlo samples, or injected
//! parametric defects. This module exploits that with a KLU-style split:
//!
//! 1. [`Symbolic::analyze`] — run **once per topology**: a fill-reducing
//!    minimum-degree ordering of the symmetrized structure followed by a
//!    symbolic elimination that fixes the fill-in pattern of `L + U`.
//! 2. [`Numeric::refactor`] — run **per solve**: a numeric LU restricted to
//!    the precomputed pattern (no pivot search, no pattern discovery), which
//!    costs `O(flops on the static pattern)` instead of the dense `O(n³)`.
//! 3. [`Numeric::solve`] — forward/back substitution on the sparse factors.
//!
//! The factorization uses static (diagonal) pivoting. MNA diagonals are
//! guaranteed nonzero for node rows by `gmin` and for branch rows by the
//! fill produced when their incident node is eliminated first; should a
//! pivot still collapse numerically, [`Numeric::refactor`] reports it and
//! the caller falls back to the dense partially-pivoted path in
//! [`crate::matrix`].
//!
//! # Examples
//!
//! ```
//! use symbist_circuit::sparse::{Numeric, Symbolic};
//!
//! // Solve the 2x2 system [2 1; 1 3] x = [3; 5] sparsely.
//! let sym = Symbolic::analyze(2, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
//! let mut vals = sym.zero_values();
//! *sym.value_mut(&mut vals, 0, 0) += 2.0;
//! *sym.value_mut(&mut vals, 0, 1) += 1.0;
//! *sym.value_mut(&mut vals, 1, 0) += 1.0;
//! *sym.value_mut(&mut vals, 1, 1) += 3.0;
//! let mut num = Numeric::new(&sym);
//! num.refactor(&sym, &vals).expect("nonsingular");
//! let x = num.solve(&sym, &[3.0, 5.0]);
//! assert!((x[0] - 0.8).abs() < 1e-12);
//! assert!((x[1] - 1.4).abs() < 1e-12);
//! ```

use crate::matrix::SingularMatrixError;
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;

/// FNV-1a-style hasher with a word-at-a-time fast path: the cache keys are
/// long integer vectors and the default SipHash costs more than the lookup
/// saves. Not DoS-resistant — fine for keys derived from our own netlists.
#[derive(Default)]
pub(crate) struct FnvHasher(u64);

impl FnvHasher {
    const SEED: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    #[inline]
    fn mix(&mut self, v: u64) {
        let h = if self.0 == 0 { Self::SEED } else { self.0 };
        self.0 = (h ^ v).wrapping_mul(Self::PRIME);
    }
}

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time: std hashes integer-slice keys as one big byte
        // write, and a per-byte loop over a kilobyte-sized key would cost
        // more than the cached analysis it guards.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(tail) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type SymbolicCache = HashMap<(usize, Vec<(u32, u32)>), Rc<Symbolic>, BuildHasherDefault<FnvHasher>>;

thread_local! {
    static SYMBOLIC_CACHE: RefCell<SymbolicCache> = RefCell::new(HashMap::default());
}

/// Entry cap on the per-thread symbolic cache. Topology count is small in
/// practice (one per netlist structure — defect campaigns are the worst
/// case at a few hundred); on overflow the cache is simply cleared.
const SYMBOLIC_CACHE_CAP: usize = 512;

/// [`Symbolic::analyze`] with a per-thread, per-topology cache.
///
/// The structure key is the raw entry list (order preserved — assembly is
/// deterministic per topology, so identical structures produce identical
/// lists), which makes repeated solves of the same topology — Newton
/// restarts, Monte-Carlo samples, per-tap-code reference-ladder solves,
/// defect-campaign reruns — skip the ordering/fill analysis entirely.
pub fn analyze_cached(n: usize, entries: &[(usize, usize)]) -> Rc<Symbolic> {
    let key: Vec<(u32, u32)> = entries.iter().map(|&(r, c)| (r as u32, c as u32)).collect();
    SYMBOLIC_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if cache.len() >= SYMBOLIC_CACHE_CAP {
            cache.clear();
        }
        cache
            .entry((n, key))
            .or_insert_with(|| Rc::new(Symbolic::analyze(n, entries)))
            .clone()
    })
}

/// One-time symbolic analysis of a sparse square matrix: fill-reducing
/// ordering plus the static fill-in pattern of `L + U`.
///
/// The analysis is computed per *structure*; any matrix with the same
/// nonzero positions (every Newton iterate, every transient step, every
/// Monte-Carlo sample of one topology) reuses it unchanged.
#[derive(Debug, Clone)]
pub struct Symbolic {
    n: usize,
    /// `order[k]` = original index eliminated at step `k`.
    order: Vec<usize>,
    /// `inv_order[orig]` = elimination position of original index `orig`.
    inv_order: Vec<usize>,
    /// CSR row pointers over the permuted `L + U` pattern.
    row_ptr: Vec<usize>,
    /// CSR column indices (permuted space), ascending within each row.
    col_idx: Vec<usize>,
    /// Slot of the diagonal entry within each row.
    diag_slot: Vec<usize>,
}

impl Symbolic {
    /// Analyzes the structure given by `entries` (original `(row, col)`
    /// positions, duplicates allowed) of an `n × n` matrix.
    ///
    /// All diagonal positions are implicitly part of the structure: static
    /// pivoting needs a diagonal slot in every row.
    ///
    /// # Panics
    ///
    /// Panics if any entry is out of bounds.
    pub fn analyze(n: usize, entries: &[(usize, usize)]) -> Self {
        // Symmetrized adjacency (undirected graph, no self loops). The LU
        // fill of an unsymmetric matrix under a symmetric permutation is a
        // subset of the symbolic-Cholesky fill of `A + Aᵀ`, so analysing
        // the symmetrized structure gives a safe (slightly padded) pattern.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(r, c) in entries {
            assert!(r < n && c < n, "entry ({r},{c}) out of bounds for n={n}");
            if r != c {
                adj[r].push(c);
                adj[c].push(r);
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }

        // Minimum-degree ordering with explicit elimination-graph updates.
        // At each step the uneliminated neighbor set of the pivot is turned
        // into a clique; those neighbor sets are exactly the per-step fill
        // pattern, so ordering and symbolic factorization come out of the
        // same loop. Ties break on the smallest index for determinism.
        let mut eliminated = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut step_neighbors: Vec<Vec<usize>> = Vec::with_capacity(n);
        for _ in 0..n {
            let v = (0..n)
                .filter(|&i| !eliminated[i])
                .min_by_key(|&i| (adj[i].iter().filter(|&&j| !eliminated[j]).count(), i))
                .expect("uneliminated vertex exists");
            eliminated[v] = true;
            let nbrs: Vec<usize> = adj[v].iter().copied().filter(|&j| !eliminated[j]).collect();
            // Clique the neighbors (this is the fill).
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[i + 1..] {
                    // The adjacency is kept symmetric, so b ∉ adj[a]
                    // implies a ∉ adj[b].
                    if let Err(pos) = adj[a].binary_search(&b) {
                        adj[a].insert(pos, b);
                        if let Err(pos) = adj[b].binary_search(&a) {
                            adj[b].insert(pos, a);
                        }
                    }
                }
            }
            order.push(v);
            step_neighbors.push(nbrs);
        }
        let mut inv_order = vec![0usize; n];
        for (k, &v) in order.iter().enumerate() {
            inv_order[v] = k;
        }

        // Assemble the permuted CSR pattern of `L + U`. Row `i` holds:
        // the L part `{k < i : i ∈ nbrs(step k)}`, the diagonal, and the
        // U part `nbrs(step i)` (all positions > i once permuted).
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (k, nbrs) in step_neighbors.iter().enumerate() {
            rows[k].push(k);
            for &orig in nbrs {
                let i = inv_order[orig];
                debug_assert!(i > k);
                rows[k].push(i); // U entry (k, i)
                rows[i].push(k); // L entry (i, k)
            }
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut diag_slot = Vec::with_capacity(n);
        row_ptr.push(0);
        for (i, row) in rows.iter_mut().enumerate() {
            row.sort_unstable();
            diag_slot.push(col_idx.len() + row.binary_search(&i).expect("diagonal present"));
            col_idx.extend_from_slice(row);
            row_ptr.push(col_idx.len());
        }

        Self {
            n,
            order,
            inv_order,
            row_ptr,
            col_idx,
            diag_slot,
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored entries in the `L + U` pattern (structural nonzeros
    /// plus fill-in).
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// A zeroed value vector matching the pattern; stamp through
    /// [`Symbolic::slot`] / [`Symbolic::value_mut`] and hand it to
    /// [`Numeric::refactor`].
    pub fn zero_values(&self) -> Vec<f64> {
        vec![0.0; self.nnz()]
    }

    /// Value-vector slot of original position `(r, c)`, or `None` if the
    /// position is outside the analyzed pattern.
    pub fn slot(&self, r: usize, c: usize) -> Option<usize> {
        if r >= self.n || c >= self.n {
            return None;
        }
        let pi = self.inv_order[r];
        let pj = self.inv_order[c];
        let row = &self.col_idx[self.row_ptr[pi]..self.row_ptr[pi + 1]];
        row.binary_search(&pj).ok().map(|k| self.row_ptr[pi] + k)
    }

    /// Mutable reference to the value at original position `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is outside the pattern or `values` has the
    /// wrong length.
    pub fn value_mut<'a>(&self, values: &'a mut [f64], r: usize, c: usize) -> &'a mut f64 {
        assert_eq!(values.len(), self.nnz(), "value vector length mismatch");
        let slot = self
            .slot(r, c)
            .unwrap_or_else(|| panic!("position ({r},{c}) not in sparse pattern"));
        &mut values[slot]
    }
}

/// Reusable numeric LU factorization over a [`Symbolic`] pattern.
///
/// Construction allocates the factor and scratch buffers once;
/// [`Numeric::refactor`] then refreshes the factor in place for each new
/// set of values without touching the pattern.
#[derive(Debug, Clone)]
pub struct Numeric {
    /// Combined `L` (strict lower, unit diagonal implicit) and `U` values
    /// in the pattern's CSR slots.
    lu: Vec<f64>,
    /// Reciprocal diagonal of `U` (cached for the row-elimination inner
    /// loop and the back substitution).
    inv_diag: Vec<f64>,
    /// Dense scatter workspace, kept zeroed between refactorizations.
    scratch: Vec<f64>,
    /// Substitution workspace for [`Numeric::solve_into`]; the forward pass
    /// writes `y` here and the backward pass overwrites it in place.
    sol: Vec<f64>,
}

impl Numeric {
    /// Allocates workspace for the given pattern.
    pub fn new(symbolic: &Symbolic) -> Self {
        Self {
            lu: vec![0.0; symbolic.nnz()],
            inv_diag: vec![0.0; symbolic.dim()],
            scratch: vec![0.0; symbolic.dim()],
            sol: vec![0.0; symbolic.dim()],
        }
    }

    /// Refactors the matrix whose pattern-aligned values are `values`.
    ///
    /// Row-wise (up-looking Doolittle) elimination restricted to the static
    /// pattern: each row is scattered into a dense workspace, updated by the
    /// already-factored rows its L part touches, and gathered back.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when a diagonal pivot is smaller than
    /// `1e-13` times the largest absolute input value — the caller should
    /// fall back to the dense partially-pivoted factorization.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the pattern size.
    pub fn refactor(&mut self, sym: &Symbolic, values: &[f64]) -> Result<(), SingularMatrixError> {
        assert_eq!(values.len(), sym.nnz(), "value vector length mismatch");
        let n = sym.dim();
        let scale = values
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(f64::MIN_POSITIVE);
        let tol = 1e-13 * scale;

        for i in 0..n {
            let (lo, hi) = (sym.row_ptr[i], sym.row_ptr[i + 1]);
            // Scatter row i.
            for (v, &c) in values[lo..hi].iter().zip(&sym.col_idx[lo..hi]) {
                self.scratch[c] = *v;
            }
            // Eliminate with each factored row k < i in this row's pattern.
            for s in lo..sym.diag_slot[i] {
                let k = sym.col_idx[s];
                let f = self.scratch[k] * self.inv_diag[k];
                self.scratch[k] = f;
                if f != 0.0 {
                    for us in (sym.diag_slot[k] + 1)..sym.row_ptr[k + 1] {
                        self.scratch[sym.col_idx[us]] -= f * self.lu[us];
                    }
                }
            }
            let pivot = self.scratch[i];
            if pivot.abs() <= tol {
                // Re-zero the workspace before bailing so a later refactor
                // starts clean.
                for s in lo..hi {
                    self.scratch[sym.col_idx[s]] = 0.0;
                }
                return Err(SingularMatrixError {
                    column: sym.order[i],
                });
            }
            self.inv_diag[i] = 1.0 / pivot;
            // Gather row i and re-zero the workspace.
            for s in lo..hi {
                let c = sym.col_idx[s];
                self.lu[s] = self.scratch[c];
                self.scratch[c] = 0.0;
            }
        }
        Ok(())
    }

    /// Solves `A x = b` with the current factorization.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factored dimension.
    pub fn solve(&mut self, sym: &Symbolic, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; sym.dim()];
        self.solve_into(sym, b, &mut x);
        x
    }

    /// Solves `A x = b` into `x` without allocating — the hot path for
    /// repeated transient/Newton solves on a fixed factorization.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `x.len()` does not match the factored
    /// dimension.
    pub fn solve_into(&mut self, sym: &Symbolic, b: &[f64], x: &mut [f64]) {
        let n = sym.dim();
        assert_eq!(b.len(), n, "rhs dimension mismatch");
        assert_eq!(x.len(), n, "solution dimension mismatch");
        // Forward substitution on L (unit diagonal) with the permutation
        // applied: we solve (P A Pᵀ)(P x) = P b.
        let y = &mut self.sol;
        for i in 0..n {
            let mut sum = b[sym.order[i]];
            for s in sym.row_ptr[i]..sym.diag_slot[i] {
                sum -= self.lu[s] * y[sym.col_idx[s]];
            }
            y[i] = sum;
        }
        // Back substitution on U, overwriting `y` in place: entry `i` only
        // reads entries above it, which are already back-substituted.
        for i in (0..n).rev() {
            let mut sum = y[i];
            for s in (sym.diag_slot[i] + 1)..sym.row_ptr[i + 1] {
                sum -= self.lu[s] * y[sym.col_idx[s]];
            }
            y[i] = sum * self.inv_diag[i];
        }
        // Un-permute.
        for i in 0..n {
            x[sym.order[i]] = y[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::rng::Rng;

    /// Builds a random sparse diagonally-dominant matrix, returns it both
    /// dense and as (symbolic, values).
    fn random_sparse(
        n: usize,
        extra_per_row: usize,
        rng: &mut Rng,
    ) -> (Matrix, Symbolic, Vec<f64>) {
        let mut entries: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        for r in 0..n {
            for _ in 0..extra_per_row {
                let c = rng.below(n as u64) as usize;
                entries.push((r, c));
                entries.push((c, r)); // keep it structurally symmetric-ish
            }
        }
        let sym = Symbolic::analyze(n, &entries);
        let mut vals = sym.zero_values();
        let mut dense = Matrix::zeros(n, n);
        for &(r, c) in &entries {
            let v = if r == c { 0.0 } else { rng.uniform(-1.0, 1.0) };
            *sym.value_mut(&mut vals, r, c) += v;
            dense.add(r, c, v);
        }
        for i in 0..n {
            let d = n as f64 + 1.0;
            *sym.value_mut(&mut vals, i, i) += d;
            dense.add(i, i, d);
        }
        (dense, sym, vals)
    }

    #[test]
    fn matches_dense_on_random_matrices() {
        let mut rng = Rng::seed_from_u64(42);
        for n in [1usize, 2, 5, 13, 40, 90] {
            let (dense, sym, vals) = random_sparse(n, 3, &mut rng);
            let b: Vec<f64> = (0..n).map(|_| rng.uniform(-2.0, 2.0)).collect();
            let mut num = Numeric::new(&sym);
            num.refactor(&sym, &vals).unwrap();
            let xs = num.solve(&sym, &b);
            let xd = dense.solve(&b).unwrap();
            for (a, b) in xs.iter().zip(&xd) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn refactor_reuses_pattern() {
        let mut rng = Rng::seed_from_u64(7);
        let (_, sym, mut vals) = random_sparse(25, 2, &mut rng);
        let mut num = Numeric::new(&sym);
        let b: Vec<f64> = (0..25).map(|_| rng.uniform(-1.0, 1.0)).collect();
        // Same pattern, several value sets: refactor must track each.
        for round in 0..5 {
            for v in vals.iter_mut() {
                if *v != 0.0 {
                    *v *= 1.0 + 0.01 * round as f64;
                }
            }
            num.refactor(&sym, &vals).unwrap();
            let x = num.solve(&sym, &b);
            // Verify A x = b directly.
            let mut dense = Matrix::zeros(25, 25);
            for r in 0..25 {
                for c in 0..25 {
                    if let Some(s) = sym.slot(r, c) {
                        dense.add(r, c, vals[s]);
                    }
                }
            }
            let ax = dense.mul_vec(&x);
            for (got, want) in ax.iter().zip(&b) {
                assert!((got - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn singular_reported() {
        let sym = Symbolic::analyze(2, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
        let mut vals = sym.zero_values();
        *sym.value_mut(&mut vals, 0, 0) += 1.0;
        *sym.value_mut(&mut vals, 0, 1) += 2.0;
        *sym.value_mut(&mut vals, 1, 0) += 2.0;
        *sym.value_mut(&mut vals, 1, 1) += 4.0;
        let mut num = Numeric::new(&sym);
        assert!(num.refactor(&sym, &vals).is_err());
        // The workspace must be clean afterwards: a good matrix factors.
        *sym.value_mut(&mut vals, 1, 1) += 1.0;
        assert!(num.refactor(&sym, &vals).is_ok());
    }

    #[test]
    fn zero_diagonal_pivot_filled_by_elimination() {
        // MNA-style: branch row with structurally zero diagonal, filled in
        // when the incident node is eliminated first. [g 1; 1 0].
        let sym = Symbolic::analyze(2, &[(0, 0), (0, 1), (1, 0)]);
        let mut vals = sym.zero_values();
        *sym.value_mut(&mut vals, 0, 0) += 1e-3;
        *sym.value_mut(&mut vals, 0, 1) += 1.0;
        *sym.value_mut(&mut vals, 1, 0) += 1.0;
        let mut num = Numeric::new(&sym);
        num.refactor(&sym, &vals).unwrap();
        // A x = [0, 2]: row1 says x0 = 2; row0: 1e-3·2 + x1 = 0.
        let x = num.solve(&sym, &[0.0, 2.0]);
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] + 2e-3).abs() < 1e-12);
    }

    #[test]
    fn slot_outside_pattern_is_none() {
        let sym = Symbolic::analyze(3, &[(0, 0), (1, 1), (2, 2)]);
        assert!(sym.slot(0, 0).is_some());
        assert!(sym.slot(0, 2).is_none());
        assert!(sym.slot(5, 0).is_none());
    }

    #[test]
    fn analyze_cached_returns_shared_analysis() {
        let entries = [(0usize, 0usize), (0, 1), (1, 0), (1, 1)];
        let a = analyze_cached(2, &entries);
        let b = analyze_cached(2, &entries);
        assert!(Rc::ptr_eq(&a, &b), "same structure must hit the cache");
        // A different structure gets its own analysis.
        let c = analyze_cached(2, &[(0, 0), (1, 1)]);
        assert!(!Rc::ptr_eq(&a, &c));
        assert_eq!(a.nnz(), 4);
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn fill_reducing_ordering_beats_natural_on_arrow() {
        // Arrow matrix: dense first row/col. Natural order fills the whole
        // matrix; eliminating the hub last keeps the factor linear-sized.
        let n = 30;
        let mut entries: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        for i in 1..n {
            entries.push((0, i));
            entries.push((i, 0));
        }
        let sym = Symbolic::analyze(n, &entries);
        // Perfect elimination keeps nnz at the structural 3n−2; allow a
        // little slack but reject anything near the dense n² fill.
        assert!(
            sym.nnz() <= 3 * n,
            "min-degree should avoid arrow fill: nnz={}",
            sym.nnz()
        );
    }
}
