//! Monte-Carlo process-variation engine.
//!
//! SymBIST sets its window-comparator thresholds to `δ = k·σ`, where `σ` is
//! the standard deviation of each invariant signal over process variation
//! (paper §II). This module perturbs netlist parameters according to a
//! mismatch specification and hands back perturbed copies, one per MC
//! sample, using the deterministic [`Rng`].
//!
//! # Examples
//!
//! ```
//! use symbist_circuit::netlist::Netlist;
//! use symbist_circuit::mc::{MismatchSpec, Param, Variation};
//! use symbist_circuit::rng::Rng;
//!
//! let mut nl = Netlist::new();
//! let a = nl.node("a");
//! let r = nl.resistor(a, Netlist::GND, 1000.0);
//! let spec = MismatchSpec::new(vec![Variation::relative(r, Param::Resistance, 0.01)]);
//! let mut rng = Rng::seed_from_u64(1);
//! let sample = spec.perturb(&nl, &mut rng);
//! // The perturbed resistance is near, but not exactly, 1 kΩ.
//! if let symbist_circuit::netlist::Device::Resistor { ohms, .. } = sample.device(r) {
//!     assert!((ohms - 1000.0).abs() < 100.0);
//! }
//! ```

use crate::netlist::{Device, DeviceId, Netlist, SourceWave};
use crate::rng::Rng;

/// Which parameter of a device a variation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Param {
    /// Resistor value.
    Resistance,
    /// Capacitor value.
    Capacitance,
    /// MOSFET threshold voltage.
    Vth,
    /// MOSFET transconductance factor.
    Kp,
    /// Diode saturation current.
    ISat,
    /// VCVS gain.
    Gain,
    /// VCCS transconductance.
    Gm,
    /// DC value of a V or I source (models reference/offset variation).
    SourceValue,
}

/// A single mismatch contributor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Variation {
    /// Target device.
    pub device: DeviceId,
    /// Target parameter.
    pub param: Param,
    /// Standard deviation: relative (fraction of nominal) or absolute
    /// (parameter units) depending on `relative`.
    pub sigma: f64,
    /// Interpretation of `sigma`.
    pub relative: bool,
}

impl Variation {
    /// Relative variation: parameter scaled by `1 + N(0, sigma)`.
    pub fn relative(device: DeviceId, param: Param, sigma: f64) -> Self {
        Self {
            device,
            param,
            sigma,
            relative: true,
        }
    }

    /// Absolute variation: parameter shifted by `N(0, sigma)`.
    pub fn absolute(device: DeviceId, param: Param, sigma: f64) -> Self {
        Self {
            device,
            param,
            sigma,
            relative: false,
        }
    }
}

/// A set of mismatch contributors applied together per MC sample.
#[derive(Debug, Clone, Default)]
pub struct MismatchSpec {
    variations: Vec<Variation>,
}

impl MismatchSpec {
    /// Creates a spec from explicit variations.
    pub fn new(variations: Vec<Variation>) -> Self {
        Self { variations }
    }

    /// An empty spec (perturb returns exact copies).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Adds a variation.
    pub fn push(&mut self, v: Variation) {
        self.variations.push(v);
    }

    /// Adds a relative variation on every resistor in the netlist.
    pub fn vary_all_resistors(&mut self, netlist: &Netlist, sigma: f64) {
        for (id, dev) in netlist.iter() {
            if matches!(dev, Device::Resistor { .. }) {
                self.push(Variation::relative(id, Param::Resistance, sigma));
            }
        }
    }

    /// Adds a relative variation on every capacitor in the netlist.
    pub fn vary_all_capacitors(&mut self, netlist: &Netlist, sigma: f64) {
        for (id, dev) in netlist.iter() {
            if matches!(dev, Device::Capacitor { .. }) {
                self.push(Variation::relative(id, Param::Capacitance, sigma));
            }
        }
    }

    /// Adds an absolute Vth variation on every MOSFET in the netlist.
    pub fn vary_all_vth(&mut self, netlist: &Netlist, sigma_volts: f64) {
        for (id, dev) in netlist.iter() {
            if matches!(dev, Device::Mosfet { .. }) {
                self.push(Variation::absolute(id, Param::Vth, sigma_volts));
            }
        }
    }

    /// Number of contributors.
    pub fn len(&self) -> usize {
        self.variations.len()
    }

    /// Returns `true` if the spec has no contributors.
    pub fn is_empty(&self) -> bool {
        self.variations.is_empty()
    }

    /// Produces one perturbed copy of the netlist.
    ///
    /// Parameters with positivity constraints (R, C, Isat, kp) are clamped
    /// to 1 % of nominal so that a wild sample cannot produce an invalid
    /// device.
    ///
    /// # Panics
    ///
    /// Panics if a variation targets a device/parameter combination that
    /// does not exist (e.g. `Vth` on a resistor) — that is a programming
    /// error in the spec, not a data condition.
    pub fn perturb(&self, netlist: &Netlist, rng: &mut Rng) -> Netlist {
        let mut out = netlist.clone();
        for v in &self.variations {
            let noise = rng.normal(0.0, v.sigma);
            let apply = |nominal: f64| -> f64 {
                if v.relative {
                    nominal * (1.0 + noise)
                } else {
                    nominal + noise
                }
            };
            let dev = out.device_mut(v.device);
            match (v.param, dev) {
                (Param::Resistance, Device::Resistor { ohms, .. }) => {
                    *ohms = apply(*ohms).max(0.01 * *ohms);
                }
                (Param::Capacitance, Device::Capacitor { farads, .. }) => {
                    *farads = apply(*farads).max(0.01 * *farads);
                }
                (Param::Vth, Device::Mosfet { vth, .. }) => {
                    *vth = apply(*vth).max(0.01 * *vth);
                }
                (Param::Kp, Device::Mosfet { kp, .. }) => {
                    *kp = apply(*kp).max(0.01 * *kp);
                }
                (Param::ISat, Device::Diode { i_sat, .. }) => {
                    *i_sat = apply(*i_sat).max(0.01 * *i_sat);
                }
                (Param::Gain, Device::Vcvs { gain, .. }) => {
                    *gain = apply(*gain);
                }
                (Param::Gm, Device::Vccs { gm, .. }) => {
                    *gm = apply(*gm);
                }
                (Param::SourceValue, Device::VSource { wave, .. })
                | (Param::SourceValue, Device::ISource { wave, .. }) => {
                    if let SourceWave::Dc(val) = wave {
                        *val = apply(*val);
                    }
                }
                (param, dev) => {
                    panic!("variation {param:?} does not apply to device {dev:?}")
                }
            }
        }
        out
    }

    /// Runs `samples` perturbed evaluations, collecting `f`'s output.
    ///
    /// The closure receives the sample index and the perturbed netlist.
    pub fn run<T>(
        &self,
        netlist: &Netlist,
        samples: usize,
        rng: &mut Rng,
        mut f: impl FnMut(usize, &Netlist) -> T,
    ) -> Vec<T> {
        (0..samples)
            .map(|i| {
                let sample = self.perturb(netlist, rng);
                f(i, &sample)
            })
            .collect()
    }

    /// Parallel variant of [`MismatchSpec::run`] with per-sample RNG
    /// streams.
    ///
    /// Each sample draws its randomness from an independent stream forked
    /// from `rng` in sample order, so the result is **bit-identical for any
    /// `threads` value** (including 1) — thread scheduling cannot reorder
    /// the random draws. Note the stream discipline differs from
    /// [`MismatchSpec::run`], which threads one stream through all samples;
    /// the two entry points therefore produce different (but individually
    /// reproducible) sample sets for the same seed.
    pub fn run_parallel<T: Send>(
        &self,
        netlist: &Netlist,
        samples: usize,
        rng: &mut Rng,
        threads: usize,
        f: impl Fn(usize, &Netlist) -> T + Sync,
    ) -> Vec<T> {
        run_parallel_seeded(samples, rng, threads, |i, sample_rng| {
            let sample = self.perturb(netlist, sample_rng);
            f(i, &sample)
        })
    }
}

/// Runs `samples` independent seeded evaluations across `threads` workers,
/// returning results in sample order.
///
/// Sample `i` receives its own RNG, forked from `rng` deterministically and
/// in order **before** any worker starts, so the output is bit-identical for
/// every thread count. This is the primitive behind parallel Monte-Carlo
/// calibration; anything of the shape "N independent seeded trials" can use
/// it directly.
///
/// `threads` is clamped to `[1, samples]`.
pub fn run_parallel_seeded<T: Send>(
    samples: usize,
    rng: &mut Rng,
    threads: usize,
    f: impl Fn(usize, &mut Rng) -> T + Sync,
) -> Vec<T> {
    let mut sample_rngs: Vec<Rng> = (0..samples).map(|i| rng.fork(i as u64)).collect();
    if samples == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, samples);
    if threads == 1 {
        return sample_rngs
            .iter_mut()
            .enumerate()
            .map(|(i, r)| f(i, r))
            .collect();
    }
    let chunk = samples.div_ceil(threads);
    let mut out: Vec<Option<T>> = (0..samples).map(|_| None).collect();
    std::thread::scope(|scope| {
        let f = &f;
        for (ci, (out_chunk, rng_chunk)) in out
            .chunks_mut(chunk)
            .zip(sample_rngs.chunks_mut(chunk))
            .enumerate()
        {
            scope.spawn(move || {
                for (j, (slot, sample_rng)) in
                    out_chunk.iter_mut().zip(rng_chunk.iter_mut()).enumerate()
                {
                    *slot = Some(f(ci * chunk + j, sample_rng));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("every sample slot is filled by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::DcSolver;

    fn divider() -> (Netlist, DeviceId, DeviceId) {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let m = nl.node("m");
        nl.vsource(a, Netlist::GND, 1.0);
        let r1 = nl.resistor(a, m, 1000.0);
        let r2 = nl.resistor(m, Netlist::GND, 1000.0);
        (nl, r1, r2)
    }

    #[test]
    fn empty_spec_is_identity() {
        let (nl, _, _) = divider();
        let mut rng = Rng::seed_from_u64(1);
        let copy = MismatchSpec::empty().perturb(&nl, &mut rng);
        assert_eq!(copy.device_count(), nl.device_count());
        for (id, dev) in nl.iter() {
            assert_eq!(copy.device(id), dev);
        }
    }

    #[test]
    fn divider_midpoint_statistics() {
        // 1% mismatch on both resistors: midpoint σ ≈ 0.5·√2·1% /2 = 0.35%.
        let (nl, r1, r2) = divider();
        let mut spec = MismatchSpec::empty();
        spec.push(Variation::relative(r1, Param::Resistance, 0.01));
        spec.push(Variation::relative(r2, Param::Resistance, 0.01));
        let mut rng = Rng::seed_from_u64(2);
        let mid = nl.find_node("m").unwrap();
        let solver = DcSolver::new();
        let vals = spec.run(&nl, 2000, &mut rng, |_, sample| {
            solver.solve(sample).unwrap().voltage(mid)
        });
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let sd =
            (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (vals.len() - 1) as f64).sqrt();
        assert!((mean - 0.5).abs() < 1e-3, "mean {mean}");
        // Analytic: dV/V = (dR2 − dR1)/2 per unit ⇒ σ = 0.5·0.01/√2·√2 ≈ 0.0035.
        assert!((sd - 0.00354).abs() < 5e-4, "sd {sd}");
    }

    #[test]
    fn clamping_prevents_nonpositive_values() {
        let (nl, r1, _) = divider();
        // Absurd 200% sigma: samples would go negative without clamping.
        let spec = MismatchSpec::new(vec![Variation::relative(r1, Param::Resistance, 2.0)]);
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..200 {
            let sample = spec.perturb(&nl, &mut rng);
            if let Device::Resistor { ohms, .. } = sample.device(r1) {
                assert!(*ohms > 0.0);
            }
        }
    }

    #[test]
    fn bulk_helpers_cover_all_devices() {
        let (nl, _, _) = divider();
        let mut spec = MismatchSpec::empty();
        spec.vary_all_resistors(&nl, 0.01);
        assert_eq!(spec.len(), 2);
    }

    #[test]
    fn absolute_variation_shifts() {
        let mut nl = Netlist::new();
        let d = nl.node("d");
        let g = nl.node("g");
        let m = nl.mosfet(
            d,
            g,
            Netlist::GND,
            crate::netlist::MosPolarity::Nmos,
            0.5,
            1e-4,
            0.0,
        );
        let spec = MismatchSpec::new(vec![Variation::absolute(m, Param::Vth, 0.02)]);
        let mut rng = Rng::seed_from_u64(4);
        let vals: Vec<f64> = (0..500)
            .map(|_| {
                let s = spec.perturb(&nl, &mut rng);
                match s.device(m) {
                    Device::Mosfet { vth, .. } => *vth,
                    _ => unreachable!(),
                }
            })
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.5).abs() < 0.005);
        assert!(vals.iter().any(|v| *v > 0.52));
        assert!(vals.iter().any(|v| *v < 0.48));
    }

    #[test]
    #[should_panic]
    fn wrong_param_panics() {
        let (nl, r1, _) = divider();
        let spec = MismatchSpec::new(vec![Variation::absolute(r1, Param::Vth, 0.01)]);
        let mut rng = Rng::seed_from_u64(5);
        spec.perturb(&nl, &mut rng);
    }

    #[test]
    fn parallel_bit_identical_across_thread_counts() {
        let (nl, r1, r2) = divider();
        let mut spec = MismatchSpec::empty();
        spec.push(Variation::relative(r1, Param::Resistance, 0.01));
        spec.push(Variation::relative(r2, Param::Resistance, 0.01));
        let mid = nl.find_node("m").unwrap();
        let solver = DcSolver::new();
        let eval = |_: usize, sample: &Netlist| solver.solve(sample).unwrap().voltage(mid);
        let runs: Vec<Vec<f64>> = [1usize, 2, 3, 8, 64]
            .iter()
            .map(|&threads| {
                let mut rng = Rng::seed_from_u64(77);
                spec.run_parallel(&nl, 50, &mut rng, threads, eval)
            })
            .collect();
        for other in &runs[1..] {
            assert_eq!(&runs[0], other, "thread count changed the results");
        }
    }

    #[test]
    fn run_parallel_seeded_matches_sequential() {
        // threads = 1 is the sequential reference; higher counts must agree
        // bit-for-bit because the per-sample streams are forked in order.
        let results: Vec<Vec<f64>> = [1usize, 7]
            .iter()
            .map(|&threads| {
                let mut rng = Rng::seed_from_u64(123);
                super::run_parallel_seeded(40, &mut rng, threads, |i, r| r.normal(i as f64, 1.0))
            })
            .collect();
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn run_parallel_seeded_empty_and_oversubscribed() {
        let mut rng = Rng::seed_from_u64(9);
        let none: Vec<f64> = super::run_parallel_seeded(0, &mut rng, 8, |_, r| r.next_f64());
        assert!(none.is_empty());
        // More threads than samples must clamp, not panic.
        let few: Vec<f64> = super::run_parallel_seeded(3, &mut rng, 64, |_, r| r.next_f64());
        assert_eq!(few.len(), 3);
    }
}
