//! Small-signal AC analysis.
//!
//! Linearizes the circuit around its DC operating point (diodes and
//! MOSFETs become their small-signal conductances/transconductances,
//! capacitors become `jωC` admittances) and solves the complex MNA system
//! at each requested frequency with a single designated source excited at
//! 1 V (all other independent sources zeroed).
//!
//! In the reproduction this powers the AC-BIST extension experiment:
//! decoupling-capacitor opens are invisible to every DC invariance but
//! leave an unmistakable signature in the ripple transfer function.
//!
//! # Examples
//!
//! ```
//! use symbist_circuit::ac::AcSolver;
//! use symbist_circuit::netlist::Netlist;
//!
//! // RC low-pass: pole at 1/(2πRC) ≈ 159 kHz.
//! let mut nl = Netlist::new();
//! let src = nl.node("in");
//! let out = nl.node("out");
//! let vs = nl.vsource(src, Netlist::GND, 0.0);
//! nl.resistor(src, out, 1e3);
//! nl.capacitor(out, Netlist::GND, 1e-9);
//! let sweep = AcSolver::new().solve(&nl, vs, &[159.15e3])?;
//! let gain_db = sweep.magnitude_db(0, out);
//! assert!((gain_db + 3.01).abs() < 0.1, "-3 dB at the pole, got {gain_db}");
//! # Ok::<(), symbist_circuit::error::CircuitError>(())
//! ```

use std::f64::consts::PI;

use crate::dc::DcSolver;
use crate::error::CircuitError;
use crate::mna::{diode_eval, nmos_eval, MnaLayout, Thermal};
use crate::netlist::{Device, DeviceId, MosPolarity, Netlist, NodeId};

/// A complex number (kept local: the circuit crate has no deps).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cplx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cplx {
    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    fn add(self, o: Self) -> Self {
        Self::new(self.re + o.re, self.im + o.im)
    }

    fn sub(self, o: Self) -> Self {
        Self::new(self.re - o.re, self.im - o.im)
    }

    fn mul(self, o: Self) -> Self {
        Self::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    fn div(self, o: Self) -> Self {
        let d = o.re * o.re + o.im * o.im;
        Self::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

/// Dense complex matrix with LU solve (magnitude partial pivoting).
struct CMatrix {
    n: usize,
    data: Vec<Cplx>,
}

impl CMatrix {
    fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![Cplx::default(); n * n],
        }
    }

    #[inline]
    fn add(&mut self, r: usize, c: usize, v: Cplx) {
        let cell = &mut self.data[r * self.n + c];
        *cell = cell.add(v);
    }

    /// In-place LU solve; consumes the matrix.
    fn solve(mut self, mut b: Vec<Cplx>) -> Result<Vec<Cplx>, CircuitError> {
        let n = self.n;
        let scale = self
            .data
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(f64::MIN_POSITIVE);
        let tol = 1e-13 * scale;
        for k in 0..n {
            // Pivot by magnitude.
            let mut pr = k;
            let mut pv = self.data[k * n + k].abs();
            for r in (k + 1)..n {
                let v = self.data[r * n + k].abs();
                if v > pv {
                    pv = v;
                    pr = r;
                }
            }
            if pv <= tol {
                return Err(CircuitError::Singular { column: k });
            }
            if pr != k {
                for c in 0..n {
                    self.data.swap(k * n + c, pr * n + c);
                }
                b.swap(k, pr);
            }
            let pivot = self.data[k * n + k];
            for r in (k + 1)..n {
                let factor = self.data[r * n + k].div(pivot);
                if factor.abs() == 0.0 {
                    continue;
                }
                for c in (k + 1)..n {
                    let sub = factor.mul(self.data[k * n + c]);
                    let cell = &mut self.data[r * n + c];
                    *cell = cell.sub(sub);
                }
                b[r] = b[r].sub(factor.mul(b[k]));
            }
        }
        // Back substitution.
        let mut x = vec![Cplx::default(); n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for (j, xj) in x.iter().enumerate().take(n).skip(i + 1) {
                sum = sum.sub(self.data[i * n + j].mul(*xj));
            }
            x[i] = sum.div(self.data[i * n + i]);
        }
        Ok(x)
    }
}

/// Result of an AC sweep: complex node voltages per frequency point.
#[derive(Debug, Clone)]
pub struct AcSweep {
    freqs: Vec<f64>,
    /// `solutions[f][unknown]` — node voltages then branch currents.
    solutions: Vec<Vec<Cplx>>,
    node_count: usize,
}

impl AcSweep {
    /// The swept frequencies.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Complex voltage of `node` at frequency point `idx`.
    ///
    /// # Panics
    ///
    /// Panics if the point or node is out of range.
    pub fn voltage(&self, idx: usize, node: NodeId) -> Cplx {
        if node.is_ground() {
            return Cplx::default();
        }
        assert!(node.index() < self.node_count, "node out of range");
        self.solutions[idx][node.index() - 1]
    }

    /// Magnitude in dB (20·log10) of a node at a frequency point.
    pub fn magnitude_db(&self, idx: usize, node: NodeId) -> f64 {
        20.0 * self.voltage(idx, node).abs().max(1e-300).log10()
    }

    /// Phase in degrees of a node at a frequency point.
    pub fn phase_deg(&self, idx: usize, node: NodeId) -> f64 {
        self.voltage(idx, node).arg() * 180.0 / PI
    }
}

/// Small-signal AC solver.
#[derive(Debug, Clone, Default)]
pub struct AcSolver {
    dc: DcSolver,
}

impl AcSolver {
    /// Creates a solver with default DC options for the operating point.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sweeps the circuit at the given frequencies with `source` excited
    /// at 1 V AC.
    ///
    /// # Errors
    ///
    /// Returns an error if the DC operating point fails or the linearized
    /// system is singular.
    ///
    /// # Panics
    ///
    /// Panics if `source` is not a voltage source, or a frequency is not
    /// positive and finite.
    pub fn solve(
        &self,
        netlist: &Netlist,
        source: DeviceId,
        freqs: &[f64],
    ) -> Result<AcSweep, CircuitError> {
        assert!(
            matches!(netlist.device(source), Device::VSource { .. }),
            "AC excitation must be a voltage source"
        );
        assert!(
            freqs.iter().all(|f| f.is_finite() && *f > 0.0),
            "frequencies must be positive"
        );
        let op = self.dc.solve(netlist)?;
        let layout = MnaLayout::new(netlist);
        let dim = layout.dim;
        let v = |n: NodeId| op.voltage(n);

        let mut solutions = Vec::with_capacity(freqs.len());
        for &f in freqs {
            let omega = 2.0 * PI * f;
            let mut m = CMatrix::zeros(dim);
            let mut rhs = vec![Cplx::default(); dim];
            // gmin regularization, as in DC.
            for i in 0..(layout.node_count - 1) {
                m.add(i, i, Cplx::new(self.dc.options().gmin, 0.0));
            }

            let stamp_g = |m: &mut CMatrix, a: NodeId, b: NodeId, g: Cplx| {
                let ia = layout.node_index(a);
                let ib = layout.node_index(b);
                if let Some(i) = ia {
                    m.add(i, i, g);
                }
                if let Some(j) = ib {
                    m.add(j, j, g);
                }
                if let (Some(i), Some(j)) = (ia, ib) {
                    m.add(i, j, Cplx::new(-g.re, -g.im));
                    m.add(j, i, Cplx::new(-g.re, -g.im));
                }
            };
            let stamp_gm =
                |m: &mut CMatrix, p: NodeId, n: NodeId, cp: NodeId, cn: NodeId, gm: f64| {
                    for (out, sign_o) in [(p, 1.0), (n, -1.0)] {
                        let Some(r) = layout.node_index(out) else {
                            continue;
                        };
                        for (ctrl, sign_c) in [(cp, 1.0), (cn, -1.0)] {
                            if let Some(c) = layout.node_index(ctrl) {
                                m.add(r, c, Cplx::new(gm * sign_o * sign_c, 0.0));
                            }
                        }
                    }
                };

            for (id, dev) in netlist.iter() {
                match dev {
                    Device::Resistor { a, b, ohms } => {
                        stamp_g(&mut m, *a, *b, Cplx::new(1.0 / ohms, 0.0));
                    }
                    Device::Switch {
                        a,
                        b,
                        closed,
                        r_on,
                        r_off,
                    } => {
                        let r = if *closed { *r_on } else { *r_off };
                        stamp_g(&mut m, *a, *b, Cplx::new(1.0 / r, 0.0));
                    }
                    Device::Capacitor { a, b, farads, .. } => {
                        stamp_g(&mut m, *a, *b, Cplx::new(0.0, omega * farads));
                    }
                    Device::VSource { p, n, .. } => {
                        let br = layout.branch_index(id);
                        if let Some(ip) = layout.node_index(*p) {
                            m.add(ip, br, Cplx::new(1.0, 0.0));
                            m.add(br, ip, Cplx::new(1.0, 0.0));
                        }
                        if let Some(in_) = layout.node_index(*n) {
                            m.add(in_, br, Cplx::new(-1.0, 0.0));
                            m.add(br, in_, Cplx::new(-1.0, 0.0));
                        }
                        rhs[br] = if id == source {
                            Cplx::new(1.0, 0.0)
                        } else {
                            Cplx::default()
                        };
                    }
                    Device::ISource { .. } => {
                        // Independent current sources are zeroed in AC.
                    }
                    Device::Vcvs { p, n, cp, cn, gain } => {
                        let br = layout.branch_index(id);
                        if let Some(ip) = layout.node_index(*p) {
                            m.add(ip, br, Cplx::new(1.0, 0.0));
                            m.add(br, ip, Cplx::new(1.0, 0.0));
                        }
                        if let Some(in_) = layout.node_index(*n) {
                            m.add(in_, br, Cplx::new(-1.0, 0.0));
                            m.add(br, in_, Cplx::new(-1.0, 0.0));
                        }
                        if let Some(icp) = layout.node_index(*cp) {
                            m.add(br, icp, Cplx::new(-gain, 0.0));
                        }
                        if let Some(icn) = layout.node_index(*cn) {
                            m.add(br, icn, Cplx::new(*gain, 0.0));
                        }
                    }
                    Device::Vccs { p, n, cp, cn, gm } => {
                        stamp_gm(&mut m, *p, *n, *cp, *cn, *gm);
                    }
                    Device::Diode {
                        anode,
                        cathode,
                        i_sat,
                        ideality,
                    } => {
                        let thermal = Thermal::new(self.dc.options().temperature_c + 273.15);
                        let vd = v(*anode) - v(*cathode);
                        let (_, g) =
                            diode_eval(vd, thermal.diode_is(*i_sat), ideality * thermal.vt());
                        stamp_g(&mut m, *anode, *cathode, Cplx::new(g, 0.0));
                    }
                    Device::Mosfet {
                        d,
                        g,
                        s,
                        polarity,
                        vth,
                        kp,
                        lambda,
                    } => {
                        // Same normalization as the DC stamp (see mna.rs):
                        // the small-signal gm/gds stamps are sign-invariant.
                        let sign = match polarity {
                            MosPolarity::Nmos => 1.0,
                            MosPolarity::Pmos => -1.0,
                        };
                        let (nvd, nvg, nvs) = (sign * v(*d), sign * v(*g), sign * v(*s));
                        let (hd, hs, nhd, nhs) = if nvd < nvs {
                            (*s, *d, nvs, nvd)
                        } else {
                            (*d, *s, nvd, nvs)
                        };
                        let (_, gm, gds) = nmos_eval(nvg - nhs, nhd - nhs, *vth, *kp, *lambda);
                        stamp_g(&mut m, hd, hs, Cplx::new(gds, 0.0));
                        stamp_gm(&mut m, hd, hs, *g, hs, gm);
                    }
                }
            }
            solutions.push(m.solve(rhs)?);
        }
        Ok(AcSweep {
            freqs: freqs.to_vec(),
            solutions,
            node_count: layout.node_count,
        })
    }
}

/// Builds a logarithmically spaced frequency grid.
///
/// # Panics
///
/// Panics if bounds are not positive or `points < 2`.
pub fn log_space(f_start: f64, f_stop: f64, points: usize) -> Vec<f64> {
    assert!(
        f_start > 0.0 && f_stop > f_start,
        "invalid frequency bounds"
    );
    assert!(points >= 2, "need at least 2 points");
    let l0 = f_start.log10();
    let l1 = f_stop.log10();
    (0..points)
        .map(|i| 10f64.powf(l0 + (l1 - l0) * i as f64 / (points - 1) as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc_lowpass() -> (Netlist, DeviceId, NodeId) {
        let mut nl = Netlist::new();
        let s = nl.node("in");
        let o = nl.node("out");
        let vs = nl.vsource(s, Netlist::GND, 0.0);
        nl.resistor(s, o, 1e3);
        nl.capacitor(o, Netlist::GND, 1e-9);
        (nl, vs, o)
    }

    #[test]
    fn rc_pole_minus_3db_and_phase() {
        let (nl, vs, out) = rc_lowpass();
        let fp = 1.0 / (2.0 * PI * 1e3 * 1e-9);
        let sweep = AcSolver::new()
            .solve(&nl, vs, &[fp / 100.0, fp, fp * 100.0])
            .unwrap();
        // Far below the pole: 0 dB, ~0°.
        assert!(sweep.magnitude_db(0, out).abs() < 0.01);
        assert!(sweep.phase_deg(0, out).abs() < 1.0);
        // At the pole: −3.01 dB, −45°.
        assert!((sweep.magnitude_db(1, out) + 3.0103).abs() < 0.01);
        assert!((sweep.phase_deg(1, out) + 45.0).abs() < 0.5);
        // Two decades above: −40 dB, approaching −90°.
        assert!((sweep.magnitude_db(2, out) + 40.0).abs() < 0.1);
        assert!((sweep.phase_deg(2, out) + 90.0).abs() < 2.0);
    }

    #[test]
    fn highpass_blocks_low_frequencies() {
        let mut nl = Netlist::new();
        let s = nl.node("in");
        let o = nl.node("out");
        let vs = nl.vsource(s, Netlist::GND, 0.0);
        nl.capacitor(s, o, 1e-9);
        nl.resistor(o, Netlist::GND, 1e3);
        let fp = 1.0 / (2.0 * PI * 1e3 * 1e-9);
        let sweep = AcSolver::new()
            .solve(&nl, vs, &[fp / 100.0, fp * 100.0])
            .unwrap();
        assert!(sweep.magnitude_db(0, o) < -35.0);
        assert!(sweep.magnitude_db(1, o).abs() < 0.1);
    }

    #[test]
    fn resistive_divider_is_flat() {
        let mut nl = Netlist::new();
        let s = nl.node("in");
        let o = nl.node("out");
        let vs = nl.vsource(s, Netlist::GND, 0.0);
        nl.resistor(s, o, 2e3);
        nl.resistor(o, Netlist::GND, 1e3);
        let sweep = AcSolver::new()
            .solve(&nl, vs, &log_space(1.0, 1e9, 7))
            .unwrap();
        for i in 0..7 {
            assert!((sweep.magnitude_db(i, o) + 9.542).abs() < 0.01, "point {i}");
        }
    }

    #[test]
    fn common_source_gain_is_minus_gm_rl() {
        // NMOS in saturation: small-signal gain −gm·RL at low frequency.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let g = nl.node("g");
        let d = nl.node("d");
        nl.vsource(vdd, Netlist::GND, 3.0);
        let vin = nl.vsource(g, Netlist::GND, 1.0);
        nl.resistor(vdd, d, 10e3);
        nl.mosfet(d, g, Netlist::GND, MosPolarity::Nmos, 0.5, 2e-4, 0.0);
        let sweep = AcSolver::new().solve(&nl, vin, &[1e3]).unwrap();
        // gm = kp·vov = 2e-4·0.5 = 1e-4 S → gain = −1.0 (0 dB, 180°).
        let gain = sweep.voltage(0, d);
        assert!((gain.abs() - 1.0).abs() < 0.01, "|gain| {}", gain.abs());
        assert!((sweep.phase_deg(0, d).abs() - 180.0).abs() < 1.0);
    }

    #[test]
    fn second_source_is_zeroed() {
        // Two sources; only the excited one drives the AC solution.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let o = nl.node("o");
        let v1 = nl.vsource(a, Netlist::GND, 1.0);
        nl.vsource(b, Netlist::GND, 2.0);
        nl.resistor(a, o, 1e3);
        nl.resistor(b, o, 1e3);
        let sweep = AcSolver::new().solve(&nl, v1, &[1e3]).unwrap();
        // v(o) = 0.5·v(a): the other source is an AC ground.
        assert!((sweep.voltage(0, o).abs() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn log_space_endpoints() {
        let f = log_space(10.0, 1e6, 6);
        assert_eq!(f.len(), 6);
        assert!((f[0] - 10.0).abs() < 1e-9);
        assert!((f[5] - 1e6).abs() < 1e-3);
        assert!(f.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    #[should_panic]
    fn non_source_excitation_panics() {
        let (nl, _, _) = rc_lowpass();
        // Device 1 is the resistor.
        AcSolver::new()
            .solve(&nl, crate::netlist::DeviceId(1), &[1e3])
            .unwrap();
    }
}
