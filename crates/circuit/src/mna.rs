//! Modified Nodal Analysis assembly.
//!
//! This module turns a [`Netlist`] plus an evaluation context (time, source
//! scale, Newton guess, capacitor companion models) into the linear system
//! `A x = b`, where `x` stacks non-ground node voltages followed by branch
//! currents of voltage-defined elements.
//!
//! The assembly is re-run at every Newton iteration / time step; the layout
//! (index assignment) is computed once per topology.

use crate::matrix::Matrix;
use crate::netlist::{Device, DeviceId, MosPolarity, Netlist, NodeId};

/// Thermal voltage at room temperature, kT/q at 300 K.
pub const VT_THERMAL: f64 = 0.025852;
/// Reference temperature for device parameters (kelvin).
pub const T_NOMINAL_K: f64 = 300.0;
/// Boltzmann constant over electron charge, V/K — defined as
/// `VT_THERMAL / T_NOMINAL_K` so the nominal-temperature path is
/// bit-identical to the temperature-unaware model.
pub const K_OVER_Q: f64 = VT_THERMAL / T_NOMINAL_K;
/// Silicon bandgap energy in eV (for diode Is(T) scaling).
pub const SILICON_EG: f64 = 1.12;

/// Temperature-dependent device parameters.
///
/// * Diode: `Vt = kT/q`; `Is(T) = Is·(T/T0)³·exp(Eg/k·(1/T0 − 1/T))` — the
///   classic scaling that makes VBE complementary-to-absolute-temperature.
/// * MOSFET: `Vth(T) = Vth − 2 mV/K·(T − T0)`, `kp(T) = kp·(T0/T)^1.5`
///   (mobility degradation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Thermal {
    pub temp_k: f64,
}

impl Thermal {
    pub(crate) fn new(temp_k: f64) -> Self {
        debug_assert!(temp_k > 0.0);
        Self { temp_k }
    }

    pub(crate) fn vt(&self) -> f64 {
        K_OVER_Q * self.temp_k
    }

    pub(crate) fn diode_is(&self, i_sat_nominal: f64) -> f64 {
        let t = self.temp_k;
        let ratio = t / T_NOMINAL_K;
        i_sat_nominal
            * ratio.powi(3)
            * (SILICON_EG / K_OVER_Q * (1.0 / T_NOMINAL_K - 1.0 / t)).exp()
    }

    pub(crate) fn mos_vth(&self, vth_nominal: f64) -> f64 {
        (vth_nominal - 0.002 * (self.temp_k - T_NOMINAL_K)).max(0.01)
    }

    pub(crate) fn mos_kp(&self, kp_nominal: f64) -> f64 {
        kp_nominal * (T_NOMINAL_K / self.temp_k).powf(1.5)
    }
}

/// Maximum diode exponent before linear extrapolation, to keep the Jacobian
/// finite (`exp(40) ≈ 2.4e17`).
const DIODE_EXP_MAX: f64 = 40.0;

/// Index layout of the MNA unknown vector.
#[derive(Debug, Clone)]
pub(crate) struct MnaLayout {
    /// Number of circuit nodes including ground.
    pub node_count: usize,
    /// Branch index (offset after node voltages) per voltage-defined device,
    /// indexed by device id; `usize::MAX` when the device has no branch.
    pub branch_of: Vec<usize>,
    /// Total unknowns.
    pub dim: usize,
}

impl MnaLayout {
    pub(crate) fn new(netlist: &Netlist) -> Self {
        let node_count = netlist.node_count();
        let mut branch_of = vec![usize::MAX; netlist.device_count()];
        let mut next = node_count - 1;
        for (id, dev) in netlist.iter() {
            if dev.has_branch() {
                branch_of[id.index()] = next;
                next += 1;
            }
        }
        Self {
            node_count,
            branch_of,
            dim: next,
        }
    }

    /// Index of a node voltage in the unknown vector, `None` for ground.
    #[inline]
    pub(crate) fn node_index(&self, n: NodeId) -> Option<usize> {
        if n.is_ground() {
            None
        } else {
            Some(n.index() - 1)
        }
    }

    /// Branch-current index of a voltage-defined device.
    ///
    /// # Panics
    ///
    /// Panics if the device has no branch current.
    pub(crate) fn branch_index(&self, id: DeviceId) -> usize {
        let b = self.branch_of[id.index()];
        assert!(b != usize::MAX, "device {id:?} has no branch current");
        b
    }
}

/// Companion-model state for one capacitor during transient analysis.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CapCompanion {
    /// Equivalent conductance (C/h for BE, 2C/h for trapezoidal).
    pub g: f64,
    /// Equivalent current source injected a → b.
    pub ieq: f64,
}

/// Evaluation context for one assembly pass.
#[derive(Debug)]
pub(crate) struct AssemblyCtx<'a> {
    /// Simulation time for waveform evaluation.
    pub time: f64,
    /// Scale factor on all independent sources (source stepping).
    pub source_scale: f64,
    /// Conductance added from every non-ground node to ground.
    pub gmin: f64,
    /// Current Newton guess (node voltages + branch currents).
    pub guess: &'a [f64],
    /// Per-device capacitor companion (indexed by device id); empty in DC
    /// analysis, in which case capacitors stamp only `gmin`-scale leakage.
    pub cap_companion: &'a [Option<CapCompanion>],
    /// Simulation temperature.
    pub thermal: Thermal,
}

/// Reusable assembly buffers.
#[derive(Debug)]
pub(crate) struct Assembler {
    pub layout: MnaLayout,
    pub matrix: Matrix,
    pub rhs: Vec<f64>,
}

impl Assembler {
    pub(crate) fn new(netlist: &Netlist) -> Self {
        let layout = MnaLayout::new(netlist);
        let dim = layout.dim;
        Self {
            layout,
            matrix: Matrix::zeros(dim, dim),
            rhs: vec![0.0; dim],
        }
    }

    #[inline]
    fn v(&self, ctx: &AssemblyCtx<'_>, n: NodeId) -> f64 {
        match self.layout.node_index(n) {
            None => 0.0,
            Some(i) => ctx.guess[i],
        }
    }

    /// Stamps a conductance `g` between nodes `a` and `b`.
    #[inline]
    fn stamp_conductance(&mut self, a: NodeId, b: NodeId, g: f64) {
        let ia = self.layout.node_index(a);
        let ib = self.layout.node_index(b);
        if let Some(i) = ia {
            self.matrix.add(i, i, g);
        }
        if let Some(j) = ib {
            self.matrix.add(j, j, g);
        }
        if let (Some(i), Some(j)) = (ia, ib) {
            self.matrix.add(i, j, -g);
            self.matrix.add(j, i, -g);
        }
    }

    /// Stamps a current `i` flowing from node `p` through the element to
    /// node `n` (KCL: `i` leaves `p`, enters `n`).
    #[inline]
    fn stamp_current(&mut self, p: NodeId, n: NodeId, i: f64) {
        if let Some(ip) = self.layout.node_index(p) {
            self.rhs[ip] -= i;
        }
        if let Some(in_) = self.layout.node_index(n) {
            self.rhs[in_] += i;
        }
    }

    /// Stamps a transconductance: current `gm * (v(cp) − v(cn))` from `p`
    /// through the element to `n`.
    #[inline]
    fn stamp_vccs(&mut self, p: NodeId, n: NodeId, cp: NodeId, cn: NodeId, gm: f64) {
        let ip = self.layout.node_index(p);
        let in_ = self.layout.node_index(n);
        let icp = self.layout.node_index(cp);
        let icn = self.layout.node_index(cn);
        if let (Some(r), Some(c)) = (ip, icp) {
            self.matrix.add(r, c, gm);
        }
        if let (Some(r), Some(c)) = (ip, icn) {
            self.matrix.add(r, c, -gm);
        }
        if let (Some(r), Some(c)) = (in_, icp) {
            self.matrix.add(r, c, -gm);
        }
        if let (Some(r), Some(c)) = (in_, icn) {
            self.matrix.add(r, c, gm);
        }
    }

    /// Assembles the full MNA system for the given context.
    pub(crate) fn assemble(&mut self, netlist: &Netlist, ctx: &AssemblyCtx<'_>) {
        self.matrix.clear();
        self.rhs.fill(0.0);

        // gmin from every non-ground node to ground keeps otherwise floating
        // nodes (e.g. capacitor-only nodes in DC) solvable.
        if ctx.gmin > 0.0 {
            for i in 0..(self.layout.node_count - 1) {
                self.matrix.add(i, i, ctx.gmin);
            }
        }

        for (id, dev) in netlist.iter() {
            match dev {
                Device::Resistor { a, b, ohms } => {
                    self.stamp_conductance(*a, *b, 1.0 / ohms);
                }
                Device::Switch {
                    a,
                    b,
                    closed,
                    r_on,
                    r_off,
                } => {
                    let r = if *closed { *r_on } else { *r_off };
                    self.stamp_conductance(*a, *b, 1.0 / r);
                }
                Device::Capacitor { a, b, .. } => {
                    if let Some(Some(comp)) = ctx.cap_companion.get(id.index()) {
                        self.stamp_conductance(*a, *b, comp.g);
                        // ieq is injected from b to a (i.e. it *feeds* node a)
                        // so that i_cap = g·v − ieq.
                        self.stamp_current(*a, *b, -comp.ieq);
                    }
                    // DC: capacitor is an open circuit (gmin covers floating
                    // nodes).
                }
                Device::VSource { p, n, wave } => {
                    let br = self.layout.branch_index(id);
                    let val = wave.at(ctx.time) * ctx.source_scale;
                    if let Some(ip) = self.layout.node_index(*p) {
                        self.matrix.add(ip, br, 1.0);
                        self.matrix.add(br, ip, 1.0);
                    }
                    if let Some(in_) = self.layout.node_index(*n) {
                        self.matrix.add(in_, br, -1.0);
                        self.matrix.add(br, in_, -1.0);
                    }
                    self.rhs[br] += val;
                }
                Device::ISource { p, n, wave } => {
                    let val = wave.at(ctx.time) * ctx.source_scale;
                    self.stamp_current(*p, *n, val);
                }
                Device::Vcvs { p, n, cp, cn, gain } => {
                    let br = self.layout.branch_index(id);
                    if let Some(ip) = self.layout.node_index(*p) {
                        self.matrix.add(ip, br, 1.0);
                        self.matrix.add(br, ip, 1.0);
                    }
                    if let Some(in_) = self.layout.node_index(*n) {
                        self.matrix.add(in_, br, -1.0);
                        self.matrix.add(br, in_, -1.0);
                    }
                    if let Some(icp) = self.layout.node_index(*cp) {
                        self.matrix.add(br, icp, -gain);
                    }
                    if let Some(icn) = self.layout.node_index(*cn) {
                        self.matrix.add(br, icn, *gain);
                    }
                }
                Device::Vccs { p, n, cp, cn, gm } => {
                    self.stamp_vccs(*p, *n, *cp, *cn, *gm);
                }
                Device::Diode {
                    anode,
                    cathode,
                    i_sat,
                    ideality,
                } => {
                    let vd = self.v(ctx, *anode) - self.v(ctx, *cathode);
                    let nvt = ideality * ctx.thermal.vt();
                    let is_eff = ctx.thermal.diode_is(*i_sat);
                    let (i, g) = diode_eval(vd, is_eff, nvt);
                    let ieq = i - g * vd;
                    self.stamp_conductance(*anode, *cathode, g);
                    self.stamp_current(*anode, *cathode, ieq);
                }
                Device::Mosfet {
                    d,
                    g,
                    s,
                    polarity,
                    vth,
                    kp,
                    lambda,
                } => {
                    let vth_t = ctx.thermal.mos_vth(*vth);
                    let kp_t = ctx.thermal.mos_kp(*kp);
                    self.stamp_mosfet(ctx, *d, *g, *s, *polarity, vth_t, kp_t, *lambda);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn stamp_mosfet(
        &mut self,
        ctx: &AssemblyCtx<'_>,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        polarity: MosPolarity,
        vth: f64,
        kp: f64,
        lambda: f64,
    ) {
        let vd = self.v(ctx, d);
        let vg = self.v(ctx, g);
        let vs = self.v(ctx, s);

        // Normalize to NMOS-like voltages. For PMOS we flip every sign so
        // that the same square-law expressions apply, then flip the
        // resulting current direction back.
        let sign = match polarity {
            MosPolarity::Nmos => 1.0,
            MosPolarity::Pmos => -1.0,
        };
        let (nvd, nvg, nvs) = (sign * vd, sign * vg, sign * vs);

        // The MOS is symmetric: if the normalized drain is below the
        // normalized source, exchange roles.
        let swapped = nvd < nvs;
        let (hd, hs, nhd, nhs) = if swapped {
            (s, d, nvs, nvd)
        } else {
            (d, s, nvd, nvs)
        };

        let vgs = nvg - nhs;
        let vds = nhd - nhs;
        let (ids, gm, gds) = nmos_eval(vgs, vds, vth, kp, lambda);

        // Companion: i(vgs, vds) ≈ ids + gm·Δvgs + gds·Δvds.
        // Current flows hd → hs in normalized space; `sign` maps it back.
        // In original node space for PMOS, a positive normalized ids means
        // current from hs to hd (i.e. source to drain), which the sign flip
        // on the stamp handles because conductances are sign-invariant and
        // the equivalent current flips direction.
        // Real current hd → hs expands to
        //   gm·(v(g) − v(hs)) + gds·(v(hd) − v(hs)) + sign·ieq
        // because for PMOS both the control voltage and the output current
        // flip sign (the two flips cancel in the gm/gds terms).
        let ieq = ids - gm * vgs - gds * vds;
        let _ = swapped;
        self.stamp_conductance(hd, hs, gds);
        self.stamp_vccs(hd, hs, g, hs, gm);
        self.stamp_current(hd, hs, sign * ieq);
    }
}

/// Shockley diode with exponent limiting: returns `(i, di/dv)`.
pub(crate) fn diode_eval(vd: f64, i_sat: f64, nvt: f64) -> (f64, f64) {
    let x = vd / nvt;
    if x > DIODE_EXP_MAX {
        // Linear extrapolation beyond the exponent cap.
        let e = DIODE_EXP_MAX.exp();
        let i_cap = i_sat * (e - 1.0);
        let g_cap = i_sat * e / nvt;
        (i_cap + g_cap * (vd - DIODE_EXP_MAX * nvt), g_cap)
    } else if x < -DIODE_EXP_MAX {
        // Deep reverse: saturation current with a tiny conductance to keep
        // the Jacobian nonsingular.
        (-i_sat, i_sat / nvt * (-DIODE_EXP_MAX).exp() + 1e-15)
    } else {
        let e = x.exp();
        (i_sat * (e - 1.0), i_sat * e / nvt)
    }
}

/// Level-1 NMOS square law: returns `(ids, gm, gds)` for `vds >= 0`.
pub(crate) fn nmos_eval(vgs: f64, vds: f64, vth: f64, kp: f64, lambda: f64) -> (f64, f64, f64) {
    debug_assert!(vds >= 0.0);
    let vov = vgs - vth;
    if vov <= 0.0 {
        // Cutoff: zero current; tiny gds keeps the node from floating.
        return (0.0, 0.0, 1e-12);
    }
    if vds < vov {
        // Triode.
        let ids = kp * (vov * vds - 0.5 * vds * vds);
        let gm = kp * vds;
        let gds = kp * (vov - vds) + 1e-12;
        (ids, gm, gds)
    } else {
        // Saturation with channel-length modulation.
        let ids0 = 0.5 * kp * vov * vov;
        let ids = ids0 * (1.0 + lambda * vds);
        let gm = kp * vov * (1.0 + lambda * vds);
        let gds = ids0 * lambda + 1e-12;
        (ids, gm, gds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn assemble_linear(netlist: &Netlist) -> (Matrix, Vec<f64>) {
        let mut asm = Assembler::new(netlist);
        let guess = vec![0.0; asm.layout.dim];
        let caps = vec![None; netlist.device_count()];
        let ctx = AssemblyCtx {
            time: 0.0,
            source_scale: 1.0,
            gmin: 0.0,
            guess: &guess,
            cap_companion: &caps,
            thermal: Thermal::new(T_NOMINAL_K),
        };
        asm.assemble(netlist, &ctx);
        (asm.matrix.clone(), asm.rhs.clone())
    }

    #[test]
    fn resistor_divider_system() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource(a, Netlist::GND, 2.0);
        nl.resistor(a, b, 1000.0);
        nl.resistor(b, Netlist::GND, 1000.0);
        let (m, rhs) = assemble_linear(&nl);
        // Unknowns: v(a), v(b), i(V1). Solve and check.
        let x = m.solve(&rhs).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        // Branch current = 2V across 2k = 1 mA flowing out of the source's
        // positive terminal into the divider, i.e. i(V) = −1 mA by MNA
        // convention (current p→n through the source).
        assert!((x[2] + 1e-3).abs() < 1e-9, "i = {}", x[2]);
    }

    #[test]
    fn isource_direction() {
        // 1 A source from gnd (p) to node (n) feeds the node; with a 1 Ω
        // resistor to ground the node must sit at +1 V.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.isource(Netlist::GND, a, 1.0);
        nl.resistor(a, Netlist::GND, 1.0);
        let (m, rhs) = assemble_linear(&nl);
        let x = m.solve(&rhs).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vccs_stamp() {
        // VCCS gm=2 S controlled by a 1 V source, output through 1 Ω.
        let mut nl = Netlist::new();
        let c = nl.node("c");
        let o = nl.node("o");
        nl.vsource(c, Netlist::GND, 1.0);
        // Current 2·v(c) flows o → gnd through the source ⇒ pulls o down.
        nl.vccs(o, Netlist::GND, c, Netlist::GND, 2.0);
        nl.resistor(o, Netlist::GND, 1.0);
        let (m, rhs) = assemble_linear(&nl);
        let x = m.solve(&rhs).unwrap();
        // KCL at o: v(o)/1 + 2·1 = 0 ⇒ v(o) = −2.
        assert!((x[1] + 2.0).abs() < 1e-12, "v(o) = {}", x[1]);
    }

    #[test]
    fn vcvs_gain() {
        let mut nl = Netlist::new();
        let c = nl.node("c");
        let o = nl.node("o");
        nl.vsource(c, Netlist::GND, 0.25);
        nl.vcvs(o, Netlist::GND, c, Netlist::GND, 8.0);
        nl.resistor(o, Netlist::GND, 50.0);
        let (m, rhs) = assemble_linear(&nl);
        let x = m.solve(&rhs).unwrap();
        assert!((x[1] - 2.0).abs() < 1e-12, "v(o) = {}", x[1]);
    }

    #[test]
    fn diode_eval_monotone() {
        let mut prev = f64::NEG_INFINITY;
        for mv in -100..=120 {
            let v = mv as f64 * 0.01;
            let (i, g) = diode_eval(v, 1e-14, VT_THERMAL);
            // Non-decreasing everywhere (deep reverse saturates to −Isat at
            // f64 precision), strictly increasing once forward biased.
            if v > 0.0 {
                assert!(i > prev, "forward current must be strictly increasing at v={v}");
            } else {
                assert!(i >= prev, "current must never decrease at v={v}");
            }
            assert!(g > 0.0);
            prev = i;
        }
    }

    #[test]
    fn diode_eval_continuous_at_cap() {
        let nvt = VT_THERMAL;
        let vcap = DIODE_EXP_MAX * nvt;
        let (i_below, _) = diode_eval(vcap - 1e-9, 1e-14, nvt);
        let (i_above, _) = diode_eval(vcap + 1e-9, 1e-14, nvt);
        assert!((i_above - i_below) / i_below < 1e-3);
    }

    #[test]
    fn nmos_regions() {
        // Cutoff.
        let (i, gm, _) = nmos_eval(0.2, 1.0, 0.5, 1e-3, 0.0);
        assert_eq!(i, 0.0);
        assert_eq!(gm, 0.0);
        // Triode: vds < vov.
        let (i, _, gds) = nmos_eval(1.5, 0.2, 0.5, 1e-3, 0.0);
        let expect = 1e-3 * (1.0 * 0.2 - 0.5 * 0.04);
        assert!((i - expect).abs() < 1e-12);
        assert!(gds > 1e-6);
        // Saturation.
        let (i, gm, _) = nmos_eval(1.5, 2.0, 0.5, 1e-3, 0.0);
        assert!((i - 0.5e-3).abs() < 1e-12);
        assert!((gm - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn nmos_continuous_at_pinchoff() {
        let (i_tri, _, _) = nmos_eval(1.0, 0.5 - 1e-9, 0.5, 1e-3, 0.1);
        let (i_sat, _, _) = nmos_eval(1.0, 0.5 + 1e-9, 0.5, 1e-3, 0.1);
        // lambda introduces a small step at pinch-off in the level-1 model
        // (standard behaviour); with lambda·vds = 5% the step is bounded.
        assert!((i_sat - i_tri).abs() / i_tri < 0.06);
    }
}
