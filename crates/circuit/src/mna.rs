//! Modified Nodal Analysis assembly.
//!
//! This module turns a [`Netlist`] plus an evaluation context (time, source
//! scale, Newton guess, capacitor companion models) into the linear system
//! `A x = b`, where `x` stacks non-ground node voltages followed by branch
//! currents of voltage-defined elements.
//!
//! The assembly is re-run at every Newton iteration / time step; the layout
//! (index assignment) is computed once per topology.

use crate::matrix::{Matrix, SingularMatrixError};
use crate::netlist::{Device, DeviceId, MosPolarity, Netlist, NodeId};
use crate::sparse::{analyze_cached, FnvHasher, Numeric, Symbolic};
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::rc::Rc;

/// Thermal voltage at room temperature, kT/q at 300 K.
pub const VT_THERMAL: f64 = 0.025852;
/// Reference temperature for device parameters (kelvin).
pub const T_NOMINAL_K: f64 = 300.0;
/// Boltzmann constant over electron charge, V/K — defined as
/// `VT_THERMAL / T_NOMINAL_K` so the nominal-temperature path is
/// bit-identical to the temperature-unaware model.
pub const K_OVER_Q: f64 = VT_THERMAL / T_NOMINAL_K;
/// Silicon bandgap energy in eV (for diode Is(T) scaling).
pub const SILICON_EG: f64 = 1.12;

/// Temperature-dependent device parameters.
///
/// * Diode: `Vt = kT/q`; `Is(T) = Is·(T/T0)³·exp(Eg/k·(1/T0 − 1/T))` — the
///   classic scaling that makes VBE complementary-to-absolute-temperature.
/// * MOSFET: `Vth(T) = Vth − 2 mV/K·(T − T0)`, `kp(T) = kp·(T0/T)^1.5`
///   (mobility degradation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Thermal {
    pub temp_k: f64,
}

impl Thermal {
    pub(crate) fn new(temp_k: f64) -> Self {
        debug_assert!(temp_k > 0.0);
        Self { temp_k }
    }

    pub(crate) fn vt(&self) -> f64 {
        K_OVER_Q * self.temp_k
    }

    pub(crate) fn diode_is(&self, i_sat_nominal: f64) -> f64 {
        let t = self.temp_k;
        let ratio = t / T_NOMINAL_K;
        i_sat_nominal
            * ratio.powi(3)
            * (SILICON_EG / K_OVER_Q * (1.0 / T_NOMINAL_K - 1.0 / t)).exp()
    }

    pub(crate) fn mos_vth(&self, vth_nominal: f64) -> f64 {
        (vth_nominal - 0.002 * (self.temp_k - T_NOMINAL_K)).max(0.01)
    }

    pub(crate) fn mos_kp(&self, kp_nominal: f64) -> f64 {
        kp_nominal * (T_NOMINAL_K / self.temp_k).powf(1.5)
    }
}

/// Maximum diode exponent before linear extrapolation, to keep the Jacobian
/// finite (`exp(40) ≈ 2.4e17`).
const DIODE_EXP_MAX: f64 = 40.0;

/// Index layout of the MNA unknown vector.
#[derive(Debug, Clone)]
pub(crate) struct MnaLayout {
    /// Number of circuit nodes including ground.
    pub node_count: usize,
    /// Branch index (offset after node voltages) per voltage-defined device,
    /// indexed by device id; `usize::MAX` when the device has no branch.
    pub branch_of: Vec<usize>,
    /// Total unknowns.
    pub dim: usize,
}

impl MnaLayout {
    pub(crate) fn new(netlist: &Netlist) -> Self {
        let node_count = netlist.node_count();
        let mut branch_of = vec![usize::MAX; netlist.device_count()];
        let mut next = node_count - 1;
        for (id, dev) in netlist.iter() {
            if dev.has_branch() {
                branch_of[id.index()] = next;
                next += 1;
            }
        }
        Self {
            node_count,
            branch_of,
            dim: next,
        }
    }

    /// Index of a node voltage in the unknown vector, `None` for ground.
    #[inline]
    pub(crate) fn node_index(&self, n: NodeId) -> Option<usize> {
        if n.is_ground() {
            None
        } else {
            Some(n.index() - 1)
        }
    }

    /// Branch-current index of a voltage-defined device.
    ///
    /// # Panics
    ///
    /// Panics if the device has no branch current.
    pub(crate) fn branch_index(&self, id: DeviceId) -> usize {
        let b = self.branch_of[id.index()];
        assert!(b != usize::MAX, "device {id:?} has no branch current");
        b
    }
}

/// Companion-model state for one capacitor during transient analysis.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CapCompanion {
    /// Equivalent conductance (C/h for BE, 2C/h for trapezoidal).
    pub g: f64,
    /// Equivalent current source injected a → b.
    pub ieq: f64,
}

/// Evaluation context for one assembly pass.
#[derive(Debug)]
pub(crate) struct AssemblyCtx<'a> {
    /// Simulation time for waveform evaluation.
    pub time: f64,
    /// Scale factor on all independent sources (source stepping).
    pub source_scale: f64,
    /// Conductance added from every non-ground node to ground.
    pub gmin: f64,
    /// Current Newton guess (node voltages + branch currents).
    pub guess: &'a [f64],
    /// Per-device capacitor companion (indexed by device id); empty in DC
    /// analysis, in which case capacitors stamp only `gmin`-scale leakage.
    pub cap_companion: &'a [Option<CapCompanion>],
    /// Simulation temperature.
    pub thermal: Thermal,
}

/// Reusable assembly buffers.
#[derive(Debug)]
pub(crate) struct Assembler {
    pub layout: MnaLayout,
    pub matrix: Matrix,
    pub rhs: Vec<f64>,
}

impl Assembler {
    pub(crate) fn new(netlist: &Netlist) -> Self {
        let layout = MnaLayout::new(netlist);
        let dim = layout.dim;
        Self {
            layout,
            matrix: Matrix::zeros(dim, dim),
            rhs: vec![0.0; dim],
        }
    }

    #[inline]
    fn v(&self, ctx: &AssemblyCtx<'_>, n: NodeId) -> f64 {
        match self.layout.node_index(n) {
            None => 0.0,
            Some(i) => ctx.guess[i],
        }
    }

    /// Stamps a conductance `g` between nodes `a` and `b`.
    #[inline]
    fn stamp_conductance(&mut self, a: NodeId, b: NodeId, g: f64) {
        let ia = self.layout.node_index(a);
        let ib = self.layout.node_index(b);
        if let Some(i) = ia {
            self.matrix.add(i, i, g);
        }
        if let Some(j) = ib {
            self.matrix.add(j, j, g);
        }
        if let (Some(i), Some(j)) = (ia, ib) {
            self.matrix.add(i, j, -g);
            self.matrix.add(j, i, -g);
        }
    }

    /// Stamps a current `i` flowing from node `p` through the element to
    /// node `n` (KCL: `i` leaves `p`, enters `n`).
    #[inline]
    fn stamp_current(&mut self, p: NodeId, n: NodeId, i: f64) {
        if let Some(ip) = self.layout.node_index(p) {
            self.rhs[ip] -= i;
        }
        if let Some(in_) = self.layout.node_index(n) {
            self.rhs[in_] += i;
        }
    }

    /// Stamps a transconductance: current `gm * (v(cp) − v(cn))` from `p`
    /// through the element to `n`.
    #[inline]
    fn stamp_vccs(&mut self, p: NodeId, n: NodeId, cp: NodeId, cn: NodeId, gm: f64) {
        let ip = self.layout.node_index(p);
        let in_ = self.layout.node_index(n);
        let icp = self.layout.node_index(cp);
        let icn = self.layout.node_index(cn);
        if let (Some(r), Some(c)) = (ip, icp) {
            self.matrix.add(r, c, gm);
        }
        if let (Some(r), Some(c)) = (ip, icn) {
            self.matrix.add(r, c, -gm);
        }
        if let (Some(r), Some(c)) = (in_, icp) {
            self.matrix.add(r, c, -gm);
        }
        if let (Some(r), Some(c)) = (in_, icn) {
            self.matrix.add(r, c, gm);
        }
    }

    /// Assembles the full MNA system for the given context.
    pub(crate) fn assemble(&mut self, netlist: &Netlist, ctx: &AssemblyCtx<'_>) {
        self.matrix.clear();
        self.rhs.fill(0.0);

        // gmin from every non-ground node to ground keeps otherwise floating
        // nodes (e.g. capacitor-only nodes in DC) solvable.
        if ctx.gmin > 0.0 {
            for i in 0..(self.layout.node_count - 1) {
                self.matrix.add(i, i, ctx.gmin);
            }
        }

        for (id, dev) in netlist.iter() {
            match dev {
                Device::Resistor { a, b, ohms } => {
                    self.stamp_conductance(*a, *b, 1.0 / ohms);
                }
                Device::Switch {
                    a,
                    b,
                    closed,
                    r_on,
                    r_off,
                } => {
                    let r = if *closed { *r_on } else { *r_off };
                    self.stamp_conductance(*a, *b, 1.0 / r);
                }
                Device::Capacitor { a, b, .. } => {
                    if let Some(Some(comp)) = ctx.cap_companion.get(id.index()) {
                        self.stamp_conductance(*a, *b, comp.g);
                        // ieq is injected from b to a (i.e. it *feeds* node a)
                        // so that i_cap = g·v − ieq.
                        self.stamp_current(*a, *b, -comp.ieq);
                    }
                    // DC: capacitor is an open circuit (gmin covers floating
                    // nodes).
                }
                Device::VSource { p, n, wave } => {
                    let br = self.layout.branch_index(id);
                    let val = wave.at(ctx.time) * ctx.source_scale;
                    if let Some(ip) = self.layout.node_index(*p) {
                        self.matrix.add(ip, br, 1.0);
                        self.matrix.add(br, ip, 1.0);
                    }
                    if let Some(in_) = self.layout.node_index(*n) {
                        self.matrix.add(in_, br, -1.0);
                        self.matrix.add(br, in_, -1.0);
                    }
                    self.rhs[br] += val;
                }
                Device::ISource { p, n, wave } => {
                    let val = wave.at(ctx.time) * ctx.source_scale;
                    self.stamp_current(*p, *n, val);
                }
                Device::Vcvs { p, n, cp, cn, gain } => {
                    let br = self.layout.branch_index(id);
                    if let Some(ip) = self.layout.node_index(*p) {
                        self.matrix.add(ip, br, 1.0);
                        self.matrix.add(br, ip, 1.0);
                    }
                    if let Some(in_) = self.layout.node_index(*n) {
                        self.matrix.add(in_, br, -1.0);
                        self.matrix.add(br, in_, -1.0);
                    }
                    if let Some(icp) = self.layout.node_index(*cp) {
                        self.matrix.add(br, icp, -gain);
                    }
                    if let Some(icn) = self.layout.node_index(*cn) {
                        self.matrix.add(br, icn, *gain);
                    }
                }
                Device::Vccs { p, n, cp, cn, gm } => {
                    self.stamp_vccs(*p, *n, *cp, *cn, *gm);
                }
                Device::Diode {
                    anode,
                    cathode,
                    i_sat,
                    ideality,
                } => {
                    let vd = self.v(ctx, *anode) - self.v(ctx, *cathode);
                    let nvt = ideality * ctx.thermal.vt();
                    let is_eff = ctx.thermal.diode_is(*i_sat);
                    let (i, g) = diode_eval(vd, is_eff, nvt);
                    let ieq = i - g * vd;
                    self.stamp_conductance(*anode, *cathode, g);
                    self.stamp_current(*anode, *cathode, ieq);
                }
                Device::Mosfet {
                    d,
                    g,
                    s,
                    polarity,
                    vth,
                    kp,
                    lambda,
                } => {
                    let vth_t = ctx.thermal.mos_vth(*vth);
                    let kp_t = ctx.thermal.mos_kp(*kp);
                    self.stamp_mosfet(ctx, *d, *g, *s, *polarity, vth_t, kp_t, *lambda);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn stamp_mosfet(
        &mut self,
        ctx: &AssemblyCtx<'_>,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        polarity: MosPolarity,
        vth: f64,
        kp: f64,
        lambda: f64,
    ) {
        let vd = self.v(ctx, d);
        let vg = self.v(ctx, g);
        let vs = self.v(ctx, s);

        // Normalize to NMOS-like voltages. For PMOS we flip every sign so
        // that the same square-law expressions apply, then flip the
        // resulting current direction back.
        let sign = match polarity {
            MosPolarity::Nmos => 1.0,
            MosPolarity::Pmos => -1.0,
        };
        let (nvd, nvg, nvs) = (sign * vd, sign * vg, sign * vs);

        // The MOS is symmetric: if the normalized drain is below the
        // normalized source, exchange roles.
        let swapped = nvd < nvs;
        let (hd, hs, nhd, nhs) = if swapped {
            (s, d, nvs, nvd)
        } else {
            (d, s, nvd, nvs)
        };

        let vgs = nvg - nhs;
        let vds = nhd - nhs;
        let (ids, gm, gds) = nmos_eval(vgs, vds, vth, kp, lambda);

        // Companion: i(vgs, vds) ≈ ids + gm·Δvgs + gds·Δvds.
        // Current flows hd → hs in normalized space; `sign` maps it back.
        // In original node space for PMOS, a positive normalized ids means
        // current from hs to hd (i.e. source to drain), which the sign flip
        // on the stamp handles because conductances are sign-invariant and
        // the equivalent current flips direction.
        // Real current hd → hs expands to
        //   gm·(v(g) − v(hs)) + gds·(v(hd) − v(hs)) + sign·ieq
        // because for PMOS both the control voltage and the output current
        // flip sign (the two flips cancel in the gm/gds terms).
        let ieq = ids - gm * vgs - gds * vds;
        let _ = swapped;
        self.stamp_conductance(hd, hs, gds);
        self.stamp_vccs(hd, hs, g, hs, gm);
        self.stamp_current(hd, hs, sign * ieq);
    }
}

/// Precomputed sparse-pattern slots for one diode (the four conductance
/// positions over `{anode, cathode}²`; `None` where a terminal is ground).
#[derive(Debug, Clone, Copy, Default)]
struct DiodeSlots {
    aa: Option<usize>,
    kk: Option<usize>,
    ak: Option<usize>,
    ka: Option<usize>,
}

/// Precomputed sparse-pattern slots for one MOSFET: all positions the stamp
/// can touch in either drain/source orientation, `{d,s} × {d,s,g}`.
#[derive(Debug, Clone, Copy, Default)]
struct MosSlots {
    dd: Option<usize>,
    ds: Option<usize>,
    sd: Option<usize>,
    ss: Option<usize>,
    dg: Option<usize>,
    sg: Option<usize>,
}

/// Per-device nonlinear stamp plan, indexed by device id.
#[derive(Debug, Clone, Copy)]
enum NonlinearSlots {
    /// Device is linear (or RHS-only); nothing to re-stamp per iteration.
    None,
    Diode(DiodeSlots),
    Mos(MosSlots),
}

/// Sparse MNA assembler with a linear/nonlinear stamp split.
///
/// The expensive per-topology work — sparsity-pattern discovery, fill-reducing
/// ordering, symbolic factorization, and stamping of all *linear* devices —
/// happens once. Each Newton iteration then only copies the cached linear
/// base values, adds the nonlinear deltas (diode and MOSFET conductances at
/// the current guess), rebuilds the right-hand side, and runs the static-
/// pattern numeric refactorization from [`crate::sparse`].
///
/// Linear device values *can* change between solves (switches toggled by the
/// SAR controller, capacitor companions when `dt` changes, `gmin` stepping);
/// a per-device fingerprint detects that and rebuilds the base lazily.
#[derive(Debug)]
pub(crate) struct SparseAssembler {
    symbolic: Rc<Symbolic>,
    numeric: Numeric,
    /// Cached values of the linear portion of the matrix.
    base: Vec<f64>,
    /// Scratch: base + nonlinear deltas for the current iteration.
    work: Vec<f64>,
    /// The values the current factorization was computed from; when `work`
    /// comes out bit-identical (linear circuits after the first iteration,
    /// converged Newton re-checks), the refactorization is skipped.
    factored: Vec<f64>,
    pub rhs: Vec<f64>,
    /// Per-device linear fingerprint; a change forces a base rebuild.
    fingerprint: Vec<f64>,
    /// gmin the base was built with (part of the fingerprint).
    base_gmin: f64,
    /// `true` until the first base build.
    base_dirty: bool,
    /// Per-device nonlinear stamp plans.
    nonlinear: Vec<NonlinearSlots>,
    /// Structure key this assembler was built for; used to return it to the
    /// per-topology cache when the owning engine is dropped.
    key: Vec<u64>,
}

type AssemblerCache = HashMap<Vec<u64>, SparseAssembler, BuildHasherDefault<FnvHasher>>;

thread_local! {
    static ASSEMBLER_CACHE: RefCell<AssemblerCache> = RefCell::new(HashMap::default());
}

/// Entry cap on the per-thread assembler cache (cleared on overflow). Sized
/// for the worst realistic topology count: a defect campaign injecting a
/// few hundred structural shorts/opens into one netlist.
const ASSEMBLER_CACHE_CAP: usize = 256;

impl SparseAssembler {
    /// A cheap structural fingerprint of the netlist: device kinds and node
    /// wiring, excluding every value (resistances, source levels, switch
    /// state, MOS parameters) — those are handled per solve by the
    /// per-device value fingerprint and the RHS rebuild.
    fn structure_key(netlist: &Netlist, dim: usize) -> Vec<u64> {
        let mut key = Vec::with_capacity(1 + netlist.device_count() * 4);
        key.push(dim as u64);
        let node = |n: &crate::netlist::NodeId| n.index() as u64;
        for (_, dev) in netlist.iter() {
            match dev {
                Device::Resistor { a, b, .. } => key.extend([1, node(a), node(b)]),
                Device::Switch { a, b, .. } => key.extend([2, node(a), node(b)]),
                Device::Capacitor { a, b, .. } => key.extend([3, node(a), node(b)]),
                Device::Diode { anode, cathode, .. } => {
                    key.extend([4, node(anode), node(cathode)]);
                }
                Device::VSource { p, n, .. } => key.extend([5, node(p), node(n)]),
                Device::ISource { p, n, .. } => key.extend([6, node(p), node(n)]),
                Device::Vcvs { p, n, cp, cn, .. } => {
                    key.extend([7, node(p), node(n), node(cp), node(cn)]);
                }
                Device::Vccs { p, n, cp, cn, .. } => {
                    key.extend([8, node(p), node(n), node(cp), node(cn)]);
                }
                Device::Mosfet { d, g, s, .. } => {
                    key.extend([9, node(d), node(g), node(s)]);
                }
            }
        }
        key
    }

    /// Fetches the assembler for this topology from the per-thread cache, or
    /// builds one on first sight. The caller owns it until [`Self::release`].
    ///
    /// A cached assembler may carry state from a *different netlist* of the
    /// same structure (other Monte-Carlo sample, toggled switches); that is
    /// safe by construction — the value fingerprint rebuilds the linear base
    /// on mismatch, nonlinear stamps and the RHS are rebuilt from the actual
    /// netlist every iteration, and the numeric factorization is refreshed
    /// whenever the assembled values change.
    pub(crate) fn obtain(netlist: &Netlist, layout: &MnaLayout) -> Self {
        let key = Self::structure_key(netlist, layout.dim);
        let cached = ASSEMBLER_CACHE.with(|c| c.borrow_mut().remove(&key));
        let mut asm = cached.unwrap_or_else(|| Self::new(netlist, layout));
        asm.key = key;
        asm
    }

    /// Returns the assembler to the per-thread cache for the next engine on
    /// the same topology.
    fn release(mut self) {
        let key = std::mem::take(&mut self.key);
        if key.is_empty() {
            return;
        }
        // `try_with`: drops during thread teardown must not panic.
        let _ = ASSEMBLER_CACHE.try_with(|c| {
            let mut cache = c.borrow_mut();
            if cache.len() >= ASSEMBLER_CACHE_CAP {
                cache.clear();
            }
            cache.insert(key, self);
        });
    }

    pub(crate) fn new(netlist: &Netlist, layout: &MnaLayout) -> Self {
        let mut entries: Vec<(usize, usize)> = Vec::new();
        let sym = |a: Option<usize>, b: Option<usize>, out: &mut Vec<(usize, usize)>| {
            if let Some(i) = a {
                out.push((i, i));
            }
            if let Some(j) = b {
                out.push((j, j));
            }
            if let (Some(i), Some(j)) = (a, b) {
                out.push((i, j));
                out.push((j, i));
            }
        };
        for (id, dev) in netlist.iter() {
            match dev {
                Device::Resistor { a, b, .. }
                | Device::Switch { a, b, .. }
                | Device::Capacitor { a, b, .. } => {
                    sym(layout.node_index(*a), layout.node_index(*b), &mut entries);
                }
                Device::Diode { anode, cathode, .. } => {
                    sym(
                        layout.node_index(*anode),
                        layout.node_index(*cathode),
                        &mut entries,
                    );
                }
                Device::VSource { p, n, .. } => {
                    let br = layout.branch_index(id);
                    for i in [layout.node_index(*p), layout.node_index(*n)]
                        .into_iter()
                        .flatten()
                    {
                        entries.push((i, br));
                        entries.push((br, i));
                    }
                }
                Device::Vcvs { p, n, cp, cn, .. } => {
                    let br = layout.branch_index(id);
                    for i in [layout.node_index(*p), layout.node_index(*n)]
                        .into_iter()
                        .flatten()
                    {
                        entries.push((i, br));
                        entries.push((br, i));
                    }
                    for i in [layout.node_index(*cp), layout.node_index(*cn)]
                        .into_iter()
                        .flatten()
                    {
                        entries.push((br, i));
                    }
                }
                Device::Vccs { p, n, cp, cn, .. } => {
                    for row in [layout.node_index(*p), layout.node_index(*n)] {
                        for col in [layout.node_index(*cp), layout.node_index(*cn)] {
                            if let (Some(r), Some(c)) = (row, col) {
                                entries.push((r, c));
                            }
                        }
                    }
                }
                Device::Mosfet { d, g, s, .. } => {
                    // The symmetric-MOS stamp can swap drain and source per
                    // iteration; reserve every position either orientation
                    // can touch.
                    for row in [layout.node_index(*d), layout.node_index(*s)] {
                        for col in [
                            layout.node_index(*d),
                            layout.node_index(*s),
                            layout.node_index(*g),
                        ] {
                            if let (Some(r), Some(c)) = (row, col) {
                                entries.push((r, c));
                            }
                        }
                    }
                }
                Device::ISource { .. } => {}
            }
        }
        let symbolic = analyze_cached(layout.dim, &entries);
        let numeric = Numeric::new(&symbolic);

        // Precompute per-iteration stamp slots for the nonlinear devices.
        let slot2 = |sym: &Symbolic, r: Option<usize>, c: Option<usize>| match (r, c) {
            (Some(r), Some(c)) => sym.slot(r, c),
            _ => None,
        };
        let nonlinear = netlist
            .iter()
            .map(|(_, dev)| match dev {
                Device::Diode { anode, cathode, .. } => {
                    let a = layout.node_index(*anode);
                    let k = layout.node_index(*cathode);
                    NonlinearSlots::Diode(DiodeSlots {
                        aa: slot2(&symbolic, a, a),
                        kk: slot2(&symbolic, k, k),
                        ak: slot2(&symbolic, a, k),
                        ka: slot2(&symbolic, k, a),
                    })
                }
                Device::Mosfet { d, g, s, .. } => {
                    let id = layout.node_index(*d);
                    let ig = layout.node_index(*g);
                    let is = layout.node_index(*s);
                    NonlinearSlots::Mos(MosSlots {
                        dd: slot2(&symbolic, id, id),
                        ds: slot2(&symbolic, id, is),
                        sd: slot2(&symbolic, is, id),
                        ss: slot2(&symbolic, is, is),
                        dg: slot2(&symbolic, id, ig),
                        sg: slot2(&symbolic, is, ig),
                    })
                }
                _ => NonlinearSlots::None,
            })
            .collect();

        let nnz = symbolic.nnz();
        Self {
            symbolic,
            numeric,
            base: vec![0.0; nnz],
            work: vec![0.0; nnz],
            factored: vec![f64::NAN; nnz],
            rhs: vec![0.0; layout.dim],
            fingerprint: vec![f64::NAN; netlist.device_count()],
            base_gmin: f64::NAN,
            base_dirty: true,
            nonlinear,
            key: Vec::new(),
        }
    }

    /// The linear-portion value a device contributes to the matrix; when it
    /// changes, the cached base is stale. RHS-only changes (source values,
    /// companion `ieq`) deliberately do not appear here.
    fn linear_value(dev: &Device, companion: Option<&CapCompanion>) -> f64 {
        match dev {
            Device::Resistor { ohms, .. } => 1.0 / ohms,
            Device::Switch {
                closed,
                r_on,
                r_off,
                ..
            } => 1.0 / if *closed { *r_on } else { *r_off },
            Device::Capacitor { .. } => companion.map_or(0.0, |c| c.g),
            Device::Vcvs { gain, .. } => *gain,
            Device::Vccs { gm, .. } => *gm,
            // Sources only move the RHS; diodes and MOSFETs are re-stamped
            // every iteration anyway.
            _ => 0.0,
        }
    }

    /// Rebuilds the cached linear base if any linear value changed.
    fn refresh_base(&mut self, netlist: &Netlist, layout: &MnaLayout, ctx: &AssemblyCtx<'_>) {
        let mut stale = self.base_dirty || self.base_gmin != ctx.gmin;
        for (id, dev) in netlist.iter() {
            let comp = ctx.cap_companion.get(id.index()).and_then(|c| c.as_ref());
            let v = Self::linear_value(dev, comp);
            if self.fingerprint[id.index()].to_bits() != v.to_bits() {
                self.fingerprint[id.index()] = v;
                stale = true;
            }
        }
        if !stale {
            return;
        }
        self.base.fill(0.0);
        fn add(sym: &Symbolic, base: &mut [f64], r: usize, c: usize, v: f64) {
            let s = sym.slot(r, c).expect("position in pattern");
            base[s] += v;
        }
        fn conductance(
            sym: &Symbolic,
            base: &mut [f64],
            a: Option<usize>,
            b: Option<usize>,
            g: f64,
        ) {
            if let Some(i) = a {
                add(sym, base, i, i, g);
            }
            if let Some(j) = b {
                add(sym, base, j, j, g);
            }
            if let (Some(i), Some(j)) = (a, b) {
                add(sym, base, i, j, -g);
                add(sym, base, j, i, -g);
            }
        }
        let sym = &self.symbolic;
        let base = &mut self.base;
        if ctx.gmin > 0.0 {
            for i in 0..(layout.node_count - 1) {
                add(sym, base, i, i, ctx.gmin);
            }
        }
        for (id, dev) in netlist.iter() {
            match dev {
                Device::Resistor { a, b, ohms } => {
                    conductance(
                        sym,
                        base,
                        layout.node_index(*a),
                        layout.node_index(*b),
                        1.0 / ohms,
                    );
                }
                Device::Switch {
                    a,
                    b,
                    closed,
                    r_on,
                    r_off,
                } => {
                    let r = if *closed { *r_on } else { *r_off };
                    conductance(
                        sym,
                        base,
                        layout.node_index(*a),
                        layout.node_index(*b),
                        1.0 / r,
                    );
                }
                Device::Capacitor { a, b, .. } => {
                    if let Some(Some(comp)) = ctx.cap_companion.get(id.index()) {
                        conductance(
                            sym,
                            base,
                            layout.node_index(*a),
                            layout.node_index(*b),
                            comp.g,
                        );
                    }
                }
                Device::VSource { p, n, .. } => {
                    let br = layout.branch_index(id);
                    if let Some(ip) = layout.node_index(*p) {
                        add(sym, base, ip, br, 1.0);
                        add(sym, base, br, ip, 1.0);
                    }
                    if let Some(in_) = layout.node_index(*n) {
                        add(sym, base, in_, br, -1.0);
                        add(sym, base, br, in_, -1.0);
                    }
                }
                Device::Vcvs { p, n, cp, cn, gain } => {
                    let br = layout.branch_index(id);
                    if let Some(ip) = layout.node_index(*p) {
                        add(sym, base, ip, br, 1.0);
                        add(sym, base, br, ip, 1.0);
                    }
                    if let Some(in_) = layout.node_index(*n) {
                        add(sym, base, in_, br, -1.0);
                        add(sym, base, br, in_, -1.0);
                    }
                    if let Some(icp) = layout.node_index(*cp) {
                        add(sym, base, br, icp, -gain);
                    }
                    if let Some(icn) = layout.node_index(*cn) {
                        add(sym, base, br, icn, *gain);
                    }
                }
                Device::Vccs { p, n, cp, cn, gm } => {
                    let rows = [(layout.node_index(*p), *gm), (layout.node_index(*n), -*gm)];
                    for (row, s) in rows {
                        if let Some(r) = row {
                            if let Some(c) = layout.node_index(*cp) {
                                add(sym, base, r, c, s);
                            }
                            if let Some(c) = layout.node_index(*cn) {
                                add(sym, base, r, c, -s);
                            }
                        }
                    }
                }
                // Sources only touch the RHS; nonlinear devices are stamped
                // per iteration on top of the base.
                Device::ISource { .. } | Device::Diode { .. } | Device::Mosfet { .. } => {}
            }
        }
        self.base_gmin = ctx.gmin;
        self.base_dirty = false;
    }

    /// Assembles (incrementally) and solves the MNA system. Returns
    /// `true` when a numeric refactorization was performed, `false` when
    /// the bit-identical-matrix check allowed it to be skipped — the
    /// engine turns this into the refactor-skip hit-rate metrics.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when the static-pivot refactorization
    /// hits a numerically vanishing pivot; the caller may retry on the dense
    /// partially-pivoted path.
    pub(crate) fn assemble_and_solve(
        &mut self,
        netlist: &Netlist,
        layout: &MnaLayout,
        ctx: &AssemblyCtx<'_>,
        x_out: &mut [f64],
    ) -> Result<bool, SingularMatrixError> {
        self.refresh_base(netlist, layout, ctx);
        self.work.copy_from_slice(&self.base);
        self.rhs.fill(0.0);

        let v = |n: NodeId| match layout.node_index(n) {
            None => 0.0,
            Some(i) => ctx.guess[i],
        };

        for (id, dev) in netlist.iter() {
            match dev {
                Device::VSource { p: _, n: _, wave } => {
                    let br = layout.branch_index(id);
                    self.rhs[br] += wave.at(ctx.time) * ctx.source_scale;
                }
                Device::ISource { p, n, wave } => {
                    let i = wave.at(ctx.time) * ctx.source_scale;
                    if let Some(ip) = layout.node_index(*p) {
                        self.rhs[ip] -= i;
                    }
                    if let Some(in_) = layout.node_index(*n) {
                        self.rhs[in_] += i;
                    }
                }
                Device::Capacitor { a, b, .. } => {
                    if let Some(Some(comp)) = ctx.cap_companion.get(id.index()) {
                        // ieq feeds node a: i(a→b) = −ieq on the source term.
                        if let Some(ia) = layout.node_index(*a) {
                            self.rhs[ia] += comp.ieq;
                        }
                        if let Some(ib) = layout.node_index(*b) {
                            self.rhs[ib] -= comp.ieq;
                        }
                    }
                }
                Device::Diode {
                    anode,
                    cathode,
                    i_sat,
                    ideality,
                } => {
                    let NonlinearSlots::Diode(slots) = self.nonlinear[id.index()] else {
                        unreachable!("diode slot plan missing");
                    };
                    let vd = v(*anode) - v(*cathode);
                    let nvt = ideality * ctx.thermal.vt();
                    let is_eff = ctx.thermal.diode_is(*i_sat);
                    let (i, g) = diode_eval(vd, is_eff, nvt);
                    let ieq = i - g * vd;
                    if let Some(s) = slots.aa {
                        self.work[s] += g;
                    }
                    if let Some(s) = slots.kk {
                        self.work[s] += g;
                    }
                    if let Some(s) = slots.ak {
                        self.work[s] -= g;
                    }
                    if let Some(s) = slots.ka {
                        self.work[s] -= g;
                    }
                    if let Some(ia) = layout.node_index(*anode) {
                        self.rhs[ia] -= ieq;
                    }
                    if let Some(ik) = layout.node_index(*cathode) {
                        self.rhs[ik] += ieq;
                    }
                }
                Device::Mosfet {
                    d,
                    g,
                    s,
                    polarity,
                    vth,
                    kp,
                    lambda,
                } => {
                    let NonlinearSlots::Mos(slots) = self.nonlinear[id.index()] else {
                        unreachable!("mosfet slot plan missing");
                    };
                    let vth_t = ctx.thermal.mos_vth(*vth);
                    let kp_t = ctx.thermal.mos_kp(*kp);
                    let sign = match polarity {
                        MosPolarity::Nmos => 1.0,
                        MosPolarity::Pmos => -1.0,
                    };
                    let (nvd, nvg, nvs) = (sign * v(*d), sign * v(*g), sign * v(*s));
                    let swapped = nvd < nvs;
                    let (nhd, nhs) = if swapped { (nvs, nvd) } else { (nvd, nvs) };
                    let vgs = nvg - nhs;
                    let vds = nhd - nhs;
                    let (ids, gm, gds) = nmos_eval(vgs, vds, vth_t, kp_t, *lambda);
                    let ieq = ids - gm * vgs - gds * vds;
                    // Conductance gds between hd and hs = between d and s.
                    if let Some(sl) = slots.dd {
                        self.work[sl] += gds;
                    }
                    if let Some(sl) = slots.ss {
                        self.work[sl] += gds;
                    }
                    if let Some(sl) = slots.ds {
                        self.work[sl] -= gds;
                    }
                    if let Some(sl) = slots.sd {
                        self.work[sl] -= gds;
                    }
                    // VCCS gm from (g, hs) driving hd → hs.
                    let (hd_g, hd_hs, hs_g, hs_hs) = if swapped {
                        (slots.sg, slots.sd, slots.dg, slots.dd)
                    } else {
                        (slots.dg, slots.ds, slots.sg, slots.ss)
                    };
                    if let Some(sl) = hd_g {
                        self.work[sl] += gm;
                    }
                    if let Some(sl) = hd_hs {
                        self.work[sl] -= gm;
                    }
                    if let Some(sl) = hs_g {
                        self.work[sl] -= gm;
                    }
                    if let Some(sl) = hs_hs {
                        self.work[sl] += gm;
                    }
                    // Equivalent current hd → hs, mapped back by `sign`.
                    let (hd, hs) = if swapped { (*s, *d) } else { (*d, *s) };
                    if let Some(i) = layout.node_index(hd) {
                        self.rhs[i] -= sign * ieq;
                    }
                    if let Some(i) = layout.node_index(hs) {
                        self.rhs[i] += sign * ieq;
                    }
                }
                Device::Resistor { .. }
                | Device::Switch { .. }
                | Device::Vcvs { .. }
                | Device::Vccs { .. } => {}
            }
        }

        // NaN-initialized `factored` never bit-matches, so the first
        // iteration always factors.
        let same = self
            .work
            .iter()
            .zip(&self.factored)
            .all(|(w, f)| w.to_bits() == f.to_bits());
        if !same {
            self.numeric.refactor(&self.symbolic, &self.work)?;
            self.factored.copy_from_slice(&self.work);
        }
        self.numeric.solve_into(&self.symbolic, &self.rhs, x_out);
        Ok(!same)
    }
}

/// Solver engine: sparse split-assembly path with the dense partially-pivoted
/// path as fallback and cross-check oracle.
#[derive(Debug)]
pub(crate) struct MnaEngine {
    dense: Assembler,
    sparse: Option<SparseAssembler>,
    /// Solution buffer reused across iterations; [`MnaEngine::assemble_and_solve`]
    /// hands out a borrow of it so the hot loop never allocates.
    solution: Vec<f64>,
    /// Consecutive sparse pivot failures; the engine goes sticky-dense after
    /// a few so a topology that genuinely defeats static pivoting does not
    /// pay for a doomed refactorization on every iteration.
    sparse_failures: u32,
    stats: EngineStats,
}

/// Plain-integer solve tallies, accumulated per engine and flushed to the
/// shared `symbist-obs` registry once, on [`MnaEngine`] drop. Keeping the
/// per-solve cost at ordinary integer increments (no atomics, no clock
/// reads) is what holds the measured instrumentation overhead on the
/// transient hot loop under the 3% budget.
#[derive(Debug)]
struct EngineStats {
    sparse_solves: u64,
    dense_solves: u64,
    refactors: u64,
    refactor_skips: u64,
    /// Newton iterations per converged operating-point solve; local
    /// buckets, merged into the shared histogram on drop.
    newton_iters: symbist_obs::LocalHistogram,
}

impl EngineStats {
    fn new() -> Self {
        Self {
            sparse_solves: 0,
            dense_solves: 0,
            refactors: 0,
            refactor_skips: 0,
            newton_iters: symbist_obs::LocalHistogram::new(symbist_obs::histogram!(
                "symbist_solver_newton_iterations",
                "Newton iterations per converged operating-point solve",
                symbist_obs::ITERATION_EDGES
            )),
        }
    }

    fn flush(&mut self) {
        symbist_obs::counter!(
            r#"symbist_solver_solves_total{path="sparse"}"#,
            "Linear MNA solves by assembly path"
        )
        .add(self.sparse_solves);
        symbist_obs::counter!(
            r#"symbist_solver_solves_total{path="dense"}"#,
            "Linear MNA solves by assembly path"
        )
        .add(self.dense_solves);
        symbist_obs::counter!(
            "symbist_solver_refactors_total",
            "Sparse numeric refactorizations performed"
        )
        .add(self.refactors);
        symbist_obs::counter!(
            "symbist_solver_refactor_skips_total",
            "Sparse refactorizations skipped via the bit-identical-matrix check"
        )
        .add(self.refactor_skips);
        self.sparse_solves = 0;
        self.dense_solves = 0;
        self.refactors = 0;
        self.refactor_skips = 0;
        self.newton_iters.flush();
    }
}

/// After this many consecutive static-pivot failures the engine stops trying
/// the sparse path for the remainder of its lifetime.
const SPARSE_FAILURE_LIMIT: u32 = 8;

impl MnaEngine {
    pub(crate) fn new(netlist: &Netlist, choice: crate::dc::EngineChoice) -> Self {
        use crate::dc::EngineChoice;
        let dense = Assembler::new(netlist);
        let sparse = match crate::dc::resolve_engine(choice) {
            EngineChoice::Dense => None,
            EngineChoice::Auto | EngineChoice::Sparse => {
                Some(SparseAssembler::obtain(netlist, &dense.layout))
            }
        };
        let solution = vec![0.0; dense.layout.dim];
        Self {
            dense,
            sparse,
            solution,
            sparse_failures: 0,
            stats: EngineStats::new(),
        }
    }

    /// Records the iteration count of one converged Newton solve into the
    /// engine-local histogram (flushed on drop).
    pub(crate) fn note_newton(&mut self, iterations: u64) {
        #[allow(clippy::cast_precision_loss)]
        self.stats.newton_iters.record(iterations as f64);
    }

    pub(crate) fn layout(&self) -> &MnaLayout {
        &self.dense.layout
    }

    /// Assembles and solves one MNA system, preferring the sparse path.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] only when the dense fallback also
    /// finds the matrix singular (a genuinely singular iterate).
    pub(crate) fn assemble_and_solve(
        &mut self,
        netlist: &Netlist,
        ctx: &AssemblyCtx<'_>,
    ) -> Result<&[f64], SingularMatrixError> {
        let mut solved = false;
        if self.sparse_failures < SPARSE_FAILURE_LIMIT {
            // Split borrows: the layout lives on the dense assembler.
            if let Some(sparse) = self.sparse.as_mut() {
                match sparse.assemble_and_solve(
                    netlist,
                    &self.dense.layout,
                    ctx,
                    &mut self.solution,
                ) {
                    Ok(refactored) => {
                        self.sparse_failures = 0;
                        solved = true;
                        self.stats.sparse_solves += 1;
                        if refactored {
                            self.stats.refactors += 1;
                        } else {
                            self.stats.refactor_skips += 1;
                        }
                    }
                    Err(_) => self.sparse_failures += 1,
                }
            }
        }
        if !solved {
            self.dense.assemble(netlist, ctx);
            self.solution = self.dense.matrix.solve(&self.dense.rhs)?;
            self.stats.dense_solves += 1;
        }
        Ok(&self.solution)
    }
}

impl Drop for MnaEngine {
    fn drop(&mut self) {
        self.stats.flush();
        if let Some(sparse) = self.sparse.take() {
            sparse.release();
        }
    }
}

/// Shockley diode with exponent limiting: returns `(i, di/dv)`.
pub(crate) fn diode_eval(vd: f64, i_sat: f64, nvt: f64) -> (f64, f64) {
    let x = vd / nvt;
    if x > DIODE_EXP_MAX {
        // Linear extrapolation beyond the exponent cap.
        let e = DIODE_EXP_MAX.exp();
        let i_cap = i_sat * (e - 1.0);
        let g_cap = i_sat * e / nvt;
        (i_cap + g_cap * (vd - DIODE_EXP_MAX * nvt), g_cap)
    } else if x < -DIODE_EXP_MAX {
        // Deep reverse: saturation current with a tiny conductance to keep
        // the Jacobian nonsingular.
        (-i_sat, i_sat / nvt * (-DIODE_EXP_MAX).exp() + 1e-15)
    } else {
        let e = x.exp();
        (i_sat * (e - 1.0), i_sat * e / nvt)
    }
}

/// Level-1 NMOS square law: returns `(ids, gm, gds)` for `vds >= 0`.
pub(crate) fn nmos_eval(vgs: f64, vds: f64, vth: f64, kp: f64, lambda: f64) -> (f64, f64, f64) {
    debug_assert!(vds >= 0.0);
    let vov = vgs - vth;
    if vov <= 0.0 {
        // Cutoff: zero current; tiny gds keeps the node from floating.
        return (0.0, 0.0, 1e-12);
    }
    if vds < vov {
        // Triode.
        let ids = kp * (vov * vds - 0.5 * vds * vds);
        let gm = kp * vds;
        let gds = kp * (vov - vds) + 1e-12;
        (ids, gm, gds)
    } else {
        // Saturation with channel-length modulation.
        let ids0 = 0.5 * kp * vov * vov;
        let ids = ids0 * (1.0 + lambda * vds);
        let gm = kp * vov * (1.0 + lambda * vds);
        let gds = ids0 * lambda + 1e-12;
        (ids, gm, gds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    #[test]
    #[ignore = "timing probe, run manually with --release --nocapture"]
    fn timing_probe() {
        use std::hint::black_box;
        use std::time::Instant;
        let mut nl = Netlist::new();
        let top = nl.node("top");
        nl.vsource(top, Netlist::GND, 1.2);
        let mut prev = top;
        for i in 0..32 {
            let n = nl.node(&format!("tap{i}"));
            nl.resistor(prev, n, 250.0);
            prev = n;
        }
        nl.resistor(prev, Netlist::GND, 250.0);
        let time = |label: &str, f: &mut dyn FnMut()| {
            let iters = 20000;
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            println!(
                "{label:>30}: {:.0} ns",
                start.elapsed().as_secs_f64() * 1e9 / f64::from(iters)
            );
        };
        time("MnaLayout::new", &mut || {
            black_box(MnaLayout::new(&nl));
        });
        time("Assembler::new", &mut || {
            black_box(Assembler::new(&nl));
        });
        let layout = MnaLayout::new(&nl);
        time("structure_key", &mut || {
            black_box(SparseAssembler::structure_key(&nl, layout.dim));
        });
        time("obtain+release", &mut || {
            SparseAssembler::obtain(&nl, &layout).release();
        });
        let caps = vec![None; nl.device_count()];
        let guess = vec![0.0; layout.dim];
        let ctx = AssemblyCtx {
            time: 0.0,
            source_scale: 1.0,
            gmin: 1e-12,
            guess: &guess,
            cap_companion: &caps,
            thermal: Thermal::new(T_NOMINAL_K),
        };
        let mut sp = SparseAssembler::obtain(&nl, &layout);
        let mut x = vec![0.0; layout.dim];
        time("sparse assemble_and_solve", &mut || {
            sp.assemble_and_solve(&nl, &layout, &ctx, &mut x).unwrap();
            black_box(&x);
        });
        let mut engine = MnaEngine::new(&nl, crate::dc::EngineChoice::Sparse);
        time("engine assemble_and_solve", &mut || {
            black_box(engine.assemble_and_solve(&nl, &ctx).unwrap());
        });
        time("MnaEngine::new sparse", &mut || {
            black_box(MnaEngine::new(&nl, crate::dc::EngineChoice::Sparse));
        });
        time("MnaEngine::new dense", &mut || {
            black_box(MnaEngine::new(&nl, crate::dc::EngineChoice::Dense));
        });
        time("full DcSolver sparse", &mut || {
            black_box(
                crate::dc::DcSolver::with_options(crate::dc::DcOptions {
                    engine: crate::dc::EngineChoice::Sparse,
                    ..Default::default()
                })
                .solve(&nl)
                .unwrap(),
            );
        });
    }

    fn assemble_linear(netlist: &Netlist) -> (Matrix, Vec<f64>) {
        let mut asm = Assembler::new(netlist);
        let guess = vec![0.0; asm.layout.dim];
        let caps = vec![None; netlist.device_count()];
        let ctx = AssemblyCtx {
            time: 0.0,
            source_scale: 1.0,
            gmin: 0.0,
            guess: &guess,
            cap_companion: &caps,
            thermal: Thermal::new(T_NOMINAL_K),
        };
        asm.assemble(netlist, &ctx);
        (asm.matrix.clone(), asm.rhs.clone())
    }

    #[test]
    fn resistor_divider_system() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource(a, Netlist::GND, 2.0);
        nl.resistor(a, b, 1000.0);
        nl.resistor(b, Netlist::GND, 1000.0);
        let (m, rhs) = assemble_linear(&nl);
        // Unknowns: v(a), v(b), i(V1). Solve and check.
        let x = m.solve(&rhs).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        // Branch current = 2V across 2k = 1 mA flowing out of the source's
        // positive terminal into the divider, i.e. i(V) = −1 mA by MNA
        // convention (current p→n through the source).
        assert!((x[2] + 1e-3).abs() < 1e-9, "i = {}", x[2]);
    }

    #[test]
    fn isource_direction() {
        // 1 A source from gnd (p) to node (n) feeds the node; with a 1 Ω
        // resistor to ground the node must sit at +1 V.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.isource(Netlist::GND, a, 1.0);
        nl.resistor(a, Netlist::GND, 1.0);
        let (m, rhs) = assemble_linear(&nl);
        let x = m.solve(&rhs).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vccs_stamp() {
        // VCCS gm=2 S controlled by a 1 V source, output through 1 Ω.
        let mut nl = Netlist::new();
        let c = nl.node("c");
        let o = nl.node("o");
        nl.vsource(c, Netlist::GND, 1.0);
        // Current 2·v(c) flows o → gnd through the source ⇒ pulls o down.
        nl.vccs(o, Netlist::GND, c, Netlist::GND, 2.0);
        nl.resistor(o, Netlist::GND, 1.0);
        let (m, rhs) = assemble_linear(&nl);
        let x = m.solve(&rhs).unwrap();
        // KCL at o: v(o)/1 + 2·1 = 0 ⇒ v(o) = −2.
        assert!((x[1] + 2.0).abs() < 1e-12, "v(o) = {}", x[1]);
    }

    #[test]
    fn vcvs_gain() {
        let mut nl = Netlist::new();
        let c = nl.node("c");
        let o = nl.node("o");
        nl.vsource(c, Netlist::GND, 0.25);
        nl.vcvs(o, Netlist::GND, c, Netlist::GND, 8.0);
        nl.resistor(o, Netlist::GND, 50.0);
        let (m, rhs) = assemble_linear(&nl);
        let x = m.solve(&rhs).unwrap();
        assert!((x[1] - 2.0).abs() < 1e-12, "v(o) = {}", x[1]);
    }

    #[test]
    fn diode_eval_monotone() {
        let mut prev = f64::NEG_INFINITY;
        for mv in -100..=120 {
            let v = mv as f64 * 0.01;
            let (i, g) = diode_eval(v, 1e-14, VT_THERMAL);
            // Non-decreasing everywhere (deep reverse saturates to −Isat at
            // f64 precision), strictly increasing once forward biased.
            if v > 0.0 {
                assert!(
                    i > prev,
                    "forward current must be strictly increasing at v={v}"
                );
            } else {
                assert!(i >= prev, "current must never decrease at v={v}");
            }
            assert!(g > 0.0);
            prev = i;
        }
    }

    #[test]
    fn diode_eval_continuous_at_cap() {
        let nvt = VT_THERMAL;
        let vcap = DIODE_EXP_MAX * nvt;
        let (i_below, _) = diode_eval(vcap - 1e-9, 1e-14, nvt);
        let (i_above, _) = diode_eval(vcap + 1e-9, 1e-14, nvt);
        assert!((i_above - i_below) / i_below < 1e-3);
    }

    #[test]
    fn nmos_regions() {
        // Cutoff.
        let (i, gm, _) = nmos_eval(0.2, 1.0, 0.5, 1e-3, 0.0);
        assert_eq!(i, 0.0);
        assert_eq!(gm, 0.0);
        // Triode: vds < vov.
        let (i, _, gds) = nmos_eval(1.5, 0.2, 0.5, 1e-3, 0.0);
        let expect = 1e-3 * (1.0 * 0.2 - 0.5 * 0.04);
        assert!((i - expect).abs() < 1e-12);
        assert!(gds > 1e-6);
        // Saturation.
        let (i, gm, _) = nmos_eval(1.5, 2.0, 0.5, 1e-3, 0.0);
        assert!((i - 0.5e-3).abs() < 1e-12);
        assert!((gm - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn nmos_continuous_at_pinchoff() {
        let (i_tri, _, _) = nmos_eval(1.0, 0.5 - 1e-9, 0.5, 1e-3, 0.1);
        let (i_sat, _, _) = nmos_eval(1.0, 0.5 + 1e-9, 0.5, 1e-3, 0.1);
        // lambda introduces a small step at pinch-off in the level-1 model
        // (standard behaviour); with lambda·vds = 5% the step is bounded.
        assert!((i_sat - i_tri).abs() / i_tri < 0.06);
    }
}
