//! Transient analysis with switch-event co-simulation.
//!
//! Capacitors are replaced by their companion models (backward Euler or
//! trapezoidal) and the resulting resistive circuit is solved per time step
//! with the same Newton engine as the DC analysis. The simulation object
//! borrows the netlist per step, so a digital controller can flip switches
//! or retarget sources between steps — this is how the SAR conversion loop
//! and the SymBIST stimulus drive the analog core.
//!
//! # Examples
//!
//! ```
//! use symbist_circuit::netlist::Netlist;
//! use symbist_circuit::transient::{TransientOptions, TransientSim};
//!
//! // RC charging step: v(t) = 1 − exp(−t/RC), RC = 1 µs.
//! let mut nl = Netlist::new();
//! let src = nl.node("src");
//! let out = nl.node("out");
//! nl.vsource(src, Netlist::GND, 1.0);
//! nl.resistor(src, out, 1e3);
//! nl.capacitor_with_ic(out, Netlist::GND, 1e-9, 0.0);
//! let opts = TransientOptions { dt: 1e-8, use_ic: true, ..Default::default() };
//! let mut sim = TransientSim::new(&nl, opts)?;
//! while sim.time() < 1e-6 {
//!     sim.step(&nl)?;
//! }
//! let v = sim.voltage(out);
//! assert!((v - (1.0 - (-1.0f64).exp())).abs() < 5e-3);
//! # Ok::<(), symbist_circuit::error::CircuitError>(())
//! ```

use crate::dc::{DcOptions, DcSolver, Operating};
use crate::error::CircuitError;
use crate::mna::{CapCompanion, MnaEngine};
use crate::netlist::{Device, DeviceId, Netlist, NodeId};
use crate::waveform::{Trace, TraceSet};

/// Numerical integration method for capacitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Backward Euler: L-stable, first order, damps switching ringing —
    /// the default for switched-capacitor work.
    #[default]
    BackwardEuler,
    /// Trapezoidal: second order, energy preserving.
    Trapezoidal,
}

/// Transient analysis options.
#[derive(Debug, Clone)]
pub struct TransientOptions {
    /// Fixed time step in seconds.
    pub dt: f64,
    /// Integration method.
    pub integrator: Integrator,
    /// When `true`, capacitors with an `ic` start from it instead of the DC
    /// operating point.
    pub use_ic: bool,
    /// Newton options for the per-step solves.
    pub dc: DcOptions,
}

impl Default for TransientOptions {
    fn default() -> Self {
        Self {
            dt: 1e-10,
            integrator: Integrator::default(),
            use_ic: false,
            dc: DcOptions::default(),
        }
    }
}

/// Per-capacitor dynamic state.
#[derive(Debug, Clone, Copy)]
struct CapState {
    v_prev: f64,
    i_prev: f64,
}

/// A running transient simulation.
///
/// The netlist is borrowed per call rather than owned so that external
/// controllers can mutate switch states and source values between steps.
/// The topology (device and node counts) must not change between steps.
#[derive(Debug)]
pub struct TransientSim {
    asm: MnaEngine,
    solver: DcSolver,
    x: Vec<f64>,
    time: f64,
    dt: f64,
    integrator: Integrator,
    cap_state: Vec<Option<CapState>>,
    companions: Vec<Option<CapCompanion>>,
    device_count: usize,
    /// Trapezoidal needs a consistent capacitor current to start from; the
    /// first step is always taken with backward Euler to provide one.
    first_step: bool,
    /// Steps taken by this sim, flushed to the registry once on drop so
    /// the per-step cost stays a plain integer increment.
    steps_taken: u64,
}

impl Drop for TransientSim {
    fn drop(&mut self) {
        symbist_obs::counter!(
            "symbist_solver_transient_steps_total",
            "Transient integration steps taken"
        )
        .add(self.steps_taken);
    }
}

impl TransientSim {
    /// Initializes the simulation at `t = 0`.
    ///
    /// The initial point is the DC operating point of the netlist (with all
    /// waveforms evaluated at `t = 0`); capacitors carrying an explicit
    /// initial condition override it when `options.use_ic` is set.
    ///
    /// # Errors
    ///
    /// Returns an error if the initial operating point cannot be solved or
    /// if `options.dt` is not strictly positive.
    pub fn new(netlist: &Netlist, options: TransientOptions) -> Result<Self, CircuitError> {
        if !(options.dt.is_finite() && options.dt > 0.0) {
            return Err(CircuitError::InvalidConfig {
                reason: format!("time step must be > 0, got {}", options.dt),
            });
        }
        let solver = DcSolver::with_options(options.dc.clone());
        let op = solver.solve(netlist)?;
        let asm = MnaEngine::new(netlist, options.dc.engine);
        let mut cap_state = vec![None; netlist.device_count()];
        for (id, dev) in netlist.iter() {
            if let Device::Capacitor { a, b, ic, .. } = dev {
                let v0 = match (options.use_ic, ic) {
                    (true, Some(v)) => *v,
                    _ => op.voltage(*a) - op.voltage(*b),
                };
                cap_state[id.index()] = Some(CapState {
                    v_prev: v0,
                    i_prev: 0.0,
                });
            }
        }
        let device_count = netlist.device_count();
        Ok(Self {
            x: op.raw().to_vec(),
            asm,
            solver,
            time: 0.0,
            dt: options.dt,
            integrator: options.integrator,
            cap_state,
            companions: vec![None; device_count],
            device_count,
            first_step: true,
            steps_taken: 0,
        })
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Current time step.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Changes the time step for subsequent steps.
    ///
    /// # Errors
    ///
    /// Returns an error if `dt` is not strictly positive.
    pub fn set_dt(&mut self, dt: f64) -> Result<(), CircuitError> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(CircuitError::InvalidConfig {
                reason: format!("time step must be > 0, got {dt}"),
            });
        }
        self.dt = dt;
        Ok(())
    }

    /// Voltage of a node at the current time.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range for the simulated netlist.
    pub fn voltage(&self, n: NodeId) -> f64 {
        if n.is_ground() {
            return 0.0;
        }
        assert!(
            n.index() < self.asm.layout().node_count,
            "node {n} out of range"
        );
        self.x[n.index() - 1]
    }

    /// Differential voltage `v(a) − v(b)` at the current time.
    pub fn differential(&self, a: NodeId, b: NodeId) -> f64 {
        self.voltage(a) - self.voltage(b)
    }

    /// Branch current of a voltage-defined device at the current time.
    ///
    /// # Panics
    ///
    /// Panics if the device has no branch current.
    pub fn branch_current(&self, id: DeviceId) -> f64 {
        self.x[self.asm.layout().branch_index(id)]
    }

    /// A snapshot of the current solution as an [`Operating`] point.
    pub fn operating(&self) -> Operating {
        Operating {
            x: self.x.clone(),
            node_count: self.asm.layout().node_count,
            branch_of: self.asm.layout().branch_of.clone(),
        }
    }

    /// Advances one time step.
    ///
    /// The caller may have mutated switch states or source waveform values
    /// in `netlist` since the previous call; the topology must be unchanged.
    ///
    /// # Errors
    ///
    /// Returns an error if the step's Newton solve fails.
    ///
    /// # Panics
    ///
    /// Panics if the netlist's device count changed since construction.
    pub fn step(&mut self, netlist: &Netlist) -> Result<(), CircuitError> {
        assert_eq!(
            netlist.device_count(),
            self.device_count,
            "netlist topology changed mid-simulation"
        );
        let t_next = self.time + self.dt;

        // Build companion models from the previous step's state.
        for (id, dev) in netlist.iter() {
            if let Device::Capacitor { farads, .. } = dev {
                let st = self.cap_state[id.index()].expect("capacitor state missing");
                let integrator = if self.first_step {
                    // Startup: i_prev is not yet consistent; BE ignores it.
                    Integrator::BackwardEuler
                } else {
                    self.integrator
                };
                let comp = match integrator {
                    Integrator::BackwardEuler => {
                        let g = farads / self.dt;
                        CapCompanion {
                            g,
                            ieq: g * st.v_prev,
                        }
                    }
                    Integrator::Trapezoidal => {
                        let g = 2.0 * farads / self.dt;
                        CapCompanion {
                            g,
                            ieq: g * st.v_prev + st.i_prev,
                        }
                    }
                };
                self.companions[id.index()] = Some(comp);
            }
        }

        let converged = {
            let companions = std::mem::take(&mut self.companions);
            let result = self.solver.newton(
                netlist,
                &mut self.asm,
                &mut self.x,
                t_next,
                1.0,
                self.solver.options().gmin,
                &companions,
            );
            self.companions = companions;
            result?
        };
        if !converged {
            return Err(CircuitError::NoConvergence {
                analysis: "transient step",
                iterations: self.solver.options().max_iter,
            });
        }

        // Update capacitor states from the solved step.
        for (id, dev) in netlist.iter() {
            if let Device::Capacitor { a, b, .. } = dev {
                let comp = self.companions[id.index()].expect("companion missing");
                let v = self.node_v(*a) - self.node_v(*b);
                let i = comp.g * v - comp.ieq;
                self.cap_state[id.index()] = Some(CapState {
                    v_prev: v,
                    i_prev: i,
                });
            }
        }
        self.time = t_next;
        self.first_step = false;
        self.steps_taken += 1;
        Ok(())
    }

    fn node_v(&self, n: NodeId) -> f64 {
        match self.asm.layout().node_index(n) {
            None => 0.0,
            Some(i) => self.x[i],
        }
    }

    /// Runs until `t_end`, recording the given probes at every step.
    ///
    /// # Errors
    ///
    /// Propagates step failures.
    pub fn run_until(
        &mut self,
        netlist: &Netlist,
        t_end: f64,
        probes: &[(&str, NodeId)],
    ) -> Result<TraceSet, CircuitError> {
        let mut traces: Vec<Trace> = probes.iter().map(|(name, _)| Trace::new(*name)).collect();
        for (trace, (_, node)) in traces.iter_mut().zip(probes) {
            trace.push(self.time, self.voltage(*node));
        }
        while self.time < t_end - 0.5 * self.dt {
            self.step(netlist)?;
            for (trace, (_, node)) in traces.iter_mut().zip(probes) {
                trace.push(self.time, self.voltage(*node));
            }
        }
        let mut set = TraceSet::new();
        for t in traces {
            set.insert(t);
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::SourceWave;

    #[test]
    fn rc_step_response_be() {
        // R = 1k, C = 1n → τ = 1 µs.
        let mut nl = Netlist::new();
        let s = nl.node("s");
        let o = nl.node("o");
        nl.vsource(s, Netlist::GND, 1.0);
        nl.resistor(s, o, 1e3);
        nl.capacitor_with_ic(o, Netlist::GND, 1e-9, 0.0);
        let mut sim = TransientSim::new(
            &nl,
            TransientOptions {
                dt: 5e-9,
                use_ic: true,
                ..Default::default()
            },
        )
        .unwrap();
        while sim.time() < 1e-6 {
            sim.step(&nl).unwrap();
        }
        let expect = 1.0 - (-1.0f64).exp();
        assert!(
            (sim.voltage(o) - expect).abs() < 2e-3,
            "v = {}",
            sim.voltage(o)
        );
    }

    #[test]
    fn rc_step_response_trapezoidal_more_accurate() {
        let run = |integrator: Integrator| {
            let mut nl = Netlist::new();
            let s = nl.node("s");
            let o = nl.node("o");
            nl.vsource(s, Netlist::GND, 1.0);
            nl.resistor(s, o, 1e3);
            nl.capacitor_with_ic(o, Netlist::GND, 1e-9, 0.0);
            let mut sim = TransientSim::new(
                &nl,
                TransientOptions {
                    dt: 2e-8,
                    integrator,
                    use_ic: true,
                    ..Default::default()
                },
            )
            .unwrap();
            while sim.time() < 1e-6 {
                sim.step(&nl).unwrap();
            }
            sim.voltage(o)
        };
        let expect = 1.0 - (-1.0f64).exp();
        let be_err = (run(Integrator::BackwardEuler) - expect).abs();
        let tr_err = (run(Integrator::Trapezoidal) - expect).abs();
        assert!(tr_err < be_err, "trap {tr_err} should beat BE {be_err}");
        assert!(tr_err < 1e-4);
    }

    #[test]
    fn starts_from_dc_when_no_ic() {
        // Divider holds the cap at 0.5 V; transient must start there.
        let mut nl = Netlist::new();
        let s = nl.node("s");
        let o = nl.node("o");
        nl.vsource(s, Netlist::GND, 1.0);
        nl.resistor(s, o, 1e3);
        nl.resistor(o, Netlist::GND, 1e3);
        nl.capacitor(o, Netlist::GND, 1e-9);
        let mut sim = TransientSim::new(&nl, TransientOptions::default()).unwrap();
        assert!((sim.voltage(o) - 0.5).abs() < 1e-6);
        sim.step(&nl).unwrap();
        assert!((sim.voltage(o) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn switch_discharge_mid_run() {
        // Charge a cap, then close a discharge switch at t = 1 µs.
        let mut nl = Netlist::new();
        let s = nl.node("s");
        let o = nl.node("o");
        nl.vsource(s, Netlist::GND, 1.0);
        nl.resistor(s, o, 1e6); // slow charge
        nl.capacitor_with_ic(o, Netlist::GND, 1e-9, 1.0);
        let sw = nl.switch(o, Netlist::GND, 10.0, 1e12);
        let mut sim = TransientSim::new(
            &nl,
            TransientOptions {
                dt: 1e-9,
                use_ic: true,
                ..Default::default()
            },
        )
        .unwrap();
        while sim.time() < 1e-6 {
            sim.step(&nl).unwrap();
        }
        assert!(sim.voltage(o) > 0.9);
        nl.set_switch(sw, true);
        // τ = 10 Ω · 1 nF = 10 ns; after 200 ns the node is at ground.
        while sim.time() < 1.2e-6 {
            sim.step(&nl).unwrap();
        }
        assert!(sim.voltage(o).abs() < 1e-3, "v = {}", sim.voltage(o));
    }

    #[test]
    fn pulse_source_toggles_output() {
        let mut nl = Netlist::new();
        let s = nl.node("s");
        nl.vsource_wave(
            s,
            Netlist::GND,
            SourceWave::Pulse {
                low: 0.0,
                high: 1.0,
                delay: 1e-7,
                rise: 1e-9,
                fall: 1e-9,
                width: 1e-7,
                period: 0.0,
            },
        );
        nl.resistor(s, Netlist::GND, 1e3);
        let mut sim = TransientSim::new(
            &nl,
            TransientOptions {
                dt: 1e-9,
                ..Default::default()
            },
        )
        .unwrap();
        let traces = sim
            .run_until(&nl, 4e-7, &[("s", nl.find_node("s").unwrap())])
            .unwrap();
        let tr = traces.trace("s").unwrap();
        assert!(tr.sample_at(5e-8) < 0.01);
        assert!(tr.sample_at(1.5e-7) > 0.99);
        assert!(tr.sample_at(3.5e-7) < 0.01);
    }

    #[test]
    fn sc_charge_sharing() {
        // Two equal caps, one at 1 V one at 0 V, connected by a switch:
        // final voltage 0.5 V on both (charge conservation).
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.capacitor_with_ic(a, Netlist::GND, 1e-12, 1.0);
        nl.capacitor_with_ic(b, Netlist::GND, 1e-12, 0.0);
        let sw = nl.switch(a, b, 100.0, 1e15);
        nl.set_switch(sw, true);
        let mut sim = TransientSim::new(
            &nl,
            TransientOptions {
                dt: 1e-12,
                use_ic: true,
                ..Default::default()
            },
        )
        .unwrap();
        while sim.time() < 5e-9 {
            sim.step(&nl).unwrap();
        }
        assert!(
            (sim.voltage(a) - 0.5).abs() < 1e-3,
            "va = {}",
            sim.voltage(a)
        );
        assert!(
            (sim.voltage(b) - 0.5).abs() < 1e-3,
            "vb = {}",
            sim.voltage(b)
        );
    }

    #[test]
    fn invalid_dt_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor(a, Netlist::GND, 1e3);
        assert!(TransientSim::new(
            &nl,
            TransientOptions {
                dt: 0.0,
                ..Default::default()
            }
        )
        .is_err());
        let mut sim = TransientSim::new(&nl, TransientOptions::default()).unwrap();
        assert!(sim.set_dt(-1.0).is_err());
        assert!(sim.set_dt(1e-9).is_ok());
    }
}
