//! # symbist-circuit — analog circuit simulation engine
//!
//! A from-scratch analog circuit simulator purpose-built for the SymBIST
//! reproduction (Pavlidis et al., DATE 2020). It provides the substrate the
//! paper obtained from a commercial SPICE engine inside
//! Tessent®DefectSim: netlist capture, DC operating points, DC sweeps,
//! fixed-step transient analysis with switch-event co-simulation, and a
//! Monte-Carlo mismatch engine — everything the 10-bit SAR ADC model and the
//! defect simulator in the sibling crates need.
//!
//! ## Architecture
//!
//! * [`netlist`] — circuit capture: nodes, R/C, sources, switches, diodes,
//!   level-1 MOSFETs, controlled sources.
//! * `mna` (crate-internal) — Modified Nodal Analysis assembly with a
//!   linear/nonlinear stamp split: linear devices are pre-stamped once per
//!   topology, nonlinear deltas are re-stamped per Newton iteration.
//! * [`sparse`] — KLU-style sparse LU: one-time symbolic analysis
//!   (fill-reducing ordering + static fill-in pattern) per topology, fast
//!   numeric refactorization per solve. The default engine.
//! * [`matrix`] — dense LU with partial pivoting; the fallback path when a
//!   static pivot vanishes and the cross-check oracle in tests.
//! * [`dc`] — Newton–Raphson operating point with gmin and source stepping.
//! * [`transient`] — backward-Euler / trapezoidal integration; the netlist
//!   is borrowed per step so digital controllers can flip switches, which is
//!   how the SAR conversion loop drives the analog core.
//! * [`mc`] — process-variation engine used to calibrate SymBIST's
//!   `δ = k·σ` comparison windows.
//! * [`rng`] — deterministic xoshiro256++; all experiments are reproducible
//!   from a seed.
//! * [`waveform`] — traces with the settle-detection the clocked BIST
//!   checker relies on.
//! * [`topology`] — read-only graph introspection (device adjacency,
//!   terminal degrees, connected components) consumed by the
//!   `symbist-lint` static analyzer.
//!
//! ## Quick start
//!
//! ```
//! use symbist_circuit::netlist::Netlist;
//! use symbist_circuit::dc::DcSolver;
//!
//! // A diode-clamped divider.
//! let mut nl = Netlist::new();
//! let vin = nl.node("in");
//! let out = nl.node("out");
//! nl.vsource(vin, Netlist::GND, 3.3);
//! nl.resistor(vin, out, 4.7e3);
//! nl.diode(out, Netlist::GND, 1e-14, 1.0);
//! let op = DcSolver::new().solve(&nl)?;
//! assert!(op.voltage(out) < 0.9);
//! # Ok::<(), symbist_circuit::error::CircuitError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ac;
pub mod dc;
pub mod error;
pub mod matrix;
pub mod mc;
pub(crate) mod mna;
pub mod netlist;
pub mod parser;
pub mod rng;
pub mod sparse;
pub mod topology;
pub mod transient;
pub mod units;
pub mod waveform;

pub use dc::{set_thread_solve_budget, DcOptions, DcSolver, EngineChoice, Operating, SolveBudget};
pub use error::CircuitError;
pub use netlist::{device_param_issue, Device, DeviceId, MosPolarity, Netlist, NodeId, SourceWave};
pub use rng::Rng;
pub use topology::{DisjointSet, Topology};
pub use transient::{Integrator, TransientOptions, TransientSim};
pub use waveform::{Trace, TraceSet};
