//! Circuit netlist: nodes, devices, and the builder API.
//!
//! A [`Netlist`] is a flat container of [`Device`]s connected between
//! [`NodeId`]s. Node `0` is always ground. The builder methods return the
//! created [`DeviceId`] so that callers (e.g. the defect injector) can later
//! mutate device parameters or switch states.
//!
//! # Examples
//!
//! ```
//! use symbist_circuit::netlist::Netlist;
//! use symbist_circuit::dc::DcSolver;
//!
//! // A 2:1 resistive divider from a 1 V source.
//! let mut nl = Netlist::new();
//! let vin = nl.node("in");
//! let mid = nl.node("mid");
//! nl.vsource(vin, Netlist::GND, 1.0);
//! nl.resistor(vin, mid, 1000.0);
//! nl.resistor(mid, Netlist::GND, 1000.0);
//! let op = DcSolver::new().solve(&nl)?;
//! assert!((op.voltage(mid) - 0.5).abs() < 1e-9);
//! # Ok::<(), symbist_circuit::error::CircuitError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

/// Identifier of a circuit node. Node `0` is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground node.
    pub const GROUND: NodeId = NodeId(0);

    /// Returns the raw index (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// Returns `true` if this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ground() {
            write!(f, "gnd")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// Identifier of a device within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub(crate) usize);

impl DeviceId {
    /// Returns the raw index into the netlist's device list.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Time-dependent source waveform.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceWave {
    /// Constant value.
    Dc(f64),
    /// Periodic pulse: `low` before `delay`, then rising to `high` over
    /// `rise`, staying for `width`, falling over `fall`, period `period`.
    Pulse {
        /// Value before the pulse and after the fall.
        low: f64,
        /// Value at the top of the pulse.
        high: f64,
        /// Time of the first rising edge.
        delay: f64,
        /// Rise time (0 allowed; treated as one solver step).
        rise: f64,
        /// Fall time.
        fall: f64,
        /// Time spent at `high`.
        width: f64,
        /// Repetition period (`0` means single-shot).
        period: f64,
    },
    /// Piece-wise linear: sorted `(time, value)` breakpoints; constant
    /// extrapolation outside the range.
    Pwl(Vec<(f64, f64)>),
    /// Sinusoid `offset + ampl * sin(2π f (t − delay))` for `t ≥ delay`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency in hertz.
        freq: f64,
        /// Start delay in seconds.
        delay: f64,
    },
}

impl SourceWave {
    /// Evaluates the waveform at time `t` (seconds).
    pub fn at(&self, t: f64) -> f64 {
        match self {
            SourceWave::Dc(v) => *v,
            SourceWave::Pulse {
                low,
                high,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *low;
                }
                let mut tp = t - delay;
                if *period > 0.0 {
                    tp %= period;
                }
                let rise = rise.max(1e-15);
                let fall = fall.max(1e-15);
                if tp < rise {
                    low + (high - low) * (tp / rise)
                } else if tp < rise + width {
                    *high
                } else if tp < rise + width + fall {
                    high + (low - high) * ((tp - rise - width) / fall)
                } else {
                    *low
                }
            }
            SourceWave::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                let last = points[points.len() - 1];
                if t >= last.0 {
                    return last.1;
                }
                // Binary search for the surrounding segment.
                let idx = points.partition_point(|(pt, _)| *pt <= t);
                let (t0, v0) = points[idx - 1];
                let (t1, v1) = points[idx];
                if t1 == t0 {
                    v1
                } else {
                    v0 + (v1 - v0) * (t - t0) / (t1 - t0)
                }
            }
            SourceWave::Sine {
                offset,
                ampl,
                freq,
                delay,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset + ampl * (2.0 * std::f64::consts::PI * freq * (t - delay)).sin()
                }
            }
        }
    }
}

/// MOS transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// A circuit element.
///
/// All parameters are in base SI units. Fields are public within the crate so
/// the defect injector and solvers can access them; external construction
/// goes through the [`Netlist`] builder methods, which validate parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum Device {
    /// Linear resistor.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms (> 0).
        ohms: f64,
    },
    /// Linear capacitor.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads (> 0).
        farads: f64,
        /// Optional initial condition `v(a) − v(b)` used by the transient
        /// solver when `use_ic` is requested.
        ic: Option<f64>,
    },
    /// Independent voltage source (adds one MNA branch current).
    VSource {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Waveform.
        wave: SourceWave,
    },
    /// Independent current source (positive current flows p → n through the
    /// source, i.e. the source *draws* from `p` and *feeds* `n`).
    ISource {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Waveform.
        wave: SourceWave,
    },
    /// Logic-controlled switch modeled as a two-state resistor.
    Switch {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// `true` = closed (Ron), `false` = open (Roff).
        closed: bool,
        /// On resistance in ohms.
        r_on: f64,
        /// Off resistance in ohms.
        r_off: f64,
    },
    /// Junction diode, Shockley model with ideality factor.
    Diode {
        /// Anode.
        anode: NodeId,
        /// Cathode.
        cathode: NodeId,
        /// Saturation current in amps.
        i_sat: f64,
        /// Ideality factor (≥ 1).
        ideality: f64,
    },
    /// Level-1 (square-law) MOSFET.
    Mosfet {
        /// Drain.
        d: NodeId,
        /// Gate.
        g: NodeId,
        /// Source.
        s: NodeId,
        /// Polarity.
        polarity: MosPolarity,
        /// Threshold voltage (positive for NMOS, positive magnitude for
        /// PMOS; the model applies the sign).
        vth: f64,
        /// Transconductance factor `k' · W/L` in A/V².
        kp: f64,
        /// Channel-length modulation in 1/V.
        lambda: f64,
    },
    /// Voltage-controlled voltage source (adds one MNA branch current).
    Vcvs {
        /// Positive output terminal.
        p: NodeId,
        /// Negative output terminal.
        n: NodeId,
        /// Positive control terminal.
        cp: NodeId,
        /// Negative control terminal.
        cn: NodeId,
        /// Voltage gain.
        gain: f64,
    },
    /// Voltage-controlled current source.
    Vccs {
        /// Positive output terminal (current flows p → n through source).
        p: NodeId,
        /// Negative output terminal.
        n: NodeId,
        /// Positive control terminal.
        cp: NodeId,
        /// Negative control terminal.
        cn: NodeId,
        /// Transconductance in siemens.
        gm: f64,
    },
}

impl Device {
    /// Returns `true` if the device introduces an MNA branch current.
    pub(crate) fn has_branch(&self) -> bool {
        matches!(self, Device::VSource { .. } | Device::Vcvs { .. })
    }

    /// Returns `true` if the device is nonlinear (requires Newton–Raphson).
    pub(crate) fn is_nonlinear(&self) -> bool {
        matches!(self, Device::Diode { .. } | Device::Mosfet { .. })
    }
}

/// Returns a human-readable description of the first invalid parameter in
/// `device`, or `None` when all parameters are sane.
///
/// This is the single source of truth for "sane device parameters": the
/// [`Netlist`] builder methods consult it in debug builds (via
/// [`Netlist::push`]'s debug assertion) and the `symbist-lint`
/// parameter-sanity rule applies it to finished netlists, so a value the
/// linter would flag can never slip through a builder unnoticed in tests.
pub fn device_param_issue(device: &Device) -> Option<String> {
    fn wave_issue(wave: &SourceWave) -> Option<String> {
        match wave {
            SourceWave::Dc(v) => (!v.is_finite()).then(|| format!("non-finite DC value {v}")),
            SourceWave::Pulse {
                low,
                high,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                for (name, v) in [("low", low), ("high", high), ("delay", delay)] {
                    if !v.is_finite() {
                        return Some(format!("non-finite pulse {name} {v}"));
                    }
                }
                for (name, v) in [
                    ("rise", rise),
                    ("fall", fall),
                    ("width", width),
                    ("period", period),
                ] {
                    if !v.is_finite() || *v < 0.0 {
                        return Some(format!("pulse {name} must be finite and >= 0, got {v}"));
                    }
                }
                None
            }
            SourceWave::Pwl(points) => {
                for (t, v) in points {
                    if !t.is_finite() || !v.is_finite() {
                        return Some(format!("non-finite PWL breakpoint ({t}, {v})"));
                    }
                }
                if points.windows(2).any(|w| w[1].0 < w[0].0) {
                    return Some("PWL breakpoints not sorted by time".into());
                }
                None
            }
            SourceWave::Sine {
                offset,
                ampl,
                freq,
                delay,
            } => {
                for (name, v) in [
                    ("offset", offset),
                    ("ampl", ampl),
                    ("freq", freq),
                    ("delay", delay),
                ] {
                    if !v.is_finite() {
                        return Some(format!("non-finite sine {name} {v}"));
                    }
                }
                None
            }
        }
    }

    match device {
        Device::Resistor { ohms, .. } => (!ohms.is_finite() || *ohms <= 0.0)
            .then(|| format!("resistance must be finite and > 0, got {ohms}")),
        Device::Capacitor { farads, ic, .. } => {
            if !farads.is_finite() || *farads <= 0.0 {
                return Some(format!("capacitance must be finite and > 0, got {farads}"));
            }
            if let Some(ic) = ic {
                if !ic.is_finite() {
                    return Some(format!(
                        "capacitor initial condition must be finite, got {ic}"
                    ));
                }
            }
            None
        }
        Device::VSource { wave, .. } | Device::ISource { wave, .. } => wave_issue(wave),
        Device::Switch { r_on, r_off, .. } => {
            if !r_on.is_finite() || *r_on <= 0.0 {
                return Some(format!("switch r_on must be finite and > 0, got {r_on}"));
            }
            if !r_off.is_finite() || *r_off <= 0.0 {
                return Some(format!("switch r_off must be finite and > 0, got {r_off}"));
            }
            if r_on >= r_off {
                return Some(format!(
                    "switch r_on must be smaller than r_off, got r_on={r_on} r_off={r_off}"
                ));
            }
            None
        }
        Device::Diode {
            i_sat, ideality, ..
        } => {
            if !i_sat.is_finite() || *i_sat <= 0.0 {
                return Some(format!("diode i_sat must be finite and > 0, got {i_sat}"));
            }
            if !ideality.is_finite() || *ideality < 1.0 {
                return Some(format!(
                    "diode ideality must be finite and >= 1, got {ideality}"
                ));
            }
            None
        }
        Device::Mosfet {
            vth, kp, lambda, ..
        } => {
            if !vth.is_finite() || *vth <= 0.0 {
                return Some(format!(
                    "mosfet vth magnitude must be finite and > 0, got {vth}"
                ));
            }
            if !kp.is_finite() || *kp <= 0.0 {
                return Some(format!("mosfet kp must be finite and > 0, got {kp}"));
            }
            if !lambda.is_finite() || *lambda < 0.0 {
                return Some(format!(
                    "mosfet lambda must be finite and >= 0, got {lambda}"
                ));
            }
            None
        }
        Device::Vcvs { gain, .. } => {
            (!gain.is_finite()).then(|| format!("vcvs gain must be finite, got {gain}"))
        }
        Device::Vccs { gm, .. } => {
            (!gm.is_finite()).then(|| format!("vccs gm must be finite, got {gm}"))
        }
    }
}

/// A flat circuit description.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    devices: Vec<Device>,
    /// Number of nodes including ground.
    node_count: usize,
    names: HashMap<String, NodeId>,
}

impl Netlist {
    /// The ground node.
    pub const GND: NodeId = NodeId(0);

    /// Creates an empty netlist containing only the ground node.
    pub fn new() -> Self {
        Self {
            devices: Vec::new(),
            node_count: 1,
            names: HashMap::new(),
        }
    }

    /// Creates a fresh unnamed node.
    pub fn fresh_node(&mut self) -> NodeId {
        let id = NodeId(self.node_count);
        self.node_count += 1;
        id
    }

    /// Returns the node with the given name, creating it if needed.
    ///
    /// The name `"gnd"` (case-insensitive) and `"0"` always map to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name.eq_ignore_ascii_case("gnd") || name == "0" {
            return Self::GND;
        }
        if let Some(&id) = self.names.get(name) {
            return id;
        }
        let id = self.fresh_node();
        self.names.insert(name.to_string(), id);
        id
    }

    /// Looks up a named node without creating it.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        if name.eq_ignore_ascii_case("gnd") || name == "0" {
            return Some(Self::GND);
        }
        self.names.get(name).copied()
    }

    /// Total number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Iterates over every node including ground.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count).map(NodeId)
    }

    /// The name of a node, if it was created through [`Netlist::node`].
    pub fn node_name(&self, node: NodeId) -> Option<&str> {
        self.names
            .iter()
            .find(|(_, n)| **n == node)
            .map(|(s, _)| s.as_str())
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Immutable access to a device.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0]
    }

    /// Mutable access to a device (used by the defect injector).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn device_mut(&mut self, id: DeviceId) -> &mut Device {
        &mut self.devices[id.0]
    }

    /// Iterates over `(DeviceId, &Device)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, &Device)> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, d)| (DeviceId(i), d))
    }

    fn push(&mut self, d: Device) -> DeviceId {
        // Debug-time mirror of the `symbist-lint` parameter-sanity rule:
        // anything the linter would flag as a bad parameter is a builder
        // bug, caught at construction in test/debug builds.
        #[cfg(debug_assertions)]
        if let Some(issue) = device_param_issue(&d) {
            panic!("invalid device parameters: {issue}");
        }
        let id = DeviceId(self.devices.len());
        self.devices.push(d);
        id
    }

    fn check_node(&self, n: NodeId) {
        assert!(
            n.0 < self.node_count,
            "node {n} does not exist in this netlist"
        );
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not strictly positive and finite, or a node is
    /// unknown.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> DeviceId {
        self.check_node(a);
        self.check_node(b);
        assert!(
            ohms.is_finite() && ohms > 0.0,
            "resistance must be > 0, got {ohms}"
        );
        self.push(Device::Resistor { a, b, ohms })
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not strictly positive and finite.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> DeviceId {
        self.check_node(a);
        self.check_node(b);
        assert!(
            farads.is_finite() && farads > 0.0,
            "capacitance must be > 0, got {farads}"
        );
        self.push(Device::Capacitor {
            a,
            b,
            farads,
            ic: None,
        })
    }

    /// Adds a capacitor with an initial condition `v(a) − v(b)`.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not strictly positive and finite, or (in
    /// debug builds) if `ic` is not finite.
    pub fn capacitor_with_ic(&mut self, a: NodeId, b: NodeId, farads: f64, ic: f64) -> DeviceId {
        self.check_node(a);
        self.check_node(b);
        assert!(
            farads.is_finite() && farads > 0.0,
            "capacitance must be > 0, got {farads}"
        );
        self.push(Device::Capacitor {
            a,
            b,
            farads,
            ic: Some(ic),
        })
    }

    /// Adds a DC voltage source.
    pub fn vsource(&mut self, p: NodeId, n: NodeId, volts: f64) -> DeviceId {
        self.vsource_wave(p, n, SourceWave::Dc(volts))
    }

    /// Adds a voltage source with an arbitrary waveform.
    pub fn vsource_wave(&mut self, p: NodeId, n: NodeId, wave: SourceWave) -> DeviceId {
        self.check_node(p);
        self.check_node(n);
        self.push(Device::VSource { p, n, wave })
    }

    /// Adds a DC current source (positive current p → n through the source).
    pub fn isource(&mut self, p: NodeId, n: NodeId, amps: f64) -> DeviceId {
        self.isource_wave(p, n, SourceWave::Dc(amps))
    }

    /// Adds a current source with an arbitrary waveform.
    pub fn isource_wave(&mut self, p: NodeId, n: NodeId, wave: SourceWave) -> DeviceId {
        self.check_node(p);
        self.check_node(n);
        self.push(Device::ISource { p, n, wave })
    }

    /// Adds a logic-controlled switch (initially open).
    ///
    /// # Panics
    ///
    /// Panics if `r_on` or `r_off` is not strictly positive, or if
    /// `r_on >= r_off`.
    pub fn switch(&mut self, a: NodeId, b: NodeId, r_on: f64, r_off: f64) -> DeviceId {
        self.check_node(a);
        self.check_node(b);
        assert!(r_on.is_finite() && r_on > 0.0, "r_on must be > 0");
        assert!(r_off.is_finite() && r_off > 0.0, "r_off must be > 0");
        assert!(r_on < r_off, "r_on must be smaller than r_off");
        self.push(Device::Switch {
            a,
            b,
            closed: false,
            r_on,
            r_off,
        })
    }

    /// Sets a switch state.
    ///
    /// # Panics
    ///
    /// Panics if the device is not a switch.
    pub fn set_switch(&mut self, id: DeviceId, closed: bool) {
        match &mut self.devices[id.0] {
            Device::Switch { closed: c, .. } => *c = closed,
            other => panic!("device {id:?} is not a switch: {other:?}"),
        }
    }

    /// Returns a switch state.
    ///
    /// # Panics
    ///
    /// Panics if the device is not a switch.
    pub fn switch_state(&self, id: DeviceId) -> bool {
        match &self.devices[id.0] {
            Device::Switch { closed, .. } => *closed,
            other => panic!("device {id:?} is not a switch: {other:?}"),
        }
    }

    /// Adds a diode.
    ///
    /// # Panics
    ///
    /// Panics if `i_sat <= 0` or `ideality < 1`.
    pub fn diode(&mut self, anode: NodeId, cathode: NodeId, i_sat: f64, ideality: f64) -> DeviceId {
        self.check_node(anode);
        self.check_node(cathode);
        assert!(i_sat.is_finite() && i_sat > 0.0, "i_sat must be > 0");
        assert!(
            ideality.is_finite() && ideality >= 1.0,
            "ideality must be >= 1"
        );
        self.push(Device::Diode {
            anode,
            cathode,
            i_sat,
            ideality,
        })
    }

    /// Adds a level-1 MOSFET.
    ///
    /// # Panics
    ///
    /// Panics if `kp <= 0`, `vth <= 0` (magnitude), or `lambda < 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn mosfet(
        &mut self,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        polarity: MosPolarity,
        vth: f64,
        kp: f64,
        lambda: f64,
    ) -> DeviceId {
        self.check_node(d);
        self.check_node(g);
        self.check_node(s);
        assert!(vth.is_finite() && vth > 0.0, "vth magnitude must be > 0");
        assert!(kp.is_finite() && kp > 0.0, "kp must be > 0");
        assert!(lambda.is_finite() && lambda >= 0.0, "lambda must be >= 0");
        self.push(Device::Mosfet {
            d,
            g,
            s,
            polarity,
            vth,
            kp,
            lambda,
        })
    }

    /// Adds a voltage-controlled voltage source.
    pub fn vcvs(&mut self, p: NodeId, n: NodeId, cp: NodeId, cn: NodeId, gain: f64) -> DeviceId {
        for node in [p, n, cp, cn] {
            self.check_node(node);
        }
        assert!(gain.is_finite(), "gain must be finite");
        self.push(Device::Vcvs { p, n, cp, cn, gain })
    }

    /// Adds a voltage-controlled current source.
    pub fn vccs(&mut self, p: NodeId, n: NodeId, cp: NodeId, cn: NodeId, gm: f64) -> DeviceId {
        for node in [p, n, cp, cn] {
            self.check_node(node);
        }
        assert!(gm.is_finite(), "gm must be finite");
        self.push(Device::Vccs { p, n, cp, cn, gm })
    }

    /// Number of MNA unknowns: non-ground nodes plus branch currents.
    pub fn mna_dim(&self) -> usize {
        let branches = self.devices.iter().filter(|d| d.has_branch()).count();
        (self.node_count - 1) + branches
    }

    /// Returns `true` if any device is nonlinear.
    pub(crate) fn has_nonlinear(&self) -> bool {
        self.devices.iter().any(|d| d.is_nonlinear())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_aliases() {
        let mut nl = Netlist::new();
        assert_eq!(nl.node("gnd"), Netlist::GND);
        assert_eq!(nl.node("GND"), Netlist::GND);
        assert_eq!(nl.node("0"), Netlist::GND);
    }

    #[test]
    fn named_nodes_are_stable() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        assert_ne!(a, b);
        assert_eq!(nl.node("a"), a);
        assert_eq!(nl.find_node("a"), Some(a));
        assert_eq!(nl.find_node("zzz"), None);
    }

    #[test]
    fn device_ids_sequential() {
        let mut nl = Netlist::new();
        let n = nl.fresh_node();
        let r1 = nl.resistor(n, Netlist::GND, 1.0);
        let r2 = nl.resistor(n, Netlist::GND, 2.0);
        assert_eq!(r1.index(), 0);
        assert_eq!(r2.index(), 1);
        assert_eq!(nl.device_count(), 2);
    }

    #[test]
    fn switch_toggles() {
        let mut nl = Netlist::new();
        let n = nl.fresh_node();
        let sw = nl.switch(n, Netlist::GND, 100.0, 1e12);
        assert!(!nl.switch_state(sw));
        nl.set_switch(sw, true);
        assert!(nl.switch_state(sw));
    }

    #[test]
    fn mna_dim_counts_branches() {
        let mut nl = Netlist::new();
        let a = nl.fresh_node();
        let b = nl.fresh_node();
        nl.vsource(a, Netlist::GND, 1.0);
        nl.resistor(a, b, 10.0);
        nl.vcvs(b, Netlist::GND, a, Netlist::GND, 2.0);
        // 2 nodes + 2 branch currents.
        assert_eq!(nl.mna_dim(), 4);
    }

    #[test]
    #[should_panic]
    fn negative_resistance_rejected() {
        let mut nl = Netlist::new();
        let n = nl.fresh_node();
        nl.resistor(n, Netlist::GND, -5.0);
    }

    #[test]
    #[should_panic]
    fn unknown_node_rejected() {
        let mut nl = Netlist::new();
        // NodeId forged beyond the netlist's node count.
        nl.resistor(NodeId(42), Netlist::GND, 5.0);
    }

    #[test]
    #[should_panic]
    fn non_finite_ic_rejected() {
        let mut nl = Netlist::new();
        let n = nl.fresh_node();
        nl.capacitor_with_ic(n, Netlist::GND, 1e-12, f64::NAN);
    }

    #[test]
    #[should_panic]
    fn non_finite_vsource_rejected() {
        let mut nl = Netlist::new();
        let n = nl.fresh_node();
        nl.vsource(n, Netlist::GND, f64::INFINITY);
    }

    #[test]
    fn device_param_issue_matches_builders() {
        // Bad parameters the builders reject are exactly those the
        // shared validator reports.
        let n = NodeId(0);
        let bad = [
            Device::Resistor {
                a: n,
                b: n,
                ohms: 0.0,
            },
            Device::Capacitor {
                a: n,
                b: n,
                farads: -1e-12,
                ic: None,
            },
            Device::Capacitor {
                a: n,
                b: n,
                farads: 1e-12,
                ic: Some(f64::NAN),
            },
            Device::Switch {
                a: n,
                b: n,
                closed: false,
                r_on: 10.0,
                r_off: 10.0,
            },
            Device::VSource {
                p: n,
                n,
                wave: SourceWave::Dc(f64::NAN),
            },
            Device::VSource {
                p: n,
                n,
                wave: SourceWave::Pwl(vec![(1.0, 0.0), (0.0, 1.0)]),
            },
            Device::Diode {
                anode: n,
                cathode: n,
                i_sat: 1e-15,
                ideality: 0.5,
            },
            Device::Mosfet {
                d: n,
                g: n,
                s: n,
                polarity: MosPolarity::Nmos,
                vth: 0.4,
                kp: 0.0,
                lambda: 0.0,
            },
            Device::Vcvs {
                p: n,
                n,
                cp: n,
                cn: n,
                gain: f64::INFINITY,
            },
        ];
        for device in &bad {
            assert!(
                device_param_issue(device).is_some(),
                "expected an issue for {device:?}"
            );
        }
        let good = Device::Resistor {
            a: n,
            b: n,
            ohms: 1e3,
        };
        assert_eq!(device_param_issue(&good), None);
    }

    #[test]
    fn pulse_wave_shape() {
        let w = SourceWave::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 1e-9,
            rise: 1e-10,
            fall: 1e-10,
            width: 1e-9,
            period: 4e-9,
        };
        assert_eq!(w.at(0.0), 0.0);
        assert!((w.at(1.05e-9) - 0.5).abs() < 1e-9);
        assert_eq!(w.at(1.5e-9), 1.0);
        assert_eq!(w.at(3e-9), 0.0);
        // Periodic repeat.
        assert_eq!(w.at(5.5e-9), 1.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = SourceWave::Pwl(vec![(0.0, 0.0), (1.0, 2.0), (2.0, 2.0)]);
        assert_eq!(w.at(-1.0), 0.0);
        assert_eq!(w.at(0.5), 1.0);
        assert_eq!(w.at(1.5), 2.0);
        assert_eq!(w.at(5.0), 2.0);
    }

    #[test]
    fn sine_wave() {
        let w = SourceWave::Sine {
            offset: 1.0,
            ampl: 0.5,
            freq: 1.0,
            delay: 0.0,
        };
        assert!((w.at(0.25) - 1.5).abs() < 1e-12);
        assert!((w.at(0.75) - 0.5).abs() < 1e-12);
    }
}
