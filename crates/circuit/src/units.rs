//! Lightweight dimensional newtypes for the public API.
//!
//! Internally the solver works in raw `f64` SI units (volts, amps, ohms,
//! farads, seconds, hertz); these newtypes exist so that public constructor
//! signatures cannot be called with swapped arguments (C-NEWTYPE). They are
//! deliberately thin: `.0` access and `From<f64>`/`value()` both work.
//!
//! # Examples
//!
//! ```
//! use symbist_circuit::units::{Resistance, Capacitance};
//!
//! let r = Resistance::kilo(10.0);
//! let c = Capacitance::pico(1.0);
//! let tau = r.value() * c.value();
//! assert!((tau - 1e-8).abs() < 1e-20);
//! ```

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $sym:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Returns the raw value in base SI units.
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl From<f64> for $name {
            fn from(v: f64) -> Self {
                Self(v)
            }
        }

        impl From<$name> for f64 {
            fn from(v: $name) -> f64 {
                v.0
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", self.0, $sym)
            }
        }
    };
}

unit!(
    /// A voltage in volts.
    Voltage,
    " V"
);
unit!(
    /// A current in amperes.
    Current,
    " A"
);
unit!(
    /// A resistance in ohms.
    Resistance,
    " Ω"
);
unit!(
    /// A capacitance in farads.
    Capacitance,
    " F"
);
unit!(
    /// A time in seconds.
    Time,
    " s"
);
unit!(
    /// A frequency in hertz.
    Frequency,
    " Hz"
);

impl Voltage {
    /// Constructs a voltage in millivolts.
    pub fn milli(v: f64) -> Self {
        Self(v * 1e-3)
    }
    /// Constructs a voltage in microvolts.
    pub fn micro(v: f64) -> Self {
        Self(v * 1e-6)
    }
}

impl Current {
    /// Constructs a current in milliamps.
    pub fn milli(v: f64) -> Self {
        Self(v * 1e-3)
    }
    /// Constructs a current in microamps.
    pub fn micro(v: f64) -> Self {
        Self(v * 1e-6)
    }
    /// Constructs a current in nanoamps.
    pub fn nano(v: f64) -> Self {
        Self(v * 1e-9)
    }
}

impl Resistance {
    /// Constructs a resistance in kilohms.
    pub fn kilo(v: f64) -> Self {
        Self(v * 1e3)
    }
    /// Constructs a resistance in megohms.
    pub fn mega(v: f64) -> Self {
        Self(v * 1e6)
    }
    /// Returns the conductance `1/R` in siemens.
    ///
    /// # Panics
    ///
    /// Panics if the resistance is zero.
    pub fn conductance(self) -> f64 {
        assert!(self.0 != 0.0, "zero resistance has no finite conductance");
        1.0 / self.0
    }
}

impl Capacitance {
    /// Constructs a capacitance in picofarads.
    pub fn pico(v: f64) -> Self {
        Self(v * 1e-12)
    }
    /// Constructs a capacitance in femtofarads.
    pub fn femto(v: f64) -> Self {
        Self(v * 1e-15)
    }
    /// Constructs a capacitance in nanofarads.
    pub fn nano(v: f64) -> Self {
        Self(v * 1e-9)
    }
}

impl Time {
    /// Constructs a time in nanoseconds.
    pub fn nano(v: f64) -> Self {
        Self(v * 1e-9)
    }
    /// Constructs a time in microseconds.
    pub fn micro(v: f64) -> Self {
        Self(v * 1e-6)
    }
    /// Constructs a time in picoseconds.
    pub fn pico(v: f64) -> Self {
        Self(v * 1e-12)
    }
}

impl Frequency {
    /// Constructs a frequency in megahertz.
    pub fn mega(v: f64) -> Self {
        Self(v * 1e6)
    }
    /// Constructs a frequency in gigahertz.
    pub fn giga(v: f64) -> Self {
        Self(v * 1e9)
    }
    /// Returns the period `1/f`.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    pub fn period(self) -> Time {
        assert!(self.0 != 0.0, "zero frequency has no finite period");
        Time(1.0 / self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale() {
        assert_eq!(Voltage::milli(1.0).value(), 1e-3);
        assert_eq!(Resistance::kilo(2.0).value(), 2e3);
        assert_eq!(Capacitance::pico(3.0).value(), 3e-12);
        assert_eq!(Time::nano(4.0).value(), 4e-9);
        assert_eq!(Frequency::mega(156.0).value(), 156e6);
        assert!((Current::micro(5.0).value() - 5e-6).abs() < 1e-18);
    }

    #[test]
    fn arithmetic() {
        let v = Voltage(1.0) + Voltage(0.5) - Voltage(0.25);
        assert_eq!(v.value(), 1.25);
        assert_eq!((-v).value(), -1.25);
        assert_eq!((v * 2.0).value(), 2.5);
        assert_eq!((v / 2.0).value(), 0.625);
    }

    #[test]
    fn period_and_conductance() {
        assert!((Frequency::mega(100.0).period().value() - 1e-8).abs() < 1e-20);
        assert!((Resistance::kilo(1.0).conductance() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn display_has_symbol() {
        assert_eq!(format!("{}", Voltage(1.2)), "1.2 V");
    }

    #[test]
    #[should_panic]
    fn zero_frequency_period_panics() {
        Frequency(0.0).period();
    }
}
