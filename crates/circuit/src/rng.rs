//! Deterministic pseudo-random number generation and sampling distributions.
//!
//! Every stochastic experiment in the reproduction (Monte-Carlo mismatch,
//! likelihood-weighted defect sampling) must be bit-reproducible across runs
//! and platforms, so this module implements its own small, well-known
//! generator — xoshiro256++ seeded through SplitMix64 — instead of depending
//! on an external RNG crate whose output could change between versions.
//!
//! # Examples
//!
//! ```
//! use symbist_circuit::rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let u = rng.next_f64();
//! assert!((0.0..1.0).contains(&u));
//! // Reproducible: the same seed yields the same stream.
//! let mut rng2 = Rng::seed_from_u64(42);
//! assert_eq!(u, rng2.next_f64());
//! ```

/// SplitMix64 stream used to expand a 64-bit seed into xoshiro state.
///
/// This is the seeding procedure recommended by the xoshiro authors; it
/// guarantees that even low-entropy seeds (0, 1, 2, ...) produce
/// well-distributed initial states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a new SplitMix64 stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ pseudo-random generator.
///
/// Period 2^256 − 1, passes BigCrush, and is the generator used by several
/// language runtimes. All randomness in the workspace flows through this
/// type so that experiments are reproducible given a seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second value from the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self {
            s,
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator.
    ///
    /// Used to hand one deterministic stream to each parallel worker in the
    /// defect campaign so that the result does not depend on thread
    /// scheduling.
    pub fn fork(&mut self, stream: u64) -> Rng {
        // Mix the stream index into fresh state drawn from this generator.
        let mut sm = SplitMix64::new(self.next_u64() ^ stream.wrapping_mul(0xA076_1D64_78BD_642F));
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
            gauss_spare: None,
        }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid uniform bounds"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's rejection method to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift with rejection.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a standard normal sample (mean 0, variance 1) via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Box–Muller in polar (Marsaglia) form: no trig, no tails clipped.
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.gauss_spare = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Returns a normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn normal(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(sigma.is_finite() && sigma >= 0.0, "sigma must be >= 0");
        mean + sigma * self.standard_normal()
    }

    /// Returns a log-normal sample: `exp(N(mu, sigma))`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Draws `k` distinct indices from `0..n` with probability proportional
    /// to `weights`, without replacement.
    ///
    /// This is the primitive behind Likelihood-Weighted Random Sampling
    /// (LWRS) in the defect simulator. Uses the exponential-sort trick
    /// (weighted reservoir sampling à la Efraimidis–Spirakis).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != n`, if any weight is negative/non-finite,
    /// or if `k` exceeds the number of strictly positive weights.
    pub fn weighted_sample_without_replacement(&mut self, weights: &[f64], k: usize) -> Vec<usize> {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let positive = weights.iter().filter(|w| **w > 0.0).count();
        assert!(
            k <= positive,
            "cannot draw {k} items from {positive} positive-weight items"
        );
        // key_i = u_i^(1/w_i); take the k largest keys. Equivalent to
        // sequential weighted draws without replacement.
        let mut keyed: Vec<(f64, usize)> = weights
            .iter()
            .enumerate()
            .filter(|(_, w)| **w > 0.0)
            .map(|(i, w)| {
                let u: f64 = self.next_f64().max(f64::MIN_POSITIVE);
                (u.ln() / w, i)
            })
            .collect();
        // Larger ln(u)/w (closer to zero) means larger u^(1/w); sort desc.
        keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
        keyed.truncate(k);
        keyed.into_iter().map(|(_, i)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_values() {
        // Reference values for seed 0 from the published SplitMix64 code.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn reproducible_streams() {
        let mut a = Rng::seed_from_u64(123);
        let mut b = Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn below_unbiased_small_n() {
        let mut rng = Rng::seed_from_u64(99);
        let mut counts = [0usize; 5];
        let n = 50_000;
        for _ in 0..n {
            counts[rng.below(5) as usize] += 1;
        }
        for c in counts {
            let expected = n as f64 / 5.0;
            assert!((c as f64 - expected).abs() < 5.0 * expected.sqrt());
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(1.5, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 1.5).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn log_normal_positive() {
        let mut rng = Rng::seed_from_u64(13);
        for _ in 0..1000 {
            assert!(rng.log_normal(0.0, 0.5) > 0.0);
        }
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = Rng::seed_from_u64(17);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(19);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_sample_distinct_and_sized() {
        let mut rng = Rng::seed_from_u64(23);
        let weights = vec![1.0, 2.0, 3.0, 4.0, 5.0, 0.0];
        let picked = rng.weighted_sample_without_replacement(&weights, 4);
        assert_eq!(picked.len(), 4);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4);
        // Zero-weight item (index 5) must never be drawn.
        assert!(!picked.contains(&5));
    }

    #[test]
    fn weighted_sample_respects_weights() {
        // Item 1 has 9x the weight of item 0; when drawing 1 of 2, it must
        // be selected roughly 90% of the time.
        let mut rng = Rng::seed_from_u64(29);
        let weights = vec![1.0, 9.0];
        let trials = 20_000;
        let ones = (0..trials)
            .filter(|_| rng.weighted_sample_without_replacement(&weights, 1)[0] == 1)
            .count();
        let rate = ones as f64 / trials as f64;
        assert!((rate - 0.9).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = Rng::seed_from_u64(31);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        Rng::seed_from_u64(0).below(0);
    }

    #[test]
    #[should_panic]
    fn negative_sigma_panics() {
        Rng::seed_from_u64(0).normal(0.0, -1.0);
    }
}
