//! SPICE-style netlist parser.
//!
//! Accepts the classic card format so circuits can be described in text
//! files and fed straight to the DC/AC/transient solvers:
//!
//! ```text
//! * RC low-pass driven by a pulse
//! VIN in 0 PULSE(0 1.2 0 1n 1n 10n 20n)
//! R1  in out 10k
//! C1  out 0 1p
//! .tran 0.1n 50n
//! .end
//! ```
//!
//! Supported cards: `V` (DC / SIN / PULSE), `I` (DC), `R`, `C` (with
//! `IC=`), `D`, `M` (level-1, `NMOS`/`PMOS` with `VTH= KP= LAMBDA=`),
//! `S` (switch, `ON`/`OFF` with `RON= ROFF=`), `E` (VCVS), `G` (VCCS);
//! directives `.tran`, `.ac dec`, `.op`, `.end`; `*`/`;` comments and `+`
//! continuations. Values take the usual suffixes (`f p n u m k meg g t`).
//!
//! # Examples
//!
//! ```
//! use symbist_circuit::parser::parse_netlist;
//! use symbist_circuit::dc::DcSolver;
//!
//! let parsed = parse_netlist("
//!     V1 top 0 2.0
//!     R1 top mid 1k
//!     R2 mid 0 1k
//! ")?;
//! let op = DcSolver::new().solve(&parsed.netlist).unwrap();
//! let mid = parsed.netlist.find_node("mid").unwrap();
//! assert!((op.voltage(mid) - 1.0).abs() < 1e-9);
//! # Ok::<(), symbist_circuit::parser::ParseError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::netlist::{DeviceId, MosPolarity, Netlist, SourceWave};

/// A parse failure with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "netlist line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Analysis directives found in the deck.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Directives {
    /// `.tran step stop`.
    pub tran: Option<(f64, f64)>,
    /// `.ac dec points fstart fstop`.
    pub ac: Option<(usize, f64, f64)>,
    /// `.op` present.
    pub op: bool,
}

/// A parsed deck.
#[derive(Debug, Clone)]
pub struct ParsedNetlist {
    /// The circuit.
    pub netlist: Netlist,
    /// Device ids by card name (upper-cased).
    pub devices: HashMap<String, DeviceId>,
    /// Analysis directives.
    pub directives: Directives,
}

/// Parses an engineering-notation value (`10k`, `1.5meg`, `2p`, `0.5`).
///
/// Only finite numeric literals are values: `nan`, `inf`, overflowing
/// exponents (`1e999`), and bare suffixes with no mantissa (`k`) are all
/// errors — netlists arrive over the wire, and a NaN that parses here
/// would only blow up deep inside a solver.
///
/// # Errors
///
/// Returns a message when the token is not a finite number.
pub fn parse_value(token: &str) -> Result<f64, String> {
    let t = token.trim().to_ascii_lowercase();
    // Longest suffix first: "meg" before "m".
    const SUFFIXES: [(&str, f64); 9] = [
        ("meg", 1e6),
        ("f", 1e-15),
        ("p", 1e-12),
        ("n", 1e-9),
        ("u", 1e-6),
        ("m", 1e-3),
        ("k", 1e3),
        ("g", 1e9),
        ("t", 1e12),
    ];
    for (suffix, mult) in SUFFIXES {
        if let Some(num) = t.strip_suffix(suffix) {
            // Guard against stripping the exponent of "1e-3" ("g"/"t" can't
            // collide, but a bare "1e" + "g" could; require a parseable stem).
            if let Some(v) = parse_plain(num) {
                return Ok(v * mult);
            }
        }
    }
    parse_plain(&t).ok_or_else(|| format!("cannot parse value '{token}'"))
}

/// `f64::from_str` minus its non-numeric acceptances: `from_str` happily
/// parses `nan`, `inf`, and `infinity`, none of which is a circuit value.
/// Requiring a digit also makes a suffix-only token (`k`, and the empty
/// stem it strips to) fail here instead of half-matching.
fn parse_plain(s: &str) -> Option<f64> {
    if !s.bytes().any(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse::<f64>().ok().filter(|v| v.is_finite())
}

fn kv(token: &str) -> Option<(&str, &str)> {
    token.split_once('=')
}

struct LineParser<'a> {
    netlist: Netlist,
    devices: HashMap<String, DeviceId>,
    directives: Directives,
    line_no: usize,
    line: &'a str,
}

impl LineParser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line_no,
            message: message.into(),
        }
    }

    fn value(&self, token: &str) -> Result<f64, ParseError> {
        parse_value(token).map_err(|m| self.err(m))
    }

    /// The [`Netlist`] constructors treat out-of-range device parameters
    /// as caller bugs and panic; a netlist from the wire must surface
    /// them as [`ParseError`]s instead, so every card checks its values
    /// here first. (`parse_value` already guarantees finiteness.)
    fn positive(&self, v: f64, what: &str) -> Result<f64, ParseError> {
        if v > 0.0 {
            Ok(v)
        } else {
            Err(self.err(format!("{what} must be > 0, got {v}")))
        }
    }

    fn node(&mut self, name: &str) -> crate::netlist::NodeId {
        self.netlist.node(name)
    }

    fn param(&self, tokens: &[&str], key: &str, default: Option<f64>) -> Result<f64, ParseError> {
        for t in tokens {
            if let Some((k, v)) = kv(t) {
                if k.eq_ignore_ascii_case(key) {
                    return self.value(v);
                }
            }
        }
        default.ok_or_else(|| self.err(format!("missing {key}= parameter")))
    }

    fn source_wave(&self, tokens: &[&str]) -> Result<SourceWave, ParseError> {
        // Re-join so `SIN(0.6 0.3 1k)` survives whitespace splitting.
        let joined = tokens.join(" ");
        let upper = joined.to_ascii_uppercase();
        let args_of = |prefix: &str| -> Option<Vec<String>> {
            let start = upper.find(prefix)?;
            let open = joined[start..].find('(')? + start;
            let close = joined[open..].find(')')? + open;
            Some(
                joined[open + 1..close]
                    .split_whitespace()
                    .map(str::to_string)
                    .collect(),
            )
        };
        if upper.contains("SIN") {
            let args = args_of("SIN").ok_or_else(|| self.err("malformed SIN(...)"))?;
            if args.len() < 3 {
                return Err(self.err("SIN needs (offset ampl freq [delay])"));
            }
            return Ok(SourceWave::Sine {
                offset: self.value(&args[0])?,
                ampl: self.value(&args[1])?,
                freq: self.value(&args[2])?,
                delay: args
                    .get(3)
                    .map(|a| self.value(a))
                    .transpose()?
                    .unwrap_or(0.0),
            });
        }
        if upper.contains("PULSE") {
            let args = args_of("PULSE").ok_or_else(|| self.err("malformed PULSE(...)"))?;
            if args.len() < 7 {
                return Err(self.err("PULSE needs (low high delay rise fall width period)"));
            }
            let timing = |arg: &str, what: &str| -> Result<f64, ParseError> {
                let v = self.value(arg)?;
                if v < 0.0 {
                    return Err(self.err(format!("pulse {what} must be >= 0, got {v}")));
                }
                Ok(v)
            };
            return Ok(SourceWave::Pulse {
                low: self.value(&args[0])?,
                high: self.value(&args[1])?,
                delay: self.value(&args[2])?,
                rise: timing(&args[3], "rise")?,
                fall: timing(&args[4], "fall")?,
                width: timing(&args[5], "width")?,
                period: timing(&args[6], "period")?,
            });
        }
        // DC: `DC 1.5` or a bare value.
        let dc_token = if tokens[0].eq_ignore_ascii_case("dc") {
            tokens
                .get(1)
                .copied()
                .ok_or_else(|| self.err("DC needs a value"))?
        } else {
            tokens[0]
        };
        Ok(SourceWave::Dc(self.value(dc_token)?))
    }

    fn card(&mut self, tokens: &[&str]) -> Result<(), ParseError> {
        let name = tokens[0].to_ascii_uppercase();
        let Some(kind) = name.chars().next() else {
            return Err(self.err("empty device name"));
        };
        let id = match kind {
            'R' => {
                if tokens.len() < 4 {
                    return Err(self.err("R needs: name n1 n2 value"));
                }
                let (a, b) = (self.node(tokens[1]), self.node(tokens[2]));
                let ohms = self.positive(self.value(tokens[3])?, "resistance")?;
                self.netlist.resistor(a, b, ohms)
            }
            'C' => {
                if tokens.len() < 4 {
                    return Err(self.err("C needs: name n1 n2 value [IC=v]"));
                }
                let (a, b) = (self.node(tokens[1]), self.node(tokens[2]));
                let farads = self.positive(self.value(tokens[3])?, "capacitance")?;
                match self.param(&tokens[4..], "IC", Some(f64::NAN)) {
                    Ok(ic) if !ic.is_nan() => self.netlist.capacitor_with_ic(a, b, farads, ic),
                    _ => self.netlist.capacitor(a, b, farads),
                }
            }
            'V' => {
                if tokens.len() < 4 {
                    return Err(self.err("V needs: name p n value/waveform"));
                }
                let (p, n) = (self.node(tokens[1]), self.node(tokens[2]));
                let wave = self.source_wave(&tokens[3..])?;
                self.netlist.vsource_wave(p, n, wave)
            }
            'I' => {
                if tokens.len() < 4 {
                    return Err(self.err("I needs: name p n value"));
                }
                let (p, n) = (self.node(tokens[1]), self.node(tokens[2]));
                let wave = self.source_wave(&tokens[3..])?;
                self.netlist.isource_wave(p, n, wave)
            }
            'D' => {
                if tokens.len() < 3 {
                    return Err(self.err("D needs: name anode cathode [IS= N=]"));
                }
                let (a, k) = (self.node(tokens[1]), self.node(tokens[2]));
                let i_sat = self.positive(self.param(&tokens[3..], "IS", Some(1e-14))?, "IS")?;
                let ideality = self.param(&tokens[3..], "N", Some(1.0))?;
                if ideality < 1.0 {
                    return Err(self.err(format!("diode N must be >= 1, got {ideality}")));
                }
                self.netlist.diode(a, k, i_sat, ideality)
            }
            'M' => {
                if tokens.len() < 5 {
                    return Err(self.err("M needs: name d g s NMOS|PMOS [VTH= KP= LAMBDA=]"));
                }
                let (d, g, s) = (
                    self.node(tokens[1]),
                    self.node(tokens[2]),
                    self.node(tokens[3]),
                );
                let polarity = match tokens[4].to_ascii_uppercase().as_str() {
                    "NMOS" => MosPolarity::Nmos,
                    "PMOS" => MosPolarity::Pmos,
                    other => return Err(self.err(format!("unknown MOS model '{other}'"))),
                };
                let vth = self.positive(self.param(&tokens[5..], "VTH", Some(0.4))?, "VTH")?;
                let kp = self.positive(self.param(&tokens[5..], "KP", Some(2e-4))?, "KP")?;
                let lambda = self.param(&tokens[5..], "LAMBDA", Some(0.0))?;
                if lambda < 0.0 {
                    return Err(self.err(format!("LAMBDA must be >= 0, got {lambda}")));
                }
                self.netlist.mosfet(d, g, s, polarity, vth, kp, lambda)
            }
            'S' => {
                if tokens.len() < 4 {
                    return Err(self.err("S needs: name n1 n2 ON|OFF [RON= ROFF=]"));
                }
                let (a, b) = (self.node(tokens[1]), self.node(tokens[2]));
                let closed = match tokens[3].to_ascii_uppercase().as_str() {
                    "ON" => true,
                    "OFF" => false,
                    other => return Err(self.err(format!("switch state '{other}' (want ON/OFF)"))),
                };
                let r_on = self.positive(self.param(&tokens[4..], "RON", Some(100.0))?, "RON")?;
                let r_off = self.positive(self.param(&tokens[4..], "ROFF", Some(1e12))?, "ROFF")?;
                if r_on >= r_off {
                    return Err(self.err(format!(
                        "switch needs RON < ROFF, got RON={r_on} ROFF={r_off}"
                    )));
                }
                let id = self.netlist.switch(a, b, r_on, r_off);
                self.netlist.set_switch(id, closed);
                id
            }
            'E' => {
                if tokens.len() < 6 {
                    return Err(self.err("E needs: name p n cp cn gain"));
                }
                let nodes: Vec<_> = tokens[1..=4].iter().map(|t| self.node(t)).collect();
                let gain = self.value(tokens[5])?;
                self.netlist
                    .vcvs(nodes[0], nodes[1], nodes[2], nodes[3], gain)
            }
            'G' => {
                if tokens.len() < 6 {
                    return Err(self.err("G needs: name p n cp cn gm"));
                }
                let nodes: Vec<_> = tokens[1..=4].iter().map(|t| self.node(t)).collect();
                let gm = self.value(tokens[5])?;
                self.netlist
                    .vccs(nodes[0], nodes[1], nodes[2], nodes[3], gm)
            }
            other => return Err(self.err(format!("unknown card type '{other}'"))),
        };
        if self.devices.insert(name.clone(), id).is_some() {
            return Err(self.err(format!("duplicate device name '{name}'")));
        }
        Ok(())
    }

    fn directive(&mut self, tokens: &[&str]) -> Result<(), ParseError> {
        match tokens[0].to_ascii_lowercase().as_str() {
            ".end" => Ok(()),
            ".op" => {
                self.directives.op = true;
                Ok(())
            }
            ".tran" => {
                if tokens.len() < 3 {
                    return Err(self.err(".tran needs: step stop"));
                }
                let step = self.value(tokens[1])?;
                let stop = self.value(tokens[2])?;
                self.directives.tran = Some((step, stop));
                Ok(())
            }
            ".ac" => {
                if tokens.len() < 5 || !tokens[1].eq_ignore_ascii_case("dec") {
                    return Err(self.err(".ac needs: dec points fstart fstop"));
                }
                let points = tokens[2]
                    .parse::<usize>()
                    .map_err(|_| self.err("bad .ac point count"))?;
                let fstart = self.value(tokens[3])?;
                let fstop = self.value(tokens[4])?;
                self.directives.ac = Some((points, fstart, fstop));
                Ok(())
            }
            other => Err(self.err(format!("unknown directive '{other}'"))),
        }
    }
}

/// Parses a netlist deck.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered. A deck with no cards or
/// directives at all — empty, whitespace, or comments only — is an
/// error, not an empty circuit: every caller that feeds this from user
/// input (file, HTTP body) wants "you sent nothing" surfaced, and a
/// genuinely empty `Netlist` is constructed directly, never parsed.
pub fn parse_netlist(source: &str) -> Result<ParsedNetlist, ParseError> {
    // Merge '+' continuations, tracking original line numbers.
    let mut logical: Vec<(usize, String)> = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let line = raw.split(';').next().unwrap_or("").trim_end();
        let trimmed = line.trim_start();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        if let Some(cont) = trimmed.strip_prefix('+') {
            match logical.last_mut() {
                Some((_, prev)) => {
                    prev.push(' ');
                    prev.push_str(cont.trim());
                }
                None => {
                    return Err(ParseError {
                        line: i + 1,
                        message: "continuation with no previous card".into(),
                    })
                }
            }
        } else {
            logical.push((i + 1, trimmed.to_string()));
        }
    }
    if logical.is_empty() {
        return Err(ParseError {
            line: 1,
            message: "empty netlist (no cards or directives)".into(),
        });
    }

    let mut p = LineParser {
        netlist: Netlist::new(),
        devices: HashMap::new(),
        directives: Directives::default(),
        line_no: 0,
        line: "",
    };
    for (line_no, line) in &logical {
        p.line_no = *line_no;
        p.line = line;
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.is_empty() {
            continue;
        }
        if tokens[0].starts_with('.') {
            p.directive(&tokens)?;
        } else {
            p.card(&tokens)?;
        }
    }
    Ok(ParsedNetlist {
        netlist: p.netlist,
        devices: p.devices,
        directives: p.directives,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::DcSolver;
    use crate::transient::{TransientOptions, TransientSim};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-12 * b.abs().max(1.0)
    }

    #[test]
    fn values_with_suffixes() {
        assert!(close(parse_value("10k").unwrap(), 10e3));
        assert!(close(parse_value("1.5MEG").unwrap(), 1.5e6));
        assert!(close(parse_value("2p").unwrap(), 2e-12));
        assert!(close(parse_value("3N").unwrap(), 3e-9));
        assert!(close(parse_value("4u").unwrap(), 4e-6));
        assert!(close(parse_value("5m").unwrap(), 5e-3));
        assert!(close(parse_value("0.5").unwrap(), 0.5));
        assert!(close(parse_value("1e-3").unwrap(), 1e-3));
        assert!(close(parse_value("7f").unwrap(), 7e-15));
        assert!(parse_value("xyz").is_err());
    }

    #[test]
    fn divider_deck_solves() {
        let parsed =
            parse_netlist("* divider\nV1 top 0 DC 3.0\nR1 top mid 2k\nR2 mid 0 1k\n.op\n.end\n")
                .unwrap();
        assert!(parsed.directives.op);
        assert_eq!(parsed.devices.len(), 3);
        let op = DcSolver::new().solve(&parsed.netlist).unwrap();
        let mid = parsed.netlist.find_node("mid").unwrap();
        assert!((op.voltage(mid) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nonlinear_deck_with_params() {
        let parsed = parse_netlist(
            "VDD vdd 0 1.8
             R1 vdd a 100k
             D1 a 0 IS=1e-16 N=1.0
             M1 a g 0 NMOS VTH=0.5 KP=1e-4
             VG g 0 0.0",
        )
        .unwrap();
        let op = DcSolver::new().solve(&parsed.netlist).unwrap();
        let a = parsed.netlist.find_node("a").unwrap();
        assert!(
            (0.5..0.95).contains(&op.voltage(a)),
            "v(a) = {}",
            op.voltage(a)
        );
    }

    #[test]
    fn pulse_and_tran_directive() {
        let parsed = parse_netlist(
            "VIN in 0 PULSE(0 1.2 0 1n 1n 10n 20n)
             R1 in out 1k
             C1 out 0 1p IC=0
             .tran 0.1n 15n",
        )
        .unwrap();
        let (step, stop) = parsed.directives.tran.unwrap();
        assert!(close(stop, 15e-9));
        let mut sim = TransientSim::new(
            &parsed.netlist,
            TransientOptions {
                dt: step,
                use_ic: true,
                ..Default::default()
            },
        )
        .unwrap();
        let out = parsed.netlist.find_node("out").unwrap();
        // Mid-pulse (high from 1 ns to 11 ns): the 1 ns-τ RC has settled.
        while sim.time() < 10e-9 {
            sim.step(&parsed.netlist).unwrap();
        }
        assert!(
            (sim.voltage(out) - 1.2).abs() < 0.01,
            "v = {}",
            sim.voltage(out)
        );
        // After the fall (12 ns) the output decays back toward zero.
        while sim.time() < stop {
            sim.step(&parsed.netlist).unwrap();
        }
        assert!(sim.voltage(out) < 0.1, "v = {}", sim.voltage(out));
    }

    #[test]
    fn continuations_and_comments() {
        let parsed = parse_netlist(
            "* a source split across lines
             V1 a 0
             +  SIN(0.6
             +  0.3 1k)
             R1 a 0 1k ; load",
        )
        .unwrap();
        match parsed.netlist.device(parsed.devices["V1"]) {
            crate::netlist::Device::VSource {
                wave:
                    SourceWave::Sine {
                        offset, ampl, freq, ..
                    },
                ..
            } => {
                assert_eq!(*offset, 0.6);
                assert_eq!(*ampl, 0.3);
                assert_eq!(*freq, 1e3);
            }
            other => panic!("wrong device: {other:?}"),
        }
    }

    #[test]
    fn switch_and_controlled_sources() {
        let parsed = parse_netlist(
            "V1 a 0 1.0
             S1 a b ON RON=10 ROFF=1e12
             R1 b 0 1k
             E1 c 0 b 0 2.0
             G1 d 0 b 0 1m
             R2 d 0 1k",
        )
        .unwrap();
        let op = DcSolver::new().solve(&parsed.netlist).unwrap();
        let b = parsed.netlist.find_node("b").unwrap();
        let c = parsed.netlist.find_node("c").unwrap();
        let d = parsed.netlist.find_node("d").unwrap();
        assert!((op.voltage(b) - 0.99).abs() < 0.01);
        assert!((op.voltage(c) - 2.0 * op.voltage(b)).abs() < 1e-9);
        // G pushes 1m·v(b) out of d: v(d) = −1 V per volt at b.
        assert!((op.voltage(d) + op.voltage(b)).abs() < 1e-9);
    }

    #[test]
    fn ac_directive() {
        let parsed = parse_netlist(".ac dec 10 1 1meg\nR1 a 0 1k\nV1 a 0 1").unwrap();
        assert_eq!(parsed.directives.ac, Some((10, 1.0, 1e6)));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_netlist("R1 a 0 1k\nQ1 a b c").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("unknown card"));
        let err = parse_netlist("R1 a 0 bogus").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_netlist("R1 a 0 1k\nR1 a 0 2k").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn empty_decks_are_errors_not_empty_circuits() {
        for deck in ["", "   \n\t\n", "* only a comment\n; and another", "+"] {
            let err = parse_netlist(deck).unwrap_err();
            assert!(
                err.message.contains("empty netlist") || err.message.contains("continuation"),
                "deck {deck:?} gave {err}"
            );
        }
    }

    #[test]
    fn truncated_r_card_is_an_error_not_a_panic() {
        for deck in ["R1", "R1 a", "R1 a 0"] {
            let err = parse_netlist(deck).unwrap_err();
            assert!(err.message.contains("R needs"), "deck {deck:?} gave {err}");
        }
    }

    #[test]
    fn non_finite_and_mantissaless_values_are_rejected() {
        for bad in [
            "nan", "NaN", "inf", "-inf", "infinity", "1e999", "k", "meg", "nank", "infp",
        ] {
            assert!(parse_value(bad).is_err(), "{bad:?} parsed");
        }
        // The rejections must not eat legitimate exponent forms.
        assert!(close(parse_value("1e-3").unwrap(), 1e-3));
        assert!(close(parse_value("-2.5e2").unwrap(), -250.0));
    }

    #[test]
    fn out_of_range_device_params_are_parse_errors() {
        // Each of these would trip a Netlist constructor assert (a panic,
        // even in release) if the parser let it through.
        let bad = [
            ("R1 a 0 0", "resistance"),
            ("R1 a 0 -1k", "resistance"),
            ("C1 a 0 0", "capacitance"),
            ("S1 a b ON RON=10 ROFF=10", "RON < ROFF"),
            ("S1 a b ON RON=0", "RON"),
            ("D1 a 0 IS=0", "IS"),
            ("D1 a 0 N=0.5", "N must be >= 1"),
            ("M1 d g 0 NMOS VTH=0", "VTH"),
            ("M1 d g 0 NMOS KP=-1", "KP"),
            ("M1 d g 0 NMOS LAMBDA=-0.1", "LAMBDA"),
            ("V1 a 0 PULSE(0 1 0 -1n 1n 5n 10n)", "rise"),
        ];
        for (deck, needle) in bad {
            let err = parse_netlist(deck).unwrap_err();
            assert!(
                err.message.contains(needle),
                "deck {deck:?} gave {err:?}, wanted {needle:?}"
            );
        }
    }
}
