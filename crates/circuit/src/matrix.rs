//! Dense linear algebra for MNA systems.
//!
//! The circuits in this reproduction (resistor ladders, SC arrays, bandgap
//! cores) have at most a few hundred nodes, so a dense LU factorization with
//! partial pivoting is both simpler and faster than a general sparse solver.
//! The module still accepts stamp-style (row, col, value) accumulation so the
//! assembly code reads like classic MNA.
//!
//! # Examples
//!
//! ```
//! use symbist_circuit::matrix::Matrix;
//!
//! // Solve a 2x2 system: [2 1; 1 3] x = [3; 5]
//! let mut a = Matrix::zeros(2, 2);
//! a.set(0, 0, 2.0);
//! a.set(0, 1, 1.0);
//! a.set(1, 0, 1.0);
//! a.set(1, 1, 3.0);
//! let x = a.lu().expect("nonsingular").solve(&[3.0, 5.0]);
//! assert!((x[0] - 0.8).abs() < 1e-12);
//! assert!((x[1] - 1.4).abs() < 1e-12);
//! ```

use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Error returned when a factorization encounters a (numerically) singular
/// matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// Pivot column at which elimination broke down.
    pub column: usize,
}

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular at pivot column {}", self.column)
    }
}

impl std::error::Error for SingularMatrixError {}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to the element at `(r, c)` — the MNA "stamp" primitive.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] += v;
    }

    /// Resets every element to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Matrix–vector product `A * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *yr = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Computes an LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if a pivot smaller than `1e-13` times
    /// the largest absolute entry is encountered.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn lu(&self) -> Result<Lu, SingularMatrixError> {
        assert_eq!(self.rows, self.cols, "LU requires a square matrix");
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let scale = self
            .data
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(f64::MIN_POSITIVE);
        let tol = 1e-13 * scale;

        for k in 0..n {
            // Partial pivot: find the largest entry in column k at/below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu[k * n + k].abs();
            for r in (k + 1)..n {
                let v = lu[r * n + k].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val <= tol {
                return Err(SingularMatrixError { column: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    lu.swap(k * n + c, pivot_row * n + c);
                }
                perm.swap(k, pivot_row);
            }
            let pivot = lu[k * n + k];
            for r in (k + 1)..n {
                let factor = lu[r * n + k] / pivot;
                lu[r * n + k] = factor;
                if factor != 0.0 {
                    for c in (k + 1)..n {
                        lu[r * n + c] -= factor * lu[k * n + c];
                    }
                }
            }
        }
        Ok(Lu { n, lu, perm })
    }

    /// Convenience: factor and solve `A x = b` in one call.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the matrix is singular.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SingularMatrixError> {
        Ok(self.lu()?.solve(b))
    }

    /// Infinity-norm of the matrix (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|r| {
                self.data[r * self.cols..(r + 1) * self.cols]
                    .iter()
                    .map(|v| v.abs())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>12.5e} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// An LU factorization with row permutation, reusable across multiple
/// right-hand sides (the transient solver refactors only when the topology
/// or a companion conductance changes).
#[derive(Debug, Clone)]
pub struct Lu {
    n: usize,
    /// Combined L (strict lower, unit diagonal implicit) and U (upper).
    lu: Vec<f64>,
    /// Row permutation: solve uses `b[perm[i]]`.
    perm: Vec<usize>,
}

impl Lu {
    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` using the stored factorization.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factored dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "rhs dimension mismatch");
        let n = self.n;
        // Forward substitution with permutation applied.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[self.perm[i]];
            for (j, yj) in y.iter().enumerate().take(i) {
                sum -= self.lu[i * n + j] * yj;
            }
            y[i] = sum;
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (j, xj) in x.iter().enumerate().take(n).skip(i + 1) {
                sum -= self.lu[i * n + j] * xj;
            }
            x[i] = sum / self.lu[i * n + i];
        }
        x
    }

    /// Determinant of the original matrix (product of pivots times
    /// permutation sign).
    pub fn det(&self) -> f64 {
        let n = self.n;
        let mut det: f64 = (0..n).map(|i| self.lu[i * n + i]).product();
        // Count permutation parity.
        let mut seen = vec![false; n];
        let mut transpositions = 0usize;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut len = 0usize;
            let mut i = start;
            while !seen[i] {
                seen[i] = true;
                i = self.perm[i];
                len += 1;
            }
            transpositions += len - 1;
        }
        if transpositions % 2 == 1 {
            det = -det;
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn identity_solve() {
        let m = Matrix::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let x = m.solve(&b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn known_2x2() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn requires_pivoting() {
        // Zero on the diagonal; solvable only with row exchange.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(a.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn random_roundtrip() {
        let mut rng = Rng::seed_from_u64(5);
        for n in [1usize, 2, 3, 5, 10, 30] {
            // Diagonally dominated random matrix: always well conditioned.
            let mut a = Matrix::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    a.set(r, c, rng.uniform(-1.0, 1.0));
                }
                a.add(r, r, n as f64);
            }
            let x_true: Vec<f64> = (0..n).map(|_| rng.uniform(-10.0, 10.0)).collect();
            let b = a.mul_vec(&x_true);
            let x = a.solve(&b).unwrap();
            for (xs, xt) in x.iter().zip(&x_true) {
                assert!((xs - xt).abs() < 1e-8, "n={n}: {xs} vs {xt}");
            }
        }
    }

    #[test]
    fn det_matches_2x2_formula() {
        let a = Matrix::from_rows(&[vec![3.0, 1.0], vec![4.0, 2.0]]);
        let det = a.lu().unwrap().det();
        assert!((det - 2.0).abs() < 1e-12);
    }

    #[test]
    fn det_with_permutation_sign() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let det = a.lu().unwrap().det();
        assert!((det + 1.0).abs() < 1e-12);
    }

    #[test]
    fn norm_inf_max_row_sum() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 0.25]]);
        assert!((a.norm_inf() - 3.0).abs() < 1e-15);
    }

    #[test]
    fn stamp_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        a.add(0, 0, 1.0);
        a.add(0, 0, 2.0);
        assert_eq!(a.get(0, 0), 3.0);
        a.clear();
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_get_panics() {
        Matrix::zeros(2, 2).get(2, 0);
    }
}
