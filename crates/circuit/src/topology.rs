//! Read-only topology introspection over a [`Netlist`].
//!
//! The static analyzer (`symbist-lint`) and other pre-simulation passes
//! need graph-level facts about a circuit — which devices touch a node,
//! per-node terminal degree, connected components — without stamping a
//! single MNA entry. This module computes those facts once, up front, and
//! never mutates the netlist.
//!
//! Every device is treated as a *hyperedge* over its terminal set (a
//! MOSFET connects drain, gate, and source; a controlled source connects
//! its output and control pairs), which is the right notion for
//! "electrically attached": a node whose only attachment is a MOSFET gate
//! is still attached to that transistor, even though no DC current flows
//! into a gate. Analyses that care about *conductive* paths (the DC-path
//! rules in `symbist-lint`) build their own filtered [`DisjointSet`] on
//! top of the raw facts exposed here.
//!
//! ```
//! use symbist_circuit::netlist::Netlist;
//! use symbist_circuit::topology::Topology;
//!
//! let mut nl = Netlist::new();
//! let a = nl.node("a");
//! let b = nl.node("b");
//! nl.vsource(a, Netlist::GND, 1.0);
//! nl.resistor(a, b, 1e3);
//! let topo = Topology::of(&nl);
//! assert_eq!(topo.degree(a), 2);
//! assert!(topo.connected_to_ground(b));
//! ```

use crate::netlist::{Device, DeviceId, Netlist, NodeId};

impl Device {
    /// Every node this device touches, in declaration order (duplicates
    /// possible when two terminals share a node).
    ///
    /// For controlled sources the control terminals are included: a
    /// control-only node is physically routed to the device even though
    /// it carries no current.
    pub fn terminals(&self) -> Vec<NodeId> {
        match *self {
            Device::Resistor { a, b, .. }
            | Device::Capacitor { a, b, .. }
            | Device::Switch { a, b, .. } => vec![a, b],
            Device::VSource { p, n, .. } | Device::ISource { p, n, .. } => vec![p, n],
            Device::Diode { anode, cathode, .. } => vec![anode, cathode],
            Device::Mosfet { d, g, s, .. } => vec![d, g, s],
            Device::Vcvs { p, n, cp, cn, .. } | Device::Vccs { p, n, cp, cn, .. } => {
                vec![p, n, cp, cn]
            }
        }
    }

    /// Short class name for reports ("resistor", "vsource", …).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Device::Resistor { .. } => "resistor",
            Device::Capacitor { .. } => "capacitor",
            Device::VSource { .. } => "vsource",
            Device::ISource { .. } => "isource",
            Device::Switch { .. } => "switch",
            Device::Diode { .. } => "diode",
            Device::Mosfet { .. } => "mosfet",
            Device::Vcvs { .. } => "vcvs",
            Device::Vccs { .. } => "vccs",
        }
    }
}

/// Union–find (disjoint-set) structure over `0..n`, with union by size
/// and path compression.
///
/// Exposed publicly because graph-shaped lint rules build *filtered*
/// connectivity relations (e.g. "DC-conductive edges only", "ideal
/// voltage constraints only") that [`Topology`] itself deliberately does
/// not bake in.
#[derive(Debug, Clone)]
pub struct DisjointSet {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl DisjointSet {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`. Returns `false` if they
    /// were already in the same set — i.e. the new edge closes a cycle,
    /// which is exactly the fact the voltage-source-loop rule needs.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }

    /// Whether `a` and `b` are currently in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

/// Immutable adjacency snapshot of a netlist: which devices touch each
/// node, per-node terminal degree, and full-graph connected components.
#[derive(Debug, Clone)]
pub struct Topology {
    devices_at: Vec<Vec<DeviceId>>,
    degree: Vec<usize>,
    component: Vec<usize>,
}

impl Topology {
    /// Builds the snapshot. `O(nodes + total terminals)`.
    pub fn of(nl: &Netlist) -> Topology {
        let n = nl.node_count();
        let mut devices_at: Vec<Vec<DeviceId>> = vec![Vec::new(); n];
        let mut degree = vec![0usize; n];
        let mut sets = DisjointSet::new(n);
        for (id, device) in nl.iter() {
            let terminals = device.terminals();
            for &t in &terminals {
                degree[t.index()] += 1;
                if devices_at[t.index()].last() != Some(&id) {
                    devices_at[t.index()].push(id);
                }
            }
            for pair in terminals.windows(2) {
                sets.union(pair[0].index(), pair[1].index());
            }
        }
        let component = (0..n).map(|i| sets.find(i)).collect();
        Topology {
            devices_at,
            degree,
            component,
        }
    }

    /// Number of nodes (including ground).
    pub fn node_count(&self) -> usize {
        self.degree.len()
    }

    /// Devices incident on `node`, each listed once per device (not per
    /// terminal).
    pub fn devices_at(&self, node: NodeId) -> &[DeviceId] {
        &self.devices_at[node.index()]
    }

    /// Number of device terminals landing on `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.degree[node.index()]
    }

    /// Opaque component label of `node`; two nodes share a label iff some
    /// chain of devices connects them.
    pub fn component_label(&self, node: NodeId) -> usize {
        self.component[node.index()]
    }

    /// Whether `node` is in ground's component.
    pub fn connected_to_ground(&self, node: NodeId) -> bool {
        self.component[node.index()] == self.component[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_and_adjacency() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let r1 = nl.resistor(a, b, 1e3);
        let r2 = nl.resistor(a, Netlist::GND, 1e3);
        let topo = Topology::of(&nl);
        assert_eq!(topo.degree(a), 2);
        assert_eq!(topo.degree(b), 1);
        assert_eq!(topo.degree(Netlist::GND), 1);
        assert_eq!(topo.devices_at(a), &[r1, r2]);
        assert_eq!(topo.devices_at(b), &[r1]);
    }

    #[test]
    fn components_split_on_disconnection() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let c = nl.node("c");
        nl.resistor(a, Netlist::GND, 1e3);
        nl.resistor(b, c, 1e3); // island
        let topo = Topology::of(&nl);
        assert!(topo.connected_to_ground(a));
        assert!(!topo.connected_to_ground(b));
        assert_eq!(topo.component_label(b), topo.component_label(c));
        assert_ne!(topo.component_label(a), topo.component_label(b));
    }

    #[test]
    fn mosfet_gate_counts_as_attached() {
        let mut nl = Netlist::new();
        let d = nl.node("d");
        let g = nl.node("g");
        nl.mosfet(
            d,
            g,
            Netlist::GND,
            crate::netlist::MosPolarity::Nmos,
            0.4,
            1e-3,
            0.0,
        );
        let topo = Topology::of(&nl);
        assert!(topo.connected_to_ground(g));
        assert_eq!(topo.degree(g), 1);
    }

    #[test]
    fn disjoint_set_detects_cycles() {
        let mut ds = DisjointSet::new(3);
        assert!(ds.union(0, 1));
        assert!(ds.union(1, 2));
        assert!(!ds.union(0, 2), "closing edge must report the cycle");
        assert!(ds.same(0, 2));
        assert_eq!(ds.len(), 3);
    }

    #[test]
    fn terminals_cover_all_kinds() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vcvs(a, Netlist::GND, b, Netlist::GND, 2.0);
        let (_, dev) = nl.iter().next().expect("one device");
        assert_eq!(dev.terminals().len(), 4);
        assert_eq!(dev.kind_name(), "vcvs");
    }
}
