//! DC operating-point analysis.
//!
//! Solves the nonlinear MNA system `f(x) = 0` by damped Newton–Raphson.
//! When plain Newton fails to converge the solver falls back to gmin
//! stepping (start with a large conductance to ground everywhere, relax it
//! geometrically) and then to source stepping (ramp all independent sources
//! from zero), the same continuation strategies SPICE uses.
//!
//! # Examples
//!
//! ```
//! use symbist_circuit::netlist::Netlist;
//! use symbist_circuit::dc::DcSolver;
//!
//! let mut nl = Netlist::new();
//! let a = nl.node("a");
//! nl.vsource(a, Netlist::GND, 0.7);
//! // Diode to ground: nonlinear solve.
//! nl.diode(a, Netlist::GND, 1e-14, 1.0);
//! let op = DcSolver::new().solve(&nl)?;
//! assert!((op.voltage(a) - 0.7).abs() < 1e-9);
//! # Ok::<(), symbist_circuit::error::CircuitError>(())
//! ```

use crate::error::CircuitError;
use crate::mna::{AssemblyCtx, CapCompanion, MnaEngine};
use crate::netlist::{DeviceId, Netlist, NodeId};

/// Which linear-solver path the Newton engine uses.
///
/// The sparse path (see [`crate::sparse`]) computes a fill-reducing ordering
/// and symbolic factorization once per topology, caches the linear device
/// stamps, and per iteration only re-stamps nonlinear deltas and runs a
/// static-pivot numeric refactorization. The dense path assembles and
/// LU-factorizes (with partial pivoting) the full matrix every iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineChoice {
    /// Sparse with automatic dense fallback on pivot failure (default).
    #[default]
    Auto,
    /// Dense only — the reference/oracle path.
    Dense,
    /// Sparse-first; still falls back to dense on a vanishing static pivot
    /// (a genuinely singular iterate is reported identically either way).
    Sparse,
}

thread_local! {
    static THREAD_DEFAULT_ENGINE: std::cell::Cell<EngineChoice> =
        const { std::cell::Cell::new(EngineChoice::Auto) };
}

/// Overrides what [`EngineChoice::Auto`] resolves to on the current thread
/// and returns the previous override.
///
/// Every solver constructed with default options — including the ones
/// buried inside higher-level code such as the ADC models — picks the
/// thread default up, which makes whole-stack A/B comparisons (benchmarks,
/// cross-checking a suspect sparse result against the dense oracle)
/// possible without threading options through every layer. Setting
/// [`EngineChoice::Auto`] restores the built-in default (sparse with dense
/// fallback).
pub fn set_thread_default_engine(choice: EngineChoice) -> EngineChoice {
    THREAD_DEFAULT_ENGINE.with(|c| c.replace(choice))
}

/// Resolves `Auto` against the thread default; explicit choices win.
pub(crate) fn resolve_engine(choice: EngineChoice) -> EngineChoice {
    match choice {
        EngineChoice::Auto => THREAD_DEFAULT_ENGINE.with(std::cell::Cell::get),
        explicit => explicit,
    }
}

/// A per-thread bound on how much solver work one logical task may consume.
///
/// Installed with [`set_thread_solve_budget`] using the same thread-local
/// pattern as [`set_thread_default_engine`]: every Newton iteration run on
/// the thread — DC operating points, continuation stages, transient steps,
/// no matter how deeply buried inside higher-level models — charges against
/// it. When either resource runs out the innermost solve returns
/// [`CircuitError::BudgetExhausted`], which unwinds through `?`-threaded
/// call chains back to whoever installed the budget.
///
/// This is how the defect campaign keeps one pathological injected defect
/// (e.g. a short that sends gmin stepping into deep continuation) from
/// stalling a worker thread indefinitely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveBudget {
    /// Absolute wall-clock deadline. Checked once per Newton iteration, so
    /// enforcement granularity is one matrix assembly + factorization.
    pub deadline: Option<std::time::Instant>,
    /// Total Newton iterations allowed across every solve on the thread.
    /// Unlike the deadline this is deterministic: the same circuit and
    /// budget always fail (or pass) at the same iteration.
    pub newton_iters: Option<u64>,
}

impl SolveBudget {
    /// A budget with neither limit set (never exhausts).
    pub const UNLIMITED: SolveBudget = SolveBudget {
        deadline: None,
        newton_iters: None,
    };
}

thread_local! {
    static THREAD_BUDGET: std::cell::Cell<Option<SolveBudget>> =
        const { std::cell::Cell::new(None) };
}

/// Installs (or with `None` clears) the solve budget for the current thread
/// and returns the previous one — with `newton_iters` reflecting what was
/// still unspent, so budgets can be nested save/restore style.
pub fn set_thread_solve_budget(budget: Option<SolveBudget>) -> Option<SolveBudget> {
    THREAD_BUDGET.with(|b| b.replace(budget))
}

/// Charges one Newton iteration against the thread budget, if any.
pub(crate) fn charge_newton_iteration() -> Result<(), CircuitError> {
    THREAD_BUDGET.with(|b| {
        let Some(mut budget) = b.get() else {
            return Ok(());
        };
        if let Some(deadline) = budget.deadline {
            if std::time::Instant::now() >= deadline {
                return Err(CircuitError::BudgetExhausted {
                    resource: "deadline",
                });
            }
        }
        if let Some(iters) = budget.newton_iters {
            if iters == 0 {
                return Err(CircuitError::BudgetExhausted {
                    resource: "newton-iterations",
                });
            }
            budget.newton_iters = Some(iters - 1);
            b.set(Some(budget));
        }
        Ok(())
    })
}

/// Result of a DC (or single transient step) solve: the full MNA solution
/// with accessors by node.
#[derive(Debug, Clone)]
pub struct Operating {
    pub(crate) x: Vec<f64>,
    pub(crate) node_count: usize,
    pub(crate) branch_of: Vec<usize>,
}

impl Operating {
    /// Voltage of a node (0 for ground).
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the solved netlist.
    pub fn voltage(&self, n: NodeId) -> f64 {
        if n.is_ground() {
            return 0.0;
        }
        assert!(n.index() < self.node_count, "node {n} out of range");
        self.x[n.index() - 1]
    }

    /// Differential voltage `v(a) − v(b)`.
    pub fn differential(&self, a: NodeId, b: NodeId) -> f64 {
        self.voltage(a) - self.voltage(b)
    }

    /// Branch current of a voltage-defined device (V source or VCVS),
    /// positive flowing p → n *through* the device.
    ///
    /// # Panics
    ///
    /// Panics if the device has no branch current.
    pub fn branch_current(&self, id: DeviceId) -> f64 {
        let b = self.branch_of[id.index()];
        assert!(b != usize::MAX, "device {id:?} has no branch current");
        self.x[b]
    }

    /// The raw solution vector (node voltages then branch currents).
    pub fn raw(&self) -> &[f64] {
        &self.x
    }
}

/// Newton–Raphson convergence/continuation options.
#[derive(Debug, Clone)]
pub struct DcOptions {
    /// Absolute node-voltage tolerance in volts.
    pub vntol: f64,
    /// Relative tolerance.
    pub reltol: f64,
    /// Maximum Newton iterations per solve attempt.
    pub max_iter: usize,
    /// Baseline conductance to ground at every node.
    pub gmin: f64,
    /// Largest per-iteration voltage update (damping).
    pub max_step: f64,
    /// Number of gmin-stepping decades to try on failure.
    pub gmin_steps: usize,
    /// Number of source-stepping ramp points to try on failure.
    pub source_steps: usize,
    /// Simulation temperature in °C. Device models are referenced to
    /// 300 K = 26.85 °C, which is also the default (so nominal solves are
    /// bit-identical to the temperature-unaware model).
    pub temperature_c: f64,
    /// Linear-solver engine selection.
    pub engine: EngineChoice,
}

impl Default for DcOptions {
    fn default() -> Self {
        Self {
            vntol: 1e-9,
            reltol: 1e-9,
            max_iter: 200,
            gmin: 1e-12,
            max_step: 1.0,
            gmin_steps: 10,
            source_steps: 20,
            temperature_c: 26.85,
            engine: EngineChoice::default(),
        }
    }
}

/// DC operating-point solver.
#[derive(Debug, Clone, Default)]
pub struct DcSolver {
    options: DcOptions,
}

impl DcSolver {
    /// Creates a solver with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with explicit options.
    pub fn with_options(options: DcOptions) -> Self {
        Self { options }
    }

    /// Access to the options.
    pub fn options(&self) -> &DcOptions {
        &self.options
    }

    /// Solves the DC operating point.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Singular`] if the system matrix is singular
    /// even with gmin regularization, or [`CircuitError::NoConvergence`] if
    /// every continuation strategy fails.
    pub fn solve(&self, netlist: &Netlist) -> Result<Operating, CircuitError> {
        self.solve_from(netlist, None)
    }

    /// Solves the DC operating point starting from a previous solution
    /// (warm start), e.g. the previous point of a sweep.
    ///
    /// # Errors
    ///
    /// Same as [`DcSolver::solve`].
    pub fn solve_from(
        &self,
        netlist: &Netlist,
        initial: Option<&[f64]>,
    ) -> Result<Operating, CircuitError> {
        // Time the whole continuation ladder, not individual Newton
        // attempts: a solve that needed gmin stepping should show its
        // full cost in one histogram sample.
        let start = symbist_obs::enabled().then(std::time::Instant::now);
        let result = self.solve_from_inner(netlist, initial);
        if let Some(start) = start {
            symbist_obs::counter!(
                "symbist_solver_dc_solves_total",
                "DC operating-point solves (all continuation strategies included)"
            )
            .inc();
            symbist_obs::histogram!(
                "symbist_solver_dc_solve_seconds",
                "Wall time per DC operating-point solve",
                symbist_obs::SECONDS_EDGES
            )
            .record(start.elapsed().as_secs_f64());
        }
        result
    }

    fn solve_from_inner(
        &self,
        netlist: &Netlist,
        initial: Option<&[f64]>,
    ) -> Result<Operating, CircuitError> {
        let mut asm = MnaEngine::new(netlist, self.options.engine);
        let dim = asm.layout().dim;
        let caps: Vec<Option<CapCompanion>> = vec![None; netlist.device_count()];
        let mut x = match initial {
            Some(x0) if x0.len() == dim => x0.to_vec(),
            _ => vec![0.0; dim],
        };

        // Strategy 1: plain Newton at nominal gmin.
        if self.newton(
            netlist,
            &mut asm,
            &mut x,
            0.0,
            1.0,
            self.options.gmin,
            &caps,
        )? {
            return Ok(self.finish(&asm, x));
        }

        // Strategy 2: gmin stepping — solve with a heavy shunt everywhere,
        // then relax geometrically, warm-starting each stage.
        let mut xg = vec![0.0; dim];
        let mut gmin = 1e-2;
        let mut ok = true;
        for _ in 0..=self.options.gmin_steps {
            if !self.newton(netlist, &mut asm, &mut xg, 0.0, 1.0, gmin, &caps)? {
                ok = false;
                break;
            }
            if gmin <= self.options.gmin {
                break;
            }
            gmin = (gmin * 0.1).max(self.options.gmin);
        }
        if ok && gmin <= self.options.gmin {
            return Ok(self.finish(&asm, xg));
        }

        // Strategy 3: source stepping — ramp all sources from 0 to 100%.
        let mut xs = vec![0.0; dim];
        let n = self.options.source_steps;
        let mut ok = true;
        for k in 1..=n {
            let scale = k as f64 / n as f64;
            if !self.newton(
                netlist,
                &mut asm,
                &mut xs,
                0.0,
                scale,
                self.options.gmin,
                &caps,
            )? {
                ok = false;
                break;
            }
        }
        if ok {
            return Ok(self.finish(&asm, xs));
        }

        Err(CircuitError::NoConvergence {
            analysis: "dc operating point",
            iterations: self.options.max_iter,
        })
    }

    /// One Newton solve at fixed (time, scale, gmin). Returns convergence.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn newton(
        &self,
        netlist: &Netlist,
        asm: &mut MnaEngine,
        x: &mut Vec<f64>,
        time: f64,
        source_scale: f64,
        gmin: f64,
        cap_companion: &[Option<CapCompanion>],
    ) -> Result<bool, CircuitError> {
        let linear = !netlist.has_nonlinear();
        let node_unknowns = asm.layout().node_count - 1;
        for iter in 0..self.options.max_iter {
            charge_newton_iteration()?;
            // Progressive damping: halve the step cap every 50 iterations
            // to break Newton limit cycles on stiff feedback loops.
            let step_cap = self.options.max_step / f64::from(1 << (iter / 50).min(6) as u32);
            let ctx = AssemblyCtx {
                time,
                source_scale,
                gmin,
                guess: x,
                cap_companion,
                thermal: crate::mna::Thermal::new(self.options.temperature_c + 273.15),
            };
            // A singular iterate (e.g. every MOSFET in cutoff at a bad
            // guess) is a convergence failure, not a fatal topology error:
            // report non-convergence so the caller's continuation
            // strategies (gmin/source stepping) get their chance.
            let new_x = match asm.assemble_and_solve(netlist, &ctx) {
                Ok(x) => x,
                Err(_) => return Ok(false),
            };

            // Damped update with per-entry step limiting. Linear circuits
            // take the full Newton step — it is exact.
            let mut max_delta = 0.0f64;
            for i in 0..x.len() {
                let mut delta = new_x[i] - x[i];
                if !linear && delta.abs() > step_cap && i < node_unknowns {
                    delta = delta.signum() * step_cap;
                }
                x[i] += delta;
                if i < node_unknowns {
                    let tol = self.options.vntol + self.options.reltol * x[i].abs();
                    if delta.abs() > tol {
                        max_delta = max_delta.max(delta.abs() / tol);
                    }
                }
            }
            if !x.iter().all(|v| v.is_finite()) {
                return Ok(false);
            }
            if linear || max_delta == 0.0 {
                asm.note_newton(iter as u64 + 1);
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn finish(&self, asm: &MnaEngine, x: Vec<f64>) -> Operating {
        Operating {
            x,
            node_count: asm.layout().node_count,
            branch_of: asm.layout().branch_of.clone(),
        }
    }
}

/// DC sweep: repeatedly re-solve while varying one source.
///
/// # Examples
///
/// ```
/// use symbist_circuit::netlist::Netlist;
/// use symbist_circuit::dc::sweep_vsource;
///
/// let mut nl = Netlist::new();
/// let a = nl.node("a");
/// let src = nl.vsource(a, Netlist::GND, 0.0);
/// nl.resistor(a, Netlist::GND, 1000.0);
/// let pts = sweep_vsource(&mut nl, src, 0.0, 1.0, 5)?;
/// assert_eq!(pts.len(), 5);
/// assert!((pts[4].0 - 1.0).abs() < 1e-12);
/// # Ok::<(), symbist_circuit::error::CircuitError>(())
/// ```
///
/// # Errors
///
/// Propagates solver failures from any sweep point.
///
/// # Panics
///
/// Panics if `points < 2`, or if `source` is not a voltage source.
pub fn sweep_vsource(
    netlist: &mut Netlist,
    source: DeviceId,
    from: f64,
    to: f64,
    points: usize,
) -> Result<Vec<(f64, Operating)>, CircuitError> {
    assert!(points >= 2, "a sweep needs at least 2 points");
    let solver = DcSolver::new();
    let mut out = Vec::with_capacity(points);
    let mut warm: Option<Vec<f64>> = None;
    for k in 0..points {
        let v = from + (to - from) * k as f64 / (points - 1) as f64;
        match netlist.device_mut(source) {
            crate::netlist::Device::VSource { wave, .. } => {
                *wave = crate::netlist::SourceWave::Dc(v);
            }
            other => panic!("sweep target is not a voltage source: {other:?}"),
        }
        let op = solver.solve_from(netlist, warm.as_deref())?;
        warm = Some(op.x.clone());
        out.push((v, op));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{MosPolarity, Netlist};

    #[test]
    fn divider() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource(a, Netlist::GND, 3.0);
        nl.resistor(a, b, 2000.0);
        nl.resistor(b, Netlist::GND, 1000.0);
        let op = DcSolver::new().solve(&nl).unwrap();
        assert!((op.voltage(b) - 1.0).abs() < 1e-9);
        assert!((op.differential(a, b) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn wheatstone_bridge_balanced() {
        let mut nl = Netlist::new();
        let top = nl.node("top");
        let l = nl.node("l");
        let r = nl.node("r");
        nl.vsource(top, Netlist::GND, 5.0);
        nl.resistor(top, l, 1000.0);
        nl.resistor(top, r, 1000.0);
        nl.resistor(l, Netlist::GND, 2000.0);
        nl.resistor(r, Netlist::GND, 2000.0);
        nl.resistor(l, r, 500.0); // bridge; no current when balanced
        let op = DcSolver::new().solve(&nl).unwrap();
        assert!((op.voltage(l) - op.voltage(r)).abs() < 1e-9);
    }

    #[test]
    fn diode_drop() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let k = nl.node("k");
        nl.vsource(a, Netlist::GND, 5.0);
        nl.resistor(a, k, 1000.0);
        nl.diode(k, Netlist::GND, 1e-14, 1.0);
        let op = DcSolver::new().solve(&nl).unwrap();
        let vk = op.voltage(k);
        // Forward drop in the 0.6–0.8 V range at ~4.3 mA.
        assert!((0.6..0.85).contains(&vk), "v(k) = {vk}");
        // KCL consistency: resistor current equals diode current.
        let i_r = (5.0 - vk) / 1000.0;
        let i_d = 1e-14 * ((vk / 0.025852).exp() - 1.0);
        assert!((i_r - i_d).abs() / i_r < 1e-6);
    }

    #[test]
    fn nmos_common_source() {
        // NMOS with drain resistor: check saturation solution.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let g = nl.node("g");
        let d = nl.node("d");
        nl.vsource(vdd, Netlist::GND, 3.0);
        nl.vsource(g, Netlist::GND, 1.0);
        nl.resistor(vdd, d, 10_000.0);
        nl.mosfet(d, g, Netlist::GND, MosPolarity::Nmos, 0.5, 2e-4, 0.0);
        let op = DcSolver::new().solve(&nl).unwrap();
        // ids = 0.5·2e-4·(0.5)² = 25 µA; vd = 3 − 0.25 = 2.75 (saturation
        // holds since vds = 2.75 > vov = 0.5).
        assert!(
            (op.voltage(d) - 2.75).abs() < 1e-6,
            "v(d) = {}",
            op.voltage(d)
        );
    }

    #[test]
    fn pmos_common_source() {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let g = nl.node("g");
        let d = nl.node("d");
        nl.vsource(vdd, Netlist::GND, 3.0);
        nl.vsource(g, Netlist::GND, 2.0); // vsg = 1 V
        nl.resistor(d, Netlist::GND, 10_000.0);
        nl.mosfet(d, g, vdd, MosPolarity::Pmos, 0.5, 2e-4, 0.0);
        let op = DcSolver::new().solve(&nl).unwrap();
        // |ids| = 25 µA into the resistor: vd = 0.25 V.
        assert!(
            (op.voltage(d) - 0.25).abs() < 1e-6,
            "v(d) = {}",
            op.voltage(d)
        );
    }

    #[test]
    fn cmos_inverter_transfer() {
        // NMOS+PMOS inverter: low in → high out, high in → low out.
        let build = |vin: f64| {
            let mut nl = Netlist::new();
            let vdd = nl.node("vdd");
            let g = nl.node("g");
            let o = nl.node("o");
            nl.vsource(vdd, Netlist::GND, 1.2);
            nl.vsource(g, Netlist::GND, vin);
            nl.mosfet(o, g, Netlist::GND, MosPolarity::Nmos, 0.4, 4e-4, 0.05);
            nl.mosfet(o, g, vdd, MosPolarity::Pmos, 0.4, 4e-4, 0.05);
            nl
        };
        let lo = DcSolver::new().solve(&build(0.0)).unwrap();
        let hi = DcSolver::new().solve(&build(1.2)).unwrap();
        let out = crate::netlist::NodeId(3); // nodes: vdd=1, g=2, o=3
        let o_lo = lo.voltage(out);
        let o_hi = hi.voltage(out);
        assert!(o_lo > 1.1, "inverter out for low in: {o_lo}");
        assert!(o_hi < 0.1, "inverter out for high in: {o_hi}");
    }

    #[test]
    fn floating_node_regularized_by_gmin() {
        // A node connected only through a capacitor would be singular in DC
        // without gmin.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let f = nl.node("f");
        nl.vsource(a, Netlist::GND, 1.0);
        nl.capacitor(a, f, 1e-12);
        let op = DcSolver::new().solve(&nl).unwrap();
        assert!(op.voltage(f).abs() < 1e-6);
    }

    #[test]
    fn warm_start_sweep() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let k = nl.node("k");
        let src = nl.vsource(a, Netlist::GND, 0.0);
        nl.resistor(a, k, 100.0);
        nl.diode(k, Netlist::GND, 1e-14, 1.0);
        let pts = sweep_vsource(&mut nl, src, 0.0, 2.0, 11).unwrap();
        // Diode clamp: output monotone, saturating near 0.75 V.
        let volts: Vec<f64> = pts.iter().map(|(_, op)| op.voltage(k)).collect();
        assert!(volts.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        assert!(volts[10] < 0.9);
    }

    #[test]
    fn current_mirror() {
        // Two matched NMOS: reference current mirrored into a load.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let ref_n = nl.node("ref");
        let out = nl.node("out");
        nl.vsource(vdd, Netlist::GND, 3.0);
        // 100 µA reference pushed into the diode-connected device.
        nl.isource(vdd, ref_n, 1e-4);
        nl.mosfet(
            ref_n,
            ref_n,
            Netlist::GND,
            MosPolarity::Nmos,
            0.5,
            4e-4,
            0.0,
        );
        nl.mosfet(out, ref_n, Netlist::GND, MosPolarity::Nmos, 0.5, 4e-4, 0.0);
        nl.resistor(vdd, out, 5_000.0);
        let op = DcSolver::new().solve(&nl).unwrap();
        // Mirrored 100 µA through 5k: v(out) = 3 − 0.5 = 2.5 V.
        assert!(
            (op.voltage(out) - 2.5).abs() < 0.01,
            "v(out) = {}",
            op.voltage(out)
        );
    }

    fn diode_clamp_netlist() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let k = nl.node("k");
        nl.vsource(a, Netlist::GND, 2.0);
        nl.resistor(a, k, 100.0);
        nl.diode(k, Netlist::GND, 1e-14, 1.0);
        nl
    }

    #[test]
    fn newton_budget_exhausts_deterministically() {
        let nl = diode_clamp_netlist();
        // A single iteration can never converge this nonlinear circuit.
        let prev = set_thread_solve_budget(Some(SolveBudget {
            deadline: None,
            newton_iters: Some(1),
        }));
        let starved = DcSolver::new().solve(&nl);
        set_thread_solve_budget(prev);
        assert_eq!(
            starved.unwrap_err(),
            CircuitError::BudgetExhausted {
                resource: "newton-iterations"
            }
        );
        // With the budget cleared the same circuit solves fine.
        assert!(DcSolver::new().solve(&nl).is_ok());
    }

    #[test]
    fn expired_deadline_fails_immediately() {
        let nl = diode_clamp_netlist();
        let prev = set_thread_solve_budget(Some(SolveBudget {
            deadline: Some(std::time::Instant::now()),
            newton_iters: None,
        }));
        let starved = DcSolver::new().solve(&nl);
        set_thread_solve_budget(prev);
        assert_eq!(
            starved.unwrap_err(),
            CircuitError::BudgetExhausted {
                resource: "deadline"
            }
        );
    }

    #[test]
    fn generous_budget_does_not_interfere() {
        let nl = diode_clamp_netlist();
        let prev = set_thread_solve_budget(Some(SolveBudget {
            deadline: Some(std::time::Instant::now() + std::time::Duration::from_secs(60)),
            newton_iters: Some(100_000),
        }));
        let op = DcSolver::new().solve(&nl);
        let spent = set_thread_solve_budget(prev).unwrap();
        assert!(op.is_ok());
        // The returned budget reflects what was actually consumed.
        assert!(spent.newton_iters.unwrap() < 100_000);
    }

    #[test]
    fn unlimited_budget_never_exhausts() {
        let nl = diode_clamp_netlist();
        let prev = set_thread_solve_budget(Some(SolveBudget::UNLIMITED));
        let op = DcSolver::new().solve(&nl);
        set_thread_solve_budget(prev);
        assert!(op.is_ok());
    }
}
