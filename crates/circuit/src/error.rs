//! Error types for circuit analyses.

use std::fmt;

/// Errors produced by the DC and transient solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// The MNA matrix was singular even with gmin regularization (usually a
    /// floating subcircuit or a loop of ideal voltage sources).
    Singular {
        /// Pivot column at which elimination broke down.
        column: usize,
    },
    /// Newton–Raphson failed to converge after every continuation strategy.
    NoConvergence {
        /// Which analysis failed.
        analysis: &'static str,
        /// Iteration budget that was exhausted.
        iterations: usize,
    },
    /// An invalid analysis configuration (e.g. non-positive time step).
    InvalidConfig {
        /// Explanation of what was wrong.
        reason: String,
    },
    /// A caller-imposed solve budget (see [`crate::dc::SolveBudget`]) ran
    /// out mid-analysis. The partial solution is discarded; the caller —
    /// typically a defect-campaign worker — records the task as unresolved
    /// instead of letting one pathological circuit stall the whole run.
    BudgetExhausted {
        /// Which resource ran out: `"deadline"` or `"newton-iterations"`.
        resource: &'static str,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::Singular { column } => {
                write!(f, "singular MNA matrix at pivot column {column} (floating subcircuit or voltage-source loop)")
            }
            CircuitError::NoConvergence {
                analysis,
                iterations,
            } => {
                write!(
                    f,
                    "{analysis} failed to converge within {iterations} iterations"
                )
            }
            CircuitError::InvalidConfig { reason } => {
                write!(f, "invalid analysis configuration: {reason}")
            }
            CircuitError::BudgetExhausted { resource } => {
                write!(f, "solve budget exhausted ({resource})")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CircuitError::Singular { column: 3 };
        assert!(e.to_string().contains("pivot column 3"));
        let e = CircuitError::NoConvergence {
            analysis: "dc",
            iterations: 100,
        };
        assert!(e.to_string().contains("100 iterations"));
        let e = CircuitError::InvalidConfig {
            reason: "dt <= 0".into(),
        };
        assert!(e.to_string().contains("dt <= 0"));
        let e = CircuitError::BudgetExhausted {
            resource: "deadline",
        };
        assert!(e.to_string().contains("deadline"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<CircuitError>();
    }
}
