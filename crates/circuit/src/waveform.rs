//! Time-series traces recorded by the transient solver.
//!
//! A [`Trace`] is a named `(time, value)` series with helpers the BIST
//! checker needs: sampling at arbitrary instants, extrema over windows, and
//! CSV export for the figure-regeneration binaries.

use std::fmt::Write as _;

/// A named time series with strictly increasing time stamps.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    name: String,
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates a trace from parallel vectors.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or times are not strictly increasing.
    pub fn from_series(name: impl Into<String>, times: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(times.len(), values.len(), "times/values length mismatch");
        assert!(
            times.windows(2).all(|w| w[1] > w[0]),
            "times must be strictly increasing"
        );
        Self {
            name: name.into(),
            times,
            values,
        }
    }

    /// The trace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if the trace has no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not strictly after the last sample.
    pub fn push(&mut self, t: f64, v: f64) {
        if let Some(&last) = self.times.last() {
            assert!(
                t > last,
                "samples must be appended in increasing time order"
            );
        }
        self.times.push(t);
        self.values.push(v);
    }

    /// The time stamps.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Linear interpolation at time `t`, clamped at the ends.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn sample_at(&self, t: f64) -> f64 {
        assert!(!self.is_empty(), "cannot sample an empty trace");
        if t <= self.times[0] {
            return self.values[0];
        }
        if t >= self.times[self.times.len() - 1] {
            return self.values[self.values.len() - 1];
        }
        let idx = self.times.partition_point(|&x| x <= t);
        let (t0, v0) = (self.times[idx - 1], self.values[idx - 1]);
        let (t1, v1) = (self.times[idx], self.values[idx]);
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Minimum value over the whole trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn min(&self) -> f64 {
        assert!(!self.is_empty());
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum value over the whole trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn max(&self) -> f64 {
        assert!(!self.is_empty());
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Extrema `(min, max)` restricted to `t0..=t1`.
    ///
    /// Returns `None` if no sample falls in the window.
    pub fn extrema_in(&self, t0: f64, t1: f64) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut any = false;
        for (t, v) in self.times.iter().zip(&self.values) {
            if *t >= t0 && *t <= t1 {
                lo = lo.min(*v);
                hi = hi.max(*v);
                any = true;
            }
        }
        any.then_some((lo, hi))
    }

    /// Value of the last sample at or before `t` (zero-order hold).
    ///
    /// Returns `None` if `t` precedes the first sample.
    pub fn value_before(&self, t: f64) -> Option<f64> {
        let idx = self.times.partition_point(|&x| x <= t);
        idx.checked_sub(1).map(|i| self.values[i])
    }

    /// Detects whether the signal is settled at time `t`: the total
    /// excursion over the trailing window `[t − window, t]` is below `tol`.
    pub fn is_settled_at(&self, t: f64, window: f64, tol: f64) -> bool {
        match self.extrema_in(t - window, t) {
            Some((lo, hi)) => hi - lo <= tol,
            None => false,
        }
    }
}

/// A bundle of traces sharing a time axis conceptually (each trace still
/// stores its own stamps so decimated probes are allowed).
#[derive(Debug, Clone, Default)]
pub struct TraceSet {
    traces: Vec<Trace>,
}

impl TraceSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a trace.
    pub fn insert(&mut self, trace: Trace) {
        self.traces.push(trace);
    }

    /// Looks up a trace by name.
    pub fn trace(&self, name: &str) -> Option<&Trace> {
        self.traces.iter().find(|t| t.name() == name)
    }

    /// Iterates over the traces.
    pub fn iter(&self) -> impl Iterator<Item = &Trace> {
        self.traces.iter()
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Returns `true` if there are no traces.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Renders the whole set as CSV with a shared, merged time column
    /// (values linearly interpolated where stamps differ).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("time");
        for t in &self.traces {
            let _ = write!(out, ",{}", t.name());
        }
        out.push('\n');
        // Merge all time stamps.
        let mut stamps: Vec<f64> = self
            .traces
            .iter()
            .flat_map(|t| t.times().iter().copied())
            .collect();
        stamps.sort_by(|a, b| a.total_cmp(b));
        stamps.dedup_by(|a, b| (*a - *b).abs() < f64::EPSILON);
        for s in stamps {
            let _ = write!(out, "{s:.6e}");
            for t in &self.traces {
                if t.is_empty() {
                    out.push(',');
                } else {
                    let _ = write!(out, ",{:.6e}", t.sample_at(s));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Trace {
        Trace::from_series("r", vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 20.0])
    }

    #[test]
    fn sample_interpolates() {
        let t = ramp();
        assert_eq!(t.sample_at(0.5), 5.0);
        assert_eq!(t.sample_at(1.5), 15.0);
        // Clamped ends.
        assert_eq!(t.sample_at(-1.0), 0.0);
        assert_eq!(t.sample_at(9.0), 20.0);
    }

    #[test]
    fn extrema_and_window() {
        let t = ramp();
        assert_eq!(t.min(), 0.0);
        assert_eq!(t.max(), 20.0);
        assert_eq!(t.extrema_in(0.5, 1.5), Some((10.0, 10.0)));
        assert_eq!(t.extrema_in(5.0, 6.0), None);
    }

    #[test]
    fn settled_detection() {
        let mut t = Trace::new("s");
        for i in 0..100 {
            let time = i as f64 * 0.01;
            // Exponential settling toward 1.0.
            t.push(time, 1.0 - (-time * 10.0).exp());
        }
        assert!(!t.is_settled_at(0.1, 0.05, 1e-3));
        assert!(t.is_settled_at(0.99, 0.05, 1e-3));
    }

    #[test]
    fn value_before_is_zoh() {
        let t = ramp();
        assert_eq!(t.value_before(1.5), Some(10.0));
        assert_eq!(t.value_before(-0.5), None);
    }

    #[test]
    #[should_panic]
    fn push_out_of_order_panics() {
        let mut t = ramp();
        t.push(1.5, 0.0);
    }

    #[test]
    fn csv_export() {
        let mut set = TraceSet::new();
        set.insert(ramp());
        let csv = set.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time,r");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("0.000000e0"));
    }

    #[test]
    fn trace_set_lookup() {
        let mut set = TraceSet::new();
        set.insert(ramp());
        assert!(set.trace("r").is_some());
        assert!(set.trace("nope").is_none());
        assert_eq!(set.len(), 1);
    }
}
