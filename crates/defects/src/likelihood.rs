//! Defect likelihood model (paper §V, after Sunter et al. \[9\]).
//!
//! Each defect's relative likelihood of occurrence combines a *global
//! defect-type likelihood* — shorts are more likely than opens, which are
//! more likely than large parameter shifts — with a *component-specific
//! likelihood* proportional to the component's expected layout area.

use symbist_adc::fault::{ComponentInfo, DefectKind};

/// Global defect-class weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LikelihoodModel {
    /// Weight of short-class defects (highest, per the paper).
    pub short_weight: f64,
    /// Weight of open-class defects.
    pub open_weight: f64,
    /// Weight of ±50 % passive variations.
    pub param_weight: f64,
}

impl Default for LikelihoodModel {
    fn default() -> Self {
        Self {
            short_weight: 3.0,
            open_weight: 1.0,
            param_weight: 0.5,
        }
    }
}

impl LikelihoodModel {
    /// Relative likelihood of `kind` occurring on `component`.
    ///
    /// The class weight is split evenly among the defects of that class on
    /// the component (a MOSFET's three shorts share the short budget), so
    /// a component's total likelihood is `area × Σ class weights`
    /// regardless of how many terminal pairs it has.
    pub fn likelihood(&self, component: &ComponentInfo, kind: DefectKind) -> f64 {
        let applicable = component.kind.applicable_defects();
        let class_count = applicable
            .iter()
            .filter(|d| self.same_class(**d, kind))
            .count()
            .max(1) as f64;
        let class_weight = if kind.is_short() {
            self.short_weight
        } else if kind.is_open() {
            self.open_weight
        } else {
            self.param_weight
        };
        component.area * class_weight / class_count
    }

    fn same_class(&self, a: DefectKind, b: DefectKind) -> bool {
        (a.is_short() && b.is_short())
            || (a.is_open() && b.is_open())
            || (a.is_param() && b.is_param())
    }

    /// Validates the model.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or all are zero.
    pub fn validate(&self) {
        assert!(
            self.short_weight >= 0.0 && self.open_weight >= 0.0 && self.param_weight >= 0.0,
            "weights must be non-negative"
        );
        assert!(
            self.short_weight + self.open_weight + self.param_weight > 0.0,
            "at least one weight must be positive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbist_adc::fault::{BlockKind, ComponentKind};

    fn mos() -> ComponentInfo {
        ComponentInfo {
            block: BlockKind::ScArray,
            name: "m".into(),
            kind: ComponentKind::Mosfet,
            area: 2.0,
        }
    }

    fn res() -> ComponentInfo {
        ComponentInfo {
            block: BlockKind::ScArray,
            name: "r".into(),
            kind: ComponentKind::Resistor,
            area: 4.0,
        }
    }

    #[test]
    fn shorts_outweigh_opens() {
        let m = LikelihoodModel::default();
        assert!(
            m.likelihood(&mos(), DefectKind::ShortDs) > m.likelihood(&mos(), DefectKind::OpenGate)
        );
    }

    #[test]
    fn area_scales_likelihood() {
        let m = LikelihoodModel::default();
        let small = mos();
        let mut big = mos();
        big.area = 10.0;
        assert!(
            m.likelihood(&big, DefectKind::ShortDs) > m.likelihood(&small, DefectKind::ShortDs)
        );
    }

    #[test]
    fn class_budget_is_split_across_terminal_pairs() {
        let m = LikelihoodModel::default();
        // MOS: 3 shorts share the budget; resistor: 1 short gets it all.
        let mos_total: f64 = [
            DefectKind::ShortGd,
            DefectKind::ShortGs,
            DefectKind::ShortDs,
        ]
        .iter()
        .map(|k| m.likelihood(&mos(), *k))
        .sum();
        assert!((mos_total - 2.0 * 3.0).abs() < 1e-12);
        let r_short = m.likelihood(&res(), DefectKind::Short);
        assert!((r_short - 4.0 * 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn all_zero_weights_rejected() {
        LikelihoodModel {
            short_weight: 0.0,
            open_weight: 0.0,
            param_weight: 0.0,
        }
        .validate();
    }
}
