//! Likelihood-Weighted (L-W) defect coverage and its confidence interval.
//!
//! Following the metric reported by Tessent DefectSim (Sunter et al. \[9\])
//! and used throughout the paper's Table I:
//!
//! * **Exhaustive**: `coverage = Σ L_i·detected_i / Σ L_i` over the whole
//!   universe.
//! * **LWRS sampling**: defects are drawn with probability proportional to
//!   likelihood *without replacement*; the plain detection fraction of the
//!   sample is then an estimator of the L-W coverage, and a 95 % normal
//!   interval with finite-population correction is attached.
//!
//! ## Unresolved defects and coverage bounds
//!
//! Both estimators consume boolean detection outcomes, but a fault-tolerant
//! campaign also produces *unresolved* records — simulations that panicked,
//! timed out, or failed to converge, and therefore proved nothing about
//! detection either way. The campaign layer resolves the ambiguity by
//! evaluating the estimator twice (see
//! [`CampaignResult::coverage_bounds`](crate::campaign::CampaignResult::coverage_bounds)):
//!
//! * **Lower bound** (`coverage()`): unresolved counted as **escapes**.
//!   This is the defensible figure to publish — coverage is a claim about
//!   demonstrated detection, and an unresolved run demonstrated nothing.
//! * **Upper bound** (`coverage_upper()`): unresolved counted as
//!   **detected**. Useful as a diagnostic: a wide `[lower, upper]` gap
//!   means the unresolved population is large enough to matter, and the
//!   fix is raising budgets or repairing the solver path, not re-sampling.
//!
//! The true coverage lies within the closed interval; the bounds coincide
//! exactly when every simulation completed. For sampled campaigns each
//! bound carries its own CI, which quantifies sampling error only — the
//! unresolved-attribution uncertainty is exactly the bound gap.

use symbist_analysis::stats::normal_quantile;

/// A coverage figure with optional sampling confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coverage {
    /// Point estimate in `[0, 1]`.
    pub value: f64,
    /// Half-width of the 95 % CI when the campaign sampled (`None` for
    /// exhaustive campaigns).
    pub ci_half_width: Option<f64>,
}

impl Coverage {
    /// Formats as the paper does: `86.96%±3.67%` or `97.7%`.
    pub fn to_percent_string(&self) -> String {
        // Normalize −0.0 so an all-escape block prints as plain 0.00%.
        let value = if self.value == 0.0 { 0.0 } else { self.value };
        match self.ci_half_width {
            Some(hw) => format!("{:.2}%±{:.2}%", value * 100.0, hw * 100.0),
            None => format!("{:.2}%", value * 100.0),
        }
    }
}

/// Exhaustive L-W coverage over `(likelihood, detected)` outcomes.
///
/// # Panics
///
/// Panics if `outcomes` is empty or total likelihood is zero.
pub fn lw_coverage_exhaustive(outcomes: &[(f64, bool)]) -> Coverage {
    assert!(!outcomes.is_empty(), "no outcomes");
    let total: f64 = outcomes.iter().map(|(l, _)| *l).sum();
    assert!(total > 0.0, "zero total likelihood");
    let detected: f64 = outcomes.iter().filter(|(_, d)| *d).map(|(l, _)| *l).sum();
    Coverage {
        value: detected / total,
        ci_half_width: None,
    }
}

/// LWRS estimator: detection fraction of a likelihood-weighted sample of
/// size `n` drawn from a universe of `population` defects, with 95 % CI
/// (normal approximation × finite-population correction).
///
/// # Panics
///
/// Panics if `n == 0`, `detected > n`, or `population < n`.
pub fn lw_coverage_sampled(detected: usize, n: usize, population: usize) -> Coverage {
    assert!(n > 0, "empty sample");
    assert!(detected <= n, "detected exceeds sample size");
    assert!(population >= n, "population smaller than sample");
    let p = detected as f64 / n as f64;
    let z = normal_quantile(0.975);
    let fpc = if population > 1 {
        (((population - n) as f64) / ((population - 1) as f64)).sqrt()
    } else {
        0.0
    };
    let hw = z * (p * (1.0 - p) / n as f64).sqrt() * fpc;
    Coverage {
        value: p,
        ci_half_width: Some(hw),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_weighted_mean() {
        // Detected defect carries 3x likelihood: coverage = 3/4.
        let c = lw_coverage_exhaustive(&[(3.0, true), (1.0, false)]);
        assert!((c.value - 0.75).abs() < 1e-12);
        assert!(c.ci_half_width.is_none());
        assert_eq!(c.to_percent_string(), "75.00%");
    }

    #[test]
    fn undetected_high_likelihood_dominates() {
        // The paper's low-coverage mechanism: one undetected defect with
        // huge likelihood drags the L-W figure down even when most defects
        // are detected.
        let mut outcomes = vec![(100.0, false)];
        outcomes.extend(std::iter::repeat_n((1.0, true), 99));
        let c = lw_coverage_exhaustive(&outcomes);
        assert!(
            c.value < 0.5,
            "L-W coverage {} despite 99% absolute",
            c.value
        );
    }

    #[test]
    fn sampled_matches_paper_shape() {
        // SUBDAC1 row of Table I: 112 samples, ~80% detected, universe 1260.
        let c = lw_coverage_sampled((112.0f64 * 0.8058).round() as usize, 112, 1260);
        assert!((c.value - 0.8036).abs() < 0.01);
        let hw = c.ci_half_width.unwrap();
        assert!((0.05..0.08).contains(&hw), "CI half-width {hw}");
        assert!(c.to_percent_string().contains('±'));
    }

    #[test]
    fn fpc_shrinks_interval_for_large_samples() {
        let small = lw_coverage_sampled(40, 50, 1000).ci_half_width.unwrap();
        let big = lw_coverage_sampled(40, 50, 55).ci_half_width.unwrap();
        assert!(big < small, "near-census CI {big} must beat {small}");
    }

    #[test]
    fn census_has_zero_width() {
        let c = lw_coverage_sampled(9, 10, 10);
        assert!(c.ci_half_width.unwrap() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_outcomes_panic() {
        lw_coverage_exhaustive(&[]);
    }
}
