//! Defect-universe extraction: every applicable defect on every physical
//! component of a [`Faultable`] DUT.

use std::collections::HashMap;
use std::fmt;

use symbist_adc::fault::{BlockKind, ComponentInfo, DefectSite, Faultable};

use crate::likelihood::LikelihoodModel;

/// One enumerated defect with its metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Defect {
    /// Where and what.
    pub site: DefectSite,
    /// Hierarchical component name (for reports).
    pub component_name: String,
    /// Owning block (Table I row).
    pub block: BlockKind,
    /// Relative likelihood of occurrence.
    pub likelihood: f64,
}

/// The complete defect universe of a DUT.
#[derive(Debug, Clone, Default)]
pub struct DefectUniverse {
    defects: Vec<Defect>,
}

impl DefectUniverse {
    /// Enumerates all defects of `dut` under `model`.
    pub fn enumerate(dut: &impl Faultable, model: &LikelihoodModel) -> Self {
        model.validate();
        let mut defects = Vec::new();
        for (idx, comp) in dut.components().iter().enumerate() {
            for kind in comp.kind.applicable_defects() {
                defects.push(Defect {
                    site: DefectSite {
                        component: idx,
                        kind: *kind,
                    },
                    component_name: comp.name.clone(),
                    block: comp.block,
                    likelihood: model.likelihood(comp, *kind),
                });
            }
        }
        Self { defects }
    }

    /// Number of defects.
    pub fn len(&self) -> usize {
        self.defects.len()
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.defects.is_empty()
    }

    /// The defects.
    pub fn defects(&self) -> &[Defect] {
        &self.defects
    }

    /// Iterator over the defects.
    pub fn iter(&self) -> impl Iterator<Item = &Defect> {
        self.defects.iter()
    }

    /// Sum of all likelihoods.
    pub fn total_likelihood(&self) -> f64 {
        self.defects.iter().map(|d| d.likelihood).sum()
    }

    /// The sub-universe of one block (a Table I row).
    pub fn filter_block(&self, block: BlockKind) -> DefectUniverse {
        DefectUniverse {
            defects: self
                .defects
                .iter()
                .filter(|d| d.block == block)
                .cloned()
                .collect(),
        }
    }

    /// Builds a universe from an explicit defect list (used by tests and
    /// by the campaign resampler).
    pub fn from_defects(defects: Vec<Defect>) -> Self {
        Self { defects }
    }

    /// Structural problems in this universe relative to a DUT component
    /// catalog — the `symbist-lint` defect-universe rules.
    ///
    /// A universe produced by [`DefectUniverse::enumerate`] against the
    /// same catalog is always clean; issues arise when universes are
    /// persisted, hand-edited, resampled, or paired with a different DUT
    /// revision than the one they were extracted from.
    pub fn lint_issues(&self, catalog: &[ComponentInfo]) -> Vec<UniverseIssue> {
        let mut issues = Vec::new();
        let mut first_seen: HashMap<DefectSite, usize> = HashMap::new();
        for (index, defect) in self.defects.iter().enumerate() {
            let site = defect.site;
            match catalog.get(site.component) {
                None => issues.push(UniverseIssue::DanglingSite {
                    index,
                    site,
                    catalog_len: catalog.len(),
                }),
                Some(comp) => {
                    if !comp.kind.applicable_defects().contains(&site.kind) {
                        issues.push(UniverseIssue::InapplicableKind {
                            index,
                            site,
                            component: comp.name.clone(),
                        });
                    }
                }
            }
            if !defect.likelihood.is_finite() || defect.likelihood <= 0.0 {
                issues.push(UniverseIssue::BadLikelihood {
                    index,
                    likelihood: defect.likelihood,
                    component: defect.component_name.clone(),
                });
            }
            match first_seen.get(&site) {
                Some(&first) => issues.push(UniverseIssue::DuplicateSite { first, index, site }),
                None => {
                    first_seen.insert(site, index);
                }
            }
        }
        issues
    }
}

/// One structural problem found by [`DefectUniverse::lint_issues`].
#[derive(Debug, Clone, PartialEq)]
pub enum UniverseIssue {
    /// A defect references a component index beyond the DUT catalog.
    DanglingSite {
        /// Index of the offending defect within the universe.
        index: usize,
        /// The offending site.
        site: DefectSite,
        /// Size of the catalog the site was checked against.
        catalog_len: usize,
    },
    /// A defect kind that is not applicable to its component's kind
    /// (e.g. a gate open on a resistor).
    InapplicableKind {
        /// Index of the offending defect within the universe.
        index: usize,
        /// The offending site.
        site: DefectSite,
        /// Name of the referenced component.
        component: String,
    },
    /// A zero, negative, or non-finite likelihood — it would silently
    /// vanish from (or corrupt) every L-W coverage sum.
    BadLikelihood {
        /// Index of the offending defect within the universe.
        index: usize,
        /// The offending likelihood value.
        likelihood: f64,
        /// Name of the referenced component.
        component: String,
    },
    /// The same `(component, kind)` injection appears twice — it would be
    /// double-counted by coverage accounting.
    DuplicateSite {
        /// Index of the first occurrence.
        first: usize,
        /// Index of the duplicate.
        index: usize,
        /// The duplicated site.
        site: DefectSite,
    },
}

impl fmt::Display for UniverseIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UniverseIssue::DanglingSite {
                index,
                site,
                catalog_len,
            } => write!(
                f,
                "defect #{index} references component {} ({}), but the catalog has only {catalog_len} components",
                site.component, site.kind
            ),
            UniverseIssue::InapplicableKind {
                index,
                site,
                component,
            } => write!(
                f,
                "defect #{index}: kind {} is not applicable to component {} ({component})",
                site.kind, site.component
            ),
            UniverseIssue::BadLikelihood {
                index,
                likelihood,
                component,
            } => write!(
                f,
                "defect #{index} on {component} has invalid likelihood {likelihood}"
            ),
            UniverseIssue::DuplicateSite { first, index, site } => write!(
                f,
                "defect #{index} duplicates defect #{first} (component {}, {})",
                site.component, site.kind
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbist_adc::{AdcConfig, SarAdc};

    #[test]
    fn universe_counts_match_defect_model() {
        let adc = SarAdc::new(AdcConfig::default());
        let uni = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
        // Every component contributes exactly its applicable defects.
        let expect: usize = adc
            .components()
            .iter()
            .map(|c| c.kind.applicable_defects().len())
            .sum();
        assert_eq!(uni.len(), expect);
        // Same order of magnitude as the paper's 2956 for the same IP.
        assert!(
            uni.len() > 1500 && uni.len() < 8000,
            "universe size {}",
            uni.len()
        );
    }

    #[test]
    fn block_filter_partitions_universe() {
        let adc = SarAdc::new(AdcConfig::default());
        let uni = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
        let total: usize = BlockKind::ALL
            .iter()
            .map(|b| uni.filter_block(*b).len())
            .sum();
        assert_eq!(total, uni.len());
        assert!(!uni.filter_block(BlockKind::ScArray).is_empty());
    }

    #[test]
    fn likelihoods_positive_and_finite() {
        let adc = SarAdc::new(AdcConfig::default());
        let uni = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
        for d in uni.iter() {
            assert!(d.likelihood > 0.0 && d.likelihood.is_finite(), "{d:?}");
        }
        assert!(uni.total_likelihood() > 0.0);
    }

    #[test]
    fn enumerated_universe_lints_clean() {
        let adc = SarAdc::new(AdcConfig::default());
        let uni = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
        assert!(uni.lint_issues(adc.components()).is_empty());
    }

    #[test]
    fn lint_flags_structural_problems() {
        use symbist_adc::fault::DefectKind;
        let adc = SarAdc::new(AdcConfig::default());
        let catalog = adc.components();
        let uni = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
        let mut defects = uni.defects()[..3].to_vec();
        // Dangling site.
        defects[0].site.component = catalog.len() + 7;
        // NaN likelihood.
        defects[1].likelihood = f64::NAN;
        // Duplicate of defect 2.
        defects.push(defects[2].clone());
        // Inapplicable kind: a MOS gate open on a resistor component.
        let r_idx = catalog
            .iter()
            .position(|c| c.kind == symbist_adc::ComponentKind::Resistor)
            .expect("some resistor");
        defects.push(Defect {
            site: DefectSite {
                component: r_idx,
                kind: DefectKind::OpenGate,
            },
            component_name: catalog[r_idx].name.clone(),
            block: catalog[r_idx].block,
            likelihood: 1.0,
        });
        let issues = DefectUniverse::from_defects(defects).lint_issues(catalog);
        assert!(issues
            .iter()
            .any(|i| matches!(i, UniverseIssue::DanglingSite { index: 0, .. })));
        assert!(issues
            .iter()
            .any(|i| matches!(i, UniverseIssue::BadLikelihood { index: 1, .. })));
        assert!(issues.iter().any(|i| matches!(
            i,
            UniverseIssue::DuplicateSite {
                first: 2,
                index: 3,
                ..
            }
        )));
        assert!(issues
            .iter()
            .any(|i| matches!(i, UniverseIssue::InapplicableKind { index: 4, .. })));
        assert_eq!(issues.len(), 4);
    }

    #[test]
    fn subdacs_dominate_the_universe() {
        // As in the paper (1260 of 2956 per sub-DAC), the tap muxes carry
        // most of the defect population.
        let adc = SarAdc::new(AdcConfig::default());
        let uni = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
        let sd = uni.filter_block(BlockKind::SubDac1).len();
        assert!(
            sd as f64 > uni.len() as f64 * 0.3,
            "SUBDAC1 has {sd} of {}",
            uni.len()
        );
    }
}
