//! Defect-universe extraction: every applicable defect on every physical
//! component of a [`Faultable`] DUT.

use symbist_adc::fault::{BlockKind, DefectSite, Faultable};

use crate::likelihood::LikelihoodModel;

/// One enumerated defect with its metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Defect {
    /// Where and what.
    pub site: DefectSite,
    /// Hierarchical component name (for reports).
    pub component_name: String,
    /// Owning block (Table I row).
    pub block: BlockKind,
    /// Relative likelihood of occurrence.
    pub likelihood: f64,
}

/// The complete defect universe of a DUT.
#[derive(Debug, Clone, Default)]
pub struct DefectUniverse {
    defects: Vec<Defect>,
}

impl DefectUniverse {
    /// Enumerates all defects of `dut` under `model`.
    pub fn enumerate(dut: &impl Faultable, model: &LikelihoodModel) -> Self {
        model.validate();
        let mut defects = Vec::new();
        for (idx, comp) in dut.components().iter().enumerate() {
            for kind in comp.kind.applicable_defects() {
                defects.push(Defect {
                    site: DefectSite {
                        component: idx,
                        kind: *kind,
                    },
                    component_name: comp.name.clone(),
                    block: comp.block,
                    likelihood: model.likelihood(comp, *kind),
                });
            }
        }
        Self { defects }
    }

    /// Number of defects.
    pub fn len(&self) -> usize {
        self.defects.len()
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.defects.is_empty()
    }

    /// The defects.
    pub fn defects(&self) -> &[Defect] {
        &self.defects
    }

    /// Iterator over the defects.
    pub fn iter(&self) -> impl Iterator<Item = &Defect> {
        self.defects.iter()
    }

    /// Sum of all likelihoods.
    pub fn total_likelihood(&self) -> f64 {
        self.defects.iter().map(|d| d.likelihood).sum()
    }

    /// The sub-universe of one block (a Table I row).
    pub fn filter_block(&self, block: BlockKind) -> DefectUniverse {
        DefectUniverse {
            defects: self
                .defects
                .iter()
                .filter(|d| d.block == block)
                .cloned()
                .collect(),
        }
    }

    /// Builds a universe from an explicit defect list (used by tests and
    /// by the campaign resampler).
    pub fn from_defects(defects: Vec<Defect>) -> Self {
        Self { defects }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbist_adc::{AdcConfig, SarAdc};

    #[test]
    fn universe_counts_match_defect_model() {
        let adc = SarAdc::new(AdcConfig::default());
        let uni = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
        // Every component contributes exactly its applicable defects.
        let expect: usize = adc
            .components()
            .iter()
            .map(|c| c.kind.applicable_defects().len())
            .sum();
        assert_eq!(uni.len(), expect);
        // Same order of magnitude as the paper's 2956 for the same IP.
        assert!(
            uni.len() > 1500 && uni.len() < 8000,
            "universe size {}",
            uni.len()
        );
    }

    #[test]
    fn block_filter_partitions_universe() {
        let adc = SarAdc::new(AdcConfig::default());
        let uni = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
        let total: usize = BlockKind::ALL
            .iter()
            .map(|b| uni.filter_block(*b).len())
            .sum();
        assert_eq!(total, uni.len());
        assert!(!uni.filter_block(BlockKind::ScArray).is_empty());
    }

    #[test]
    fn likelihoods_positive_and_finite() {
        let adc = SarAdc::new(AdcConfig::default());
        let uni = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
        for d in uni.iter() {
            assert!(d.likelihood > 0.0 && d.likelihood.is_finite(), "{d:?}");
        }
        assert!(uni.total_likelihood() > 0.0);
    }

    #[test]
    fn subdacs_dominate_the_universe() {
        // As in the paper (1260 of 2956 per sub-DAC), the tap muxes carry
        // most of the defect population.
        let adc = SarAdc::new(AdcConfig::default());
        let uni = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
        let sd = uni.filter_block(BlockKind::SubDac1).len();
        assert!(
            sd as f64 > uni.len() as f64 * 0.3,
            "SUBDAC1 has {sd} of {}",
            uni.len()
        );
    }
}
