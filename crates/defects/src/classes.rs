//! Class-representative defect campaigns: simulate one defect per
//! equivalence class and extrapolate, instead of simulating the universe.
//!
//! The static analyzer (`symbist-lint` stage two) partitions a
//! [`DefectUniverse`] into `(symmetry orbit × defect kind)` classes whose
//! members are provably equivalent under a netlist automorphism: injecting
//! any member produces an isomorphic defective circuit, so every member
//! has the same detection outcome. A class-representative campaign
//! exploits that — it simulates the **lowest-index member of each class**,
//! assigns the representative's outcome to every member, and reports the
//! extrapolated Likelihood-Weighted coverage over the *full* universe.
//!
//! The equivalence claim is a static prediction about a numerical
//! simulation, so the campaign cross-checks it: for a seeded random
//! fraction of the multi-member classes it additionally simulates one
//! **random sibling** and compares verdicts. A representative/sibling
//! disagreement (a *class violation*) means the partition lied — an
//! analyzer bug, a model/netlist mismatch, or a test whose outcome
//! depends on something the orbit computation cannot see (e.g. numerical
//! noise at a threshold). Violations are counted, surfaced per class, and
//! exported via the `symbist_analysis_class_violations_total` metric —
//! and a refuted class stops extrapolating: its simulated members keep
//! their own verdicts while its unsimulated members turn unknown,
//! widening the reported coverage bounds instead of propagating a claim
//! the audit just disproved.
//!
//! The cross-check is *sampled* because full auditing can erase the whole
//! point: on a DUT whose classes are mostly mirror *pairs* (the SAR ADC),
//! auditing every class simulates both members — exactly the exhaustive
//! campaign. At the default 10 % audit rate a clean run costs
//! `#classes + ~0.1·#multi-member classes` simulations instead of
//! `|universe|`.
//!
//! This module deliberately knows nothing about the analyzer: the
//! partition arrives as plain index lists (see
//! `AnalysisReport::partition()` in `symbist-lint`), keeping the
//! dependency arrow pointing lint → defects.

use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

use symbist_adc::fault::Faultable;
use symbist_circuit::rng::Rng;

use crate::campaign::{run_campaign, CampaignError, CampaignOptions, SimOutcome};
use crate::coverage::{lw_coverage_exhaustive, Coverage};
use crate::universe::DefectUniverse;

/// Configuration for [`run_class_campaign`].
#[derive(Debug, Clone)]
pub struct ClassCampaignOptions {
    /// Seed for the per-class sibling draw (and the underlying
    /// sub-campaign). Two runs with the same seed, universe, and partition
    /// simulate exactly the same defects.
    pub seed: u64,
    /// Fraction of multi-member classes to audit with a sibling
    /// simulation, clamped to `[0, 1]`. `0.0` disables the cross-check;
    /// `1.0` audits every class (which, on a universe of mirror pairs,
    /// degenerates into the exhaustive campaign). Each multi-member class
    /// is independently selected with this probability from the seeded
    /// stream.
    pub cross_check_fraction: f64,
    /// Worker threads for the sub-campaign (clamped to at least 1).
    pub threads: usize,
    /// Per-defect wall-clock budget, as in
    /// [`CampaignOptions::defect_deadline`].
    pub defect_deadline: Option<Duration>,
    /// Per-defect Newton iteration budget, as in
    /// [`CampaignOptions::newton_budget`].
    pub newton_budget: Option<u64>,
}

impl Default for ClassCampaignOptions {
    fn default() -> Self {
        Self {
            seed: 0x0C1A_55E5,
            cross_check_fraction: 0.1,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            defect_deadline: None,
            newton_budget: None,
        }
    }
}

/// Errors produced by [`run_class_campaign`].
#[derive(Debug)]
#[non_exhaustive]
pub enum ClassCampaignError {
    /// The partition is not an exact cover of the universe: an index is
    /// out of range, duplicated across classes, missing, or a class is
    /// empty.
    InvalidPartition {
        /// Human-readable description of the structural problem.
        reason: String,
    },
    /// The underlying representative sub-campaign failed.
    Campaign(CampaignError),
}

impl fmt::Display for ClassCampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassCampaignError::InvalidPartition { reason } => {
                write!(f, "invalid defect-class partition: {reason}")
            }
            ClassCampaignError::Campaign(e) => write!(f, "class sub-campaign failed: {e}"),
        }
    }
}

impl std::error::Error for ClassCampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClassCampaignError::InvalidPartition { .. } => None,
            ClassCampaignError::Campaign(e) => Some(e),
        }
    }
}

impl From<CampaignError> for ClassCampaignError {
    fn from(e: CampaignError) -> Self {
        ClassCampaignError::Campaign(e)
    }
}

/// Outcome of one defect class: the representative's verdict (assigned to
/// every member) plus the optional sibling cross-check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassOutcome {
    /// Index of the class in the input partition.
    pub class_index: usize,
    /// Number of defects in the class.
    pub size: usize,
    /// Universe index of the simulated representative (the class's lowest
    /// member).
    pub representative: usize,
    /// The representative's verdict — extrapolated to every unsimulated
    /// member unless the sibling audit refutes the class.
    pub outcome: SimOutcome,
    /// Universe index of the cross-check sibling, when this class was
    /// selected for the sibling audit.
    pub sibling: Option<usize>,
    /// The sibling's verdict, when one was simulated.
    pub sibling_outcome: Option<SimOutcome>,
}

impl ClassOutcome {
    /// Whether the cross-check refuted the class: both the representative
    /// and the sibling ran to a verdict and those verdicts differ.
    /// Unresolved runs prove nothing either way and never count as
    /// violations.
    pub fn disagrees(&self) -> bool {
        match (self.outcome.completed(), self.sibling_outcome) {
            (Some(rep), Some(SimOutcome::Completed(sib))) => rep.detected != sib.detected,
            _ => false,
        }
    }
}

/// Result of a class-representative campaign.
#[derive(Debug, Clone)]
pub struct ClassCampaignResult {
    /// One outcome per input class, in partition order.
    pub classes: Vec<ClassOutcome>,
    /// Size of the full universe the coverage extrapolates over.
    pub universe_size: usize,
    /// Defects actually simulated (representatives + siblings).
    pub simulated: usize,
    /// Total campaign wall time.
    pub total_wall: Duration,
    /// Per-member `(likelihood, verdict)` over the full universe, with
    /// `None` for members whose representative was unresolved and for
    /// unsimulated members of refuted classes.
    extrapolated: Vec<(f64, Option<bool>)>,
}

impl ClassCampaignResult {
    /// Number of classes (= representatives simulated).
    pub fn representatives(&self) -> usize {
        self.classes.len()
    }

    /// Number of classes that received a sibling audit.
    pub fn cross_checked(&self) -> usize {
        self.classes.iter().filter(|c| c.sibling.is_some()).count()
    }

    /// Number of refuted classes (representative and sibling verdicts
    /// differ). Nonzero means the partition's equivalence claim is wrong
    /// somewhere — the refuted classes (see
    /// [`violations`](Self::violations)) no longer extrapolate, so their
    /// unsimulated members straddle the coverage bounds, but the
    /// *unaudited* classes may hide the same lie.
    pub fn violation_count(&self) -> usize {
        self.violations().count()
    }

    /// The refuted classes.
    pub fn violations(&self) -> impl Iterator<Item = &ClassOutcome> {
        self.classes.iter().filter(|c| c.disagrees())
    }

    /// Simulations avoided relative to an exhaustive campaign.
    pub fn defects_saved(&self) -> usize {
        self.universe_size - self.simulated
    }

    fn coverage_with(&self, unresolved_detected: bool) -> Coverage {
        let outcomes: Vec<(f64, bool)> = self
            .extrapolated
            .iter()
            .map(|(l, d)| (*l, d.unwrap_or(unresolved_detected)))
            .collect();
        lw_coverage_exhaustive(&outcomes)
    }

    /// Extrapolated L-W coverage **lower bound** over the full universe:
    /// every member inherits its representative's verdict; members of
    /// unresolved or refuted classes count as escapes.
    ///
    /// # Panics
    ///
    /// Panics if the universe is empty (prevented by
    /// [`run_class_campaign`]'s validation).
    pub fn coverage(&self) -> Coverage {
        self.coverage_with(false)
    }

    /// Extrapolated L-W coverage **upper bound**: members of unresolved
    /// or refuted classes count as detected.
    ///
    /// # Panics
    ///
    /// Panics if the universe is empty.
    pub fn coverage_upper(&self) -> Coverage {
        self.coverage_with(true)
    }

    /// Both extrapolated coverage bounds, `(lower, upper)`.
    ///
    /// # Panics
    ///
    /// Panics if the universe is empty.
    pub fn coverage_bounds(&self) -> (Coverage, Coverage) {
        (self.coverage(), self.coverage_upper())
    }
}

/// Checks that `partition` is an exact cover of `0..universe_len`.
fn validate_partition(
    partition: &[Vec<usize>],
    universe_len: usize,
) -> Result<(), ClassCampaignError> {
    let invalid = |reason: String| ClassCampaignError::InvalidPartition { reason };
    let mut owner: Vec<Option<usize>> = vec![None; universe_len];
    for (ci, class) in partition.iter().enumerate() {
        if class.is_empty() {
            return Err(invalid(format!("class {ci} is empty")));
        }
        for &d in class {
            match owner.get_mut(d) {
                None => {
                    return Err(invalid(format!(
                        "class {ci} references defect {d}, but the universe has only \
                         {universe_len} defects"
                    )));
                }
                Some(slot @ None) => *slot = Some(ci),
                Some(Some(prev)) => {
                    return Err(invalid(format!(
                        "defect {d} appears in both class {prev} and class {ci}"
                    )));
                }
            }
        }
    }
    if let Some(d) = owner.iter().position(|o| o.is_none()) {
        return Err(invalid(format!(
            "defect {d} is not covered by any class — coverage extrapolation \
             requires an exact cover"
        )));
    }
    Ok(())
}

/// Runs a class-representative campaign: one simulation per class (its
/// lowest-index member), plus one seeded random sibling for an audited
/// fraction of the multi-member classes, extrapolating the per-class
/// verdicts to the full `universe` for the L-W coverage figure.
///
/// `partition` must be an exact cover of the universe's defect indices,
/// typically the `(orbit × kind)` classes computed by the `symbist-lint`
/// static analyzer (`AnalysisReport::partition()`). The test closure has
/// the same contract as [`run_campaign`]'s.
///
/// Representative/sibling disagreements are reported in the result (see
/// [`ClassCampaignResult::violations`]) and counted on the
/// `symbist_analysis_class_violations_total` metric.
pub fn run_class_campaign<D, F, R>(
    dut: &D,
    universe: &DefectUniverse,
    partition: &[Vec<usize>],
    options: &ClassCampaignOptions,
    test: F,
) -> Result<ClassCampaignResult, ClassCampaignError>
where
    D: Faultable + Clone + Send + Sync,
    F: Fn(&D) -> R + Sync,
    R: Into<SimOutcome>,
{
    if universe.is_empty() {
        return Err(CampaignError::EmptyUniverse.into());
    }
    validate_partition(partition, universe.len())?;
    let start = Instant::now();

    // Per-class representative (lowest member) and optional seeded
    // sibling. The RNG is consumed only by multi-member classes in
    // partition order, so the draw is deterministic in (seed, partition).
    let mut rng = Rng::seed_from_u64(options.seed);
    let mut reps: Vec<usize> = Vec::with_capacity(partition.len());
    let mut siblings: Vec<Option<usize>> = Vec::with_capacity(partition.len());
    for class in partition {
        let rep = *class.iter().min().expect("validated classes are non-empty");
        reps.push(rep);
        let sibling = if class.len() >= 2 && rng.bernoulli(options.cross_check_fraction) {
            let others: Vec<usize> = class.iter().copied().filter(|&d| d != rep).collect();
            Some(others[rng.below(others.len() as u64) as usize])
        } else {
            None
        };
        siblings.push(sibling);
    }

    // The sub-universe of selected defects, simulated exhaustively.
    // Selection indices are distinct by construction (classes are
    // disjoint and a sibling never equals its representative).
    let mut selection: Vec<usize> = reps
        .iter()
        .copied()
        .chain(siblings.iter().filter_map(|s| *s))
        .collect();
    selection.sort_unstable();
    let sub = DefectUniverse::from_defects(
        selection
            .iter()
            .map(|&d| universe.defects()[d].clone())
            .collect(),
    );
    let sub_result = run_campaign(
        dut,
        &sub,
        &CampaignOptions {
            sample_size: None,
            seed: options.seed,
            threads: options.threads,
            defect_deadline: options.defect_deadline,
            newton_budget: options.newton_budget,
            index_range: None,
            checkpoint: None,
        },
        test,
    )?;
    // Map sub-universe records back to full-universe defect indices.
    let outcome_of: HashMap<usize, SimOutcome> = sub_result
        .records
        .iter()
        .map(|r| (selection[r.defect_index], r.outcome))
        .collect();
    let lookup = |d: usize| -> SimOutcome {
        *outcome_of
            .get(&d)
            .expect("every selected defect has a record")
    };

    // Assemble per-class outcomes and extrapolate over the universe.
    // Simulated defects (representative + audited sibling) always keep
    // their own verdicts. The other members inherit the representative's
    // verdict — unless the sibling refuted the class, in which case the
    // equivalence claim is dead and the unsimulated members become
    // unknown, straddling the coverage bounds instead of inheriting a
    // verdict the partition no longer justifies.
    let mut classes = Vec::with_capacity(partition.len());
    let mut extrapolated: Vec<(f64, Option<bool>)> = vec![(0.0, None); universe.len()];
    for (ci, class) in partition.iter().enumerate() {
        let outcome = lookup(reps[ci]);
        let class_outcome = ClassOutcome {
            class_index: ci,
            size: class.len(),
            representative: reps[ci],
            outcome,
            sibling: siblings[ci],
            sibling_outcome: siblings[ci].map(&lookup),
        };
        let rep_verdict = outcome.completed().map(|o| o.detected);
        let inherited = if class_outcome.disagrees() {
            None
        } else {
            rep_verdict
        };
        for &d in class {
            let verdict = if d == reps[ci] {
                rep_verdict
            } else if Some(d) == siblings[ci] {
                class_outcome
                    .sibling_outcome
                    .and_then(|o| o.completed().map(|c| c.detected))
            } else {
                inherited
            };
            extrapolated[d] = (universe.defects()[d].likelihood, verdict);
        }
        classes.push(class_outcome);
    }

    let result = ClassCampaignResult {
        classes,
        universe_size: universe.len(),
        simulated: selection.len(),
        total_wall: start.elapsed(),
        extrapolated,
    };
    symbist_obs::counter!(
        "symbist_analysis_class_violations_total",
        "Representative-vs-sibling detection disagreements in class-representative campaigns"
    )
    .add(result.violation_count() as u64);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::likelihood::LikelihoodModel;
    use symbist_adc::fault::{
        check_site, BlockKind, ComponentInfo, ComponentKind, DefectKind, DefectSite,
    };

    /// A toy DUT whose detection rule is configurable per test.
    #[derive(Clone)]
    struct ToyDut {
        catalog: Vec<ComponentInfo>,
        injected: Option<DefectSite>,
    }

    impl ToyDut {
        fn new(n: usize) -> Self {
            let catalog = (0..n)
                .map(|i| ComponentInfo {
                    block: BlockKind::ScArray,
                    name: format!("c{i}"),
                    kind: ComponentKind::Resistor,
                    area: 1.0 + i as f64,
                })
                .collect();
            Self {
                catalog,
                injected: None,
            }
        }
    }

    impl Faultable for ToyDut {
        fn components(&self) -> &[ComponentInfo] {
            &self.catalog
        }
        fn inject(&mut self, site: DefectSite) {
            check_site(&self.catalog, site);
            self.injected = Some(site);
        }
        fn clear_defects(&mut self) {
            self.injected = None;
        }
        fn injected(&self) -> Option<DefectSite> {
            self.injected
        }
    }

    fn outcome(detected: bool) -> crate::campaign::TestOutcome {
        crate::campaign::TestOutcome {
            detected,
            detection_cycle: detected.then_some(1),
            cycles_run: 1,
        }
    }

    /// Detection depends only on the defect kind — so a by-kind partition
    /// is genuinely exact.
    fn by_kind_test(dut: &ToyDut) -> crate::campaign::TestOutcome {
        outcome(dut.injected().map(|s| s.kind.is_short()).unwrap_or(false))
    }

    /// Groups the universe's defect indices by kind.
    fn by_kind_partition(uni: &DefectUniverse) -> Vec<Vec<usize>> {
        let mut by_kind: std::collections::BTreeMap<String, Vec<usize>> = Default::default();
        for (i, d) in uni.iter().enumerate() {
            by_kind.entry(d.site.kind.to_string()).or_default().push(i);
        }
        by_kind.into_values().collect()
    }

    #[test]
    fn exact_partition_matches_exhaustive_coverage() {
        let dut = ToyDut::new(6);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        let partition = by_kind_partition(&uni);
        let res = run_class_campaign(
            &dut,
            &uni,
            &partition,
            &ClassCampaignOptions {
                cross_check_fraction: 1.0,
                ..Default::default()
            },
            by_kind_test,
        )
        .unwrap();
        // One representative + one sibling per (multi-member) class.
        assert_eq!(res.representatives(), partition.len());
        assert_eq!(res.cross_checked(), partition.len());
        assert_eq!(res.simulated, 2 * partition.len());
        assert!(res.simulated < uni.len());
        assert_eq!(res.defects_saved(), uni.len() - res.simulated);
        // The partition is truly exact: no violations, and the
        // extrapolated coverage equals the exhaustive figure bit-for-bit.
        assert_eq!(res.violation_count(), 0);
        let exhaustive = run_campaign(&dut, &uni, &CampaignOptions::default(), by_kind_test)
            .unwrap()
            .coverage();
        assert_eq!(res.coverage().value, exhaustive.value);
        // Everything completed, so the bounds coincide.
        let (lo, hi) = res.coverage_bounds();
        assert_eq!(lo.value, hi.value);
    }

    #[test]
    fn lying_partition_is_refuted_by_the_sibling() {
        // Detection depends on the *component*, but the partition lumps
        // all shorts together — the representative (component 0, detected)
        // disagrees with any sibling (components 1.., escapes).
        let dut = ToyDut::new(4);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        let mut shorts = Vec::new();
        let mut rest = Vec::new();
        for (i, d) in uni.iter().enumerate() {
            if d.site.kind == DefectKind::Short {
                shorts.push(i);
            } else {
                rest.push(vec![i]);
            }
        }
        let mut partition = vec![shorts];
        partition.extend(rest);
        let res = run_class_campaign(
            &dut,
            &uni,
            &partition,
            &ClassCampaignOptions {
                cross_check_fraction: 1.0,
                ..Default::default()
            },
            |d: &ToyDut| {
                outcome(
                    d.injected()
                        .map(|s| s.kind.is_short() && s.component == 0)
                        .unwrap_or(false),
                )
            },
        )
        .unwrap();
        assert_eq!(res.violation_count(), 1);
        let v = res.violations().next().unwrap();
        assert_eq!(v.class_index, 0);
        assert_eq!(v.size, 4);
        assert!(v.outcome.detected(), "representative is component 0");
        assert!(!v.sibling_outcome.unwrap().detected());
        // The refuted class stops extrapolating: its two unsimulated
        // members turn unknown, so the bounds straddle them, while the
        // simulated pair keeps its own (disagreeing) verdicts.
        let (lo, hi) = res.coverage_bounds();
        assert!(lo.value < hi.value);
    }

    #[test]
    fn malformed_partitions_are_rejected() {
        let dut = ToyDut::new(2);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        let all: Vec<usize> = (0..uni.len()).collect();
        let cases: Vec<(Vec<Vec<usize>>, &str)> = vec![
            (vec![all.clone(), vec![]], "empty class"),
            (vec![all.clone(), vec![uni.len() + 3]], "out of range"),
            (vec![all.clone(), vec![0]], "duplicate"),
            (vec![all[1..].to_vec()], "uncovered defect"),
        ];
        for (partition, what) in cases {
            let err = run_class_campaign(
                &dut,
                &uni,
                &partition,
                &ClassCampaignOptions::default(),
                by_kind_test,
            )
            .unwrap_err();
            assert!(
                matches!(err, ClassCampaignError::InvalidPartition { .. }),
                "{what}: got {err}"
            );
        }
    }

    #[test]
    fn sibling_draw_is_deterministic() {
        let dut = ToyDut::new(8);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        let partition = by_kind_partition(&uni);
        let opts = ClassCampaignOptions {
            seed: 42,
            cross_check_fraction: 0.5,
            threads: 3,
            ..Default::default()
        };
        let a = run_class_campaign(&dut, &uni, &partition, &opts, by_kind_test).unwrap();
        let b = run_class_campaign(&dut, &uni, &partition, &opts, by_kind_test).unwrap();
        assert_eq!(a.classes, b.classes);
        assert_eq!(a.coverage().value, b.coverage().value);
    }

    #[test]
    fn cross_check_can_be_disabled() {
        let dut = ToyDut::new(5);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        let partition = by_kind_partition(&uni);
        let res = run_class_campaign(
            &dut,
            &uni,
            &partition,
            &ClassCampaignOptions {
                cross_check_fraction: 0.0,
                ..Default::default()
            },
            by_kind_test,
        )
        .unwrap();
        assert_eq!(res.simulated, partition.len());
        assert_eq!(res.cross_checked(), 0);
        assert_eq!(res.violation_count(), 0);
        assert!(res.classes.iter().all(|c| c.sibling.is_none()));
    }

    #[test]
    fn unresolved_representative_widens_the_bounds() {
        use symbist_circuit::error::CircuitError;
        let dut = ToyDut::new(3);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        let partition = by_kind_partition(&uni);
        // Shorts never converge; everything else escapes.
        let res = run_class_campaign(
            &dut,
            &uni,
            &partition,
            &ClassCampaignOptions::default(),
            |d: &ToyDut| -> Result<crate::campaign::TestOutcome, CircuitError> {
                if d.injected().map(|s| s.kind.is_short()).unwrap_or(false) {
                    Err(CircuitError::NoConvergence {
                        analysis: "dc",
                        iterations: 200,
                    })
                } else {
                    Ok(outcome(false))
                }
            },
        )
        .unwrap();
        // An unresolved representative never counts as a violation, and
        // its class straddles the coverage bounds.
        assert_eq!(res.violation_count(), 0);
        let (lo, hi) = res.coverage_bounds();
        assert!(lo.value < hi.value);
        assert_eq!(lo.value, 0.0);
    }
}
