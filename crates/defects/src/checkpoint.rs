//! JSONL checkpoint serialization for campaign records.
//!
//! One [`DefectRecord`] per line, as a flat JSON object with a fixed key
//! set — hand-rolled on purpose (no serde in the dependency tree). The
//! format must round-trip *bit-identically*: a resumed campaign replays
//! loaded records into the final result, and the acceptance test for
//! resume compares records with `==` on `f64` fields. `f64` values are
//! written with Rust's shortest-roundtrip `Display`, which guarantees
//! `parse::<f64>()` recovers the exact bits for every finite value; wall
//! time is written as integer nanoseconds.
//!
//! The parser is deliberately tolerant: any line that does not parse —
//! including a torn final line left by a killed process — is skipped by
//! the loader, and unknown keys are ignored, so the format can grow
//! fields without invalidating old checkpoints.
//!
//! ## Line format
//!
//! ```json
//! {"defect_index":12,"component":3,"kind":"short","likelihood":1.5,
//!  "outcome":"completed","detected":true,"detection_cycle":3,
//!  "cycles_run":3,"wall_ns":51234}
//! {"defect_index":13,"component":3,"kind":"open","likelihood":0.5,
//!  "outcome":"unresolved","reason":"timeout","wall_ns":2000051234}
//! ```
//! (shown wrapped; real lines are single-line)

use std::fmt::Write as _;
use std::time::Duration;

use symbist_adc::fault::{DefectKind, DefectSite};

use crate::campaign::{DefectRecord, SimOutcome, TestOutcome, UnresolvedReason};

/// Serializes one record as a single JSON line (no trailing newline).
pub fn checkpoint_line(record: &DefectRecord) -> String {
    line_with(record, true)
}

/// The deterministic projection of a record: the checkpoint line minus
/// `wall_ns`, the only field that differs between two runs of the same
/// defect. This is what the coordinator writes to its merged artifact and
/// what the chaos gate compares byte-for-byte against the 1-process
/// oracle — every remaining field (`defect_index`, site, bit-exact
/// likelihood, outcome) is a pure function of the universe and the seed.
pub fn merged_line(record: &DefectRecord) -> String {
    line_with(record, false)
}

fn line_with(record: &DefectRecord, include_wall: bool) -> String {
    let mut s = String::with_capacity(160);
    let _ = write!(
        s,
        "{{\"defect_index\":{},\"component\":{},\"kind\":\"{}\",\"likelihood\":{}",
        record.defect_index,
        record.site.component,
        record.site.kind.label(),
        record.likelihood,
    );
    match record.outcome {
        SimOutcome::Completed(o) => {
            let _ = write!(s, ",\"outcome\":\"completed\",\"detected\":{}", o.detected);
            match o.detection_cycle {
                Some(c) => {
                    let _ = write!(s, ",\"detection_cycle\":{c}");
                }
                None => s.push_str(",\"detection_cycle\":null"),
            }
            let _ = write!(s, ",\"cycles_run\":{}", o.cycles_run);
        }
        SimOutcome::Unresolved(reason) => {
            let _ = write!(
                s,
                ",\"outcome\":\"unresolved\",\"reason\":\"{}\"",
                reason.label()
            );
        }
    }
    if include_wall {
        let _ = write!(s, ",\"wall_ns\":{}", record.wall.as_nanos());
    }
    s.push('}');
    s
}

/// Extracts the raw value token following `"key":` in a flat JSON line.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    // Values are numbers, booleans, null, or label strings without commas
    // or braces, so scanning to the next delimiter is unambiguous.
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim())
}

fn string_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    field(line, key)?
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
}

/// Parses one checkpoint line. Returns `None` on any malformed input
/// (tolerant-parser contract: the loader skips such lines).
pub fn parse_checkpoint_line(line: &str) -> Option<DefectRecord> {
    let line = line.trim();
    if !line.starts_with('{') || !line.ends_with('}') {
        return None;
    }
    let defect_index: usize = field(line, "defect_index")?.parse().ok()?;
    let component: usize = field(line, "component")?.parse().ok()?;
    let kind = DefectKind::from_label(string_field(line, "kind")?)?;
    let likelihood: f64 = field(line, "likelihood")?.parse().ok()?;
    let outcome = match string_field(line, "outcome")? {
        "completed" => {
            let detected: bool = field(line, "detected")?.parse().ok()?;
            let detection_cycle = match field(line, "detection_cycle")? {
                "null" => None,
                v => Some(v.parse::<u32>().ok()?),
            };
            let cycles_run: u32 = field(line, "cycles_run")?.parse().ok()?;
            SimOutcome::Completed(TestOutcome {
                detected,
                detection_cycle,
                cycles_run,
            })
        }
        "unresolved" => {
            SimOutcome::Unresolved(UnresolvedReason::from_label(string_field(line, "reason")?)?)
        }
        _ => return None,
    };
    let wall_ns: u128 = field(line, "wall_ns")?.parse().ok()?;
    let wall = Duration::new(
        (wall_ns / 1_000_000_000) as u64,
        (wall_ns % 1_000_000_000) as u32,
    );
    Some(DefectRecord {
        defect_index,
        site: DefectSite { component, kind },
        likelihood,
        outcome,
        wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completed(detected: bool) -> SimOutcome {
        SimOutcome::Completed(TestOutcome {
            detected,
            detection_cycle: detected.then_some(7),
            cycles_run: if detected { 7 } else { 192 },
        })
    }

    fn record(outcome: SimOutcome) -> DefectRecord {
        DefectRecord {
            defect_index: 42,
            site: DefectSite {
                component: 9,
                kind: DefectKind::ShortGd,
            },
            // Deliberately not exactly representable in short decimal form.
            likelihood: 0.1 + 0.2,
            outcome,
            wall: Duration::new(3, 141_592_653),
        }
    }

    #[test]
    fn roundtrip_completed() {
        for detected in [true, false] {
            let r = record(completed(detected));
            let line = checkpoint_line(&r);
            let back = parse_checkpoint_line(&line).expect("parses");
            assert_eq!(back, r);
        }
    }

    #[test]
    fn roundtrip_unresolved_reasons() {
        for reason in [
            UnresolvedReason::NoConvergence,
            UnresolvedReason::Timeout,
            UnresolvedReason::Panic,
        ] {
            let r = record(SimOutcome::Unresolved(reason));
            let back = parse_checkpoint_line(&checkpoint_line(&r)).expect("parses");
            assert_eq!(back, r);
        }
    }

    #[test]
    fn f64_roundtrip_is_bit_identical() {
        // Shortest-roundtrip Display must recover the exact bits, even for
        // likelihoods whose decimal expansion is ugly.
        for bits_seed in [0.1 + 0.2, 1.0 / 3.0, 2.5e-17, 123456.789_012_345_6] {
            let mut r = record(completed(true));
            r.likelihood = bits_seed;
            let back = parse_checkpoint_line(&checkpoint_line(&r)).unwrap();
            assert_eq!(back.likelihood.to_bits(), r.likelihood.to_bits());
        }
    }

    #[test]
    fn wall_roundtrips_to_the_nanosecond() {
        let mut r = record(completed(false));
        r.wall = Duration::new(86_400, 999_999_999);
        let back = parse_checkpoint_line(&checkpoint_line(&r)).unwrap();
        assert_eq!(back.wall, r.wall);
    }

    #[test]
    fn malformed_lines_are_rejected_not_panicked() {
        let good = checkpoint_line(&record(completed(true)));
        for bad in [
            "",
            "not json",
            "{\"defect_index\":1}",
            "{\"defect_index\":\"x\",\"component\":0}",
            &good[..good.len() / 2], // torn line from a killed process
            "{\"defect_index\":1,\"component\":0,\"kind\":\"bogus\",\"likelihood\":1,\"outcome\":\"completed\",\"detected\":true,\"detection_cycle\":null,\"cycles_run\":1,\"wall_ns\":0}",
            "{\"defect_index\":1,\"component\":0,\"kind\":\"short\",\"likelihood\":1,\"outcome\":\"weird\",\"wall_ns\":0}",
        ] {
            assert!(parse_checkpoint_line(bad).is_none(), "accepted: {bad}");
        }
        // The reference line itself still parses.
        assert!(parse_checkpoint_line(&good).is_some());
    }

    #[test]
    fn merged_line_is_checkpoint_line_minus_wall() {
        for outcome in [
            completed(true),
            SimOutcome::Unresolved(UnresolvedReason::Timeout),
        ] {
            let mut a = record(outcome);
            let mut b = a;
            a.wall = Duration::from_nanos(1);
            b.wall = Duration::from_secs(99);
            // Wall differences vanish under the projection...
            assert_eq!(merged_line(&a), merged_line(&b));
            assert!(!merged_line(&a).contains("wall_ns"));
            // ...and the projection is a strict prefix of the full line.
            let full = checkpoint_line(&a);
            let merged = merged_line(&a);
            assert!(full.starts_with(&merged[..merged.len() - 1]));
        }
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let r = record(completed(true));
        let line = checkpoint_line(&r);
        let extended = format!("{},\"future_field\":\"abc\"}}", &line[..line.len() - 1]);
        assert_eq!(parse_checkpoint_line(&extended), Some(r));
    }
}
