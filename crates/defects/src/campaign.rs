//! The defect-simulation campaign runner: the reproduction's equivalent of
//! Tessent DefectSim's automated flow (paper §V).
//!
//! A campaign takes a defect-free DUT, a [`DefectUniverse`], and a test
//! closure; for each (possibly LWRS-sampled) defect it clones the DUT,
//! injects the defect, runs the test, and records detection plus wall
//! time. Work is spread across std scoped threads — the paper ran its
//! campaign on a 16-core server — with deterministic result ordering
//! regardless of scheduling. Records identify their defect by index into
//! the universe (plus the small `Copy` site and likelihood needed by the
//! coverage estimator), so no per-record `Defect` clone is made.

use std::time::{Duration, Instant};

use symbist_adc::fault::{DefectSite, Faultable};
use symbist_circuit::rng::Rng;

use crate::coverage::{lw_coverage_exhaustive, lw_coverage_sampled, Coverage};
use crate::universe::{Defect, DefectUniverse};

/// Result of testing one defective DUT instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestOutcome {
    /// Whether any checker flagged the defect.
    pub detected: bool,
    /// Clock cycle (within the whole BIST run) of first detection.
    pub detection_cycle: Option<u32>,
    /// Cycles actually simulated (smaller than the full test length when
    /// stop-on-detection is active).
    pub cycles_run: u32,
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// `Some(n)`: draw `n` defects by Likelihood-Weighted Random Sampling
    /// (LWRS, §V) without replacement. `None`: simulate the entire
    /// universe.
    ///
    /// The sample detection fraction estimates the L-W coverage only while
    /// `n` is a small fraction of the universe (the paper samples ~9 % of
    /// SUBDAC defects); at large sampling fractions the without-replacement
    /// draw exhausts the high-likelihood defects and the estimate drifts
    /// toward the unweighted coverage. Keep `n/universe` below ~20 %, or
    /// simulate exhaustively.
    pub sample_size: Option<usize>,
    /// RNG seed for the LWRS draw.
    pub seed: u64,
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        Self {
            sample_size: None,
            seed: 0x5EED,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Per-defect campaign record.
///
/// The record references its defect by index into the originating
/// [`DefectUniverse`] instead of cloning the whole `Defect` (whose
/// `component_name` string would otherwise be duplicated once per record);
/// the `Copy`-sized site and likelihood are duplicated because the coverage
/// estimator and escape analysis need them without the universe in hand.
#[derive(Debug, Clone, Copy)]
pub struct DefectRecord {
    /// Index of the simulated defect in the originating universe.
    pub defect_index: usize,
    /// The defect site (what was injected where).
    pub site: DefectSite,
    /// Relative likelihood copied from the universe entry.
    pub likelihood: f64,
    /// Test outcome.
    pub outcome: TestOutcome,
    /// Wall-clock simulation time for this defect.
    pub wall: Duration,
}

impl DefectRecord {
    /// Resolves the full defect description in the originating universe.
    ///
    /// # Panics
    ///
    /// Panics if `universe` is not the universe the campaign ran over.
    pub fn defect<'a>(&self, universe: &'a DefectUniverse) -> &'a Defect {
        &universe.defects()[self.defect_index]
    }
}

/// Full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// One record per simulated defect, in deterministic (sample) order.
    pub records: Vec<DefectRecord>,
    /// Size of the underlying universe.
    pub universe_size: usize,
    /// Total likelihood of the underlying universe.
    pub universe_likelihood: f64,
    /// Whether LWRS sampling was used.
    pub sampled: bool,
    /// Total campaign wall time.
    pub total_wall: Duration,
}

impl CampaignResult {
    /// Number of defects simulated.
    pub fn simulated(&self) -> usize {
        self.records.len()
    }

    /// Number detected.
    pub fn detected(&self) -> usize {
        self.records.iter().filter(|r| r.outcome.detected).count()
    }

    /// The L-W coverage (with CI when sampled).
    ///
    /// # Panics
    ///
    /// Panics if the campaign simulated nothing.
    pub fn coverage(&self) -> Coverage {
        assert!(!self.records.is_empty(), "empty campaign");
        if self.sampled {
            lw_coverage_sampled(self.detected(), self.simulated(), self.universe_size)
        } else {
            let outcomes: Vec<(f64, bool)> = self
                .records
                .iter()
                .map(|r| (r.likelihood, r.outcome.detected))
                .collect();
            lw_coverage_exhaustive(&outcomes)
        }
    }

    /// Records of defects that escaped (not detected).
    pub fn escapes(&self) -> impl Iterator<Item = &DefectRecord> {
        self.records.iter().filter(|r| !r.outcome.detected)
    }
}

/// Runs a campaign.
///
/// The test closure receives a DUT clone with the defect already injected;
/// it must return the [`TestOutcome`]. It is invoked from multiple threads.
///
/// # Panics
///
/// Panics if the universe is empty or `sample_size` is zero/too large.
pub fn run_campaign<D, F>(
    dut: &D,
    universe: &DefectUniverse,
    options: &CampaignOptions,
    test: F,
) -> CampaignResult
where
    D: Faultable + Clone + Send + Sync,
    F: Fn(&D) -> TestOutcome + Sync,
{
    assert!(!universe.is_empty(), "empty defect universe");
    let start = Instant::now();

    // LWRS draw (or the full universe), as indices into the universe.
    let selected: Vec<usize> = match options.sample_size {
        Some(n) => {
            assert!(n > 0, "sample size must be positive");
            assert!(
                n <= universe.len(),
                "sample size {n} exceeds universe {}",
                universe.len()
            );
            let weights: Vec<f64> = universe.iter().map(|d| d.likelihood).collect();
            let mut rng = Rng::seed_from_u64(options.seed);
            let mut idx = rng.weighted_sample_without_replacement(&weights, n);
            idx.sort_unstable();
            idx
        }
        None => (0..universe.len()).collect(),
    };

    let threads = options.threads.max(1).min(selected.len());
    let mut slots: Vec<Option<DefectRecord>> = vec![None; selected.len()];

    std::thread::scope(|scope| {
        let chunk = selected.len().div_ceil(threads);
        let mut remaining: &mut [Option<DefectRecord>] = &mut slots;
        for t in 0..threads {
            let lo = t * chunk;
            if lo >= selected.len() {
                break;
            }
            let hi = ((t + 1) * chunk).min(selected.len());
            let (head, tail) = remaining.split_at_mut(hi - lo);
            remaining = tail;
            let indices = &selected[lo..hi];
            let test = &test;
            scope.spawn(move || {
                for (slot, &defect_index) in head.iter_mut().zip(indices) {
                    let defect = &universe.defects()[defect_index];
                    let mut instance = dut.clone();
                    instance.inject(defect.site);
                    let t0 = Instant::now();
                    let outcome = test(&instance);
                    *slot = Some(DefectRecord {
                        defect_index,
                        site: defect.site,
                        likelihood: defect.likelihood,
                        outcome,
                        wall: t0.elapsed(),
                    });
                }
            });
        }
    });

    CampaignResult {
        records: slots
            .into_iter()
            .map(|s| s.expect("all slots filled"))
            .collect(),
        universe_size: universe.len(),
        universe_likelihood: universe.total_likelihood(),
        sampled: options.sample_size.is_some(),
        total_wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::likelihood::LikelihoodModel;
    use symbist_adc::fault::{check_site, BlockKind, ComponentInfo, ComponentKind, DefectSite};

    /// A toy DUT: detection iff the injected defect is a short.
    #[derive(Clone)]
    struct ToyDut {
        catalog: Vec<ComponentInfo>,
        injected: Option<DefectSite>,
    }

    impl ToyDut {
        fn new(n: usize) -> Self {
            let catalog = (0..n)
                .map(|i| ComponentInfo {
                    block: BlockKind::ScArray,
                    name: format!("c{i}"),
                    kind: ComponentKind::Resistor,
                    area: 1.0 + i as f64,
                })
                .collect();
            Self {
                catalog,
                injected: None,
            }
        }
    }

    impl Faultable for ToyDut {
        fn components(&self) -> &[ComponentInfo] {
            &self.catalog
        }
        fn inject(&mut self, site: DefectSite) {
            check_site(&self.catalog, site);
            self.injected = Some(site);
        }
        fn clear_defects(&mut self) {
            self.injected = None;
        }
        fn injected(&self) -> Option<DefectSite> {
            self.injected
        }
    }

    fn toy_test(dut: &ToyDut) -> TestOutcome {
        let detected = dut.injected().map(|s| s.kind.is_short()).unwrap_or(false);
        TestOutcome {
            detected,
            detection_cycle: detected.then_some(3),
            cycles_run: if detected { 3 } else { 192 },
        }
    }

    #[test]
    fn exhaustive_campaign_covers_all() {
        let dut = ToyDut::new(4);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        let res = run_campaign(&dut, &uni, &CampaignOptions::default(), toy_test);
        assert_eq!(res.simulated(), uni.len());
        assert!(!res.sampled);
        // Shorts detected: weight 3 of (3+1+0.5) per component.
        let cov = res.coverage();
        assert!(
            (cov.value - 3.0 / 4.5).abs() < 1e-12,
            "coverage {}",
            cov.value
        );
        assert!(cov.ci_half_width.is_none());
    }

    #[test]
    fn sampled_campaign_is_deterministic() {
        let dut = ToyDut::new(10);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        let opts = CampaignOptions {
            sample_size: Some(12),
            seed: 7,
            threads: 4,
        };
        let a = run_campaign(&dut, &uni, &opts, toy_test);
        let b = run_campaign(&dut, &uni, &opts, toy_test);
        assert_eq!(a.simulated(), 12);
        let names_a: Vec<&str> = a
            .records
            .iter()
            .map(|r| r.defect(&uni).component_name.as_str())
            .collect();
        let names_b: Vec<&str> = b
            .records
            .iter()
            .map(|r| r.defect(&uni).component_name.as_str())
            .collect();
        assert_eq!(names_a, names_b);
        assert!(a.sampled);
        assert!(a.coverage().ci_half_width.is_some());
    }

    #[test]
    fn sampling_estimates_exhaustive_coverage() {
        // Average the LWRS estimator over several seeds at a ~10 % sampling
        // fraction: the mean must approach the exhaustive L-W coverage.
        let dut = ToyDut::new(100);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        let exhaustive = run_campaign(&dut, &uni, &CampaignOptions::default(), toy_test)
            .coverage()
            .value;
        let mut acc = 0.0;
        let seeds = 20;
        for seed in 0..seeds {
            let sampled = run_campaign(
                &dut,
                &uni,
                &CampaignOptions {
                    sample_size: Some(40),
                    seed,
                    threads: 2,
                },
                toy_test,
            )
            .coverage();
            acc += sampled.value;
        }
        let mean = acc / seeds as f64;
        assert!(
            (mean - exhaustive).abs() < 0.08,
            "mean sampled {mean} vs exhaustive {exhaustive}"
        );
    }

    #[test]
    fn stop_on_detection_shortens_cycles() {
        let dut = ToyDut::new(5);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        let res = run_campaign(&dut, &uni, &CampaignOptions::default(), toy_test);
        for r in &res.records {
            if r.outcome.detected {
                assert!(r.outcome.cycles_run < 192);
            } else {
                assert_eq!(r.outcome.cycles_run, 192);
            }
        }
        // Escapes iterator complements detections.
        assert_eq!(res.escapes().count() + res.detected(), res.simulated());
    }

    #[test]
    fn single_thread_works() {
        let dut = ToyDut::new(3);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        let res = run_campaign(
            &dut,
            &uni,
            &CampaignOptions {
                threads: 1,
                ..Default::default()
            },
            toy_test,
        );
        assert_eq!(res.simulated(), uni.len());
    }

    #[test]
    #[should_panic]
    fn oversized_sample_panics() {
        let dut = ToyDut::new(2);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        run_campaign(
            &dut,
            &uni,
            &CampaignOptions {
                sample_size: Some(10_000),
                ..Default::default()
            },
            toy_test,
        );
    }
}
