//! The defect-simulation campaign runner: the reproduction's equivalent of
//! Tessent DefectSim's automated flow (paper §V).
//!
//! A campaign takes a defect-free DUT, a [`DefectUniverse`], and a test
//! closure; for each (possibly LWRS-sampled) defect it clones the DUT,
//! injects the defect, runs the test, and records detection plus wall
//! time. Records identify their defect by index into the universe (plus
//! the small `Copy` site and likelihood needed by the coverage estimator),
//! so no per-record `Defect` clone is made.
//!
//! # Fault tolerance
//!
//! The campaign is the longest-running workload in the repo, and a defect
//! universe deliberately contains circuits at the edge of solvability —
//! shorts that make networks singular, opens that float nodes, feedback
//! loops that send Newton into deep continuation. The runner therefore
//! treats every per-defect simulation as fallible:
//!
//! * each defect runs under [`std::panic::catch_unwind`] (DUT clones are
//!   per-defect, so a panicking instance taints no shared state);
//! * a per-defect budget — wall-clock deadline and/or Newton iteration
//!   count — is installed as a thread [`SolveBudget`] so one pathological
//!   circuit cannot stall a worker forever;
//! * work is distributed by an atomic work-stealing cursor, so a slow
//!   defect delays only itself, not a statically-assigned chunk;
//! * defects that do not produce a verdict are recorded as
//!   [`SimOutcome::Unresolved`] with a typed [`UnresolvedReason`], and
//!   coverage is reported as a bound pair (unresolved counted as escapes
//!   for the lower bound, as detections for the upper) — never silently;
//! * completed records stream to an optional JSONL checkpoint file, and an
//!   interrupted campaign resumes by skipping already-recorded defects.

use std::collections::HashMap;
use std::fmt;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use symbist_adc::fault::{DefectSite, Faultable};
use symbist_circuit::dc::{set_thread_solve_budget, SolveBudget};
use symbist_circuit::error::CircuitError;
use symbist_circuit::rng::Rng;
use symbist_obs::fault::FaultAction;

use crate::checkpoint::{checkpoint_line, parse_checkpoint_line};
use crate::coverage::{lw_coverage_exhaustive, lw_coverage_sampled, Coverage};
use crate::universe::{Defect, DefectUniverse};

/// Result of testing one defective DUT instance that ran to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestOutcome {
    /// Whether any checker flagged the defect.
    pub detected: bool,
    /// Clock cycle (within the whole BIST run) of first detection.
    pub detection_cycle: Option<u32>,
    /// Cycles actually simulated (smaller than the full test length when
    /// stop-on-detection is active).
    pub cycles_run: u32,
}

/// Why a defect simulation failed to produce a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnresolvedReason {
    /// The solver gave up (singular matrix or Newton non-convergence):
    /// the defective circuit has no computable operating point.
    NoConvergence,
    /// The per-defect budget (wall-clock deadline or Newton iteration
    /// count, see [`CampaignOptions::defect_deadline`]) ran out.
    Timeout,
    /// The test closure panicked; the worker caught the unwind and moved
    /// on to the next defect.
    Panic,
}

impl UnresolvedReason {
    /// Stable label used in checkpoint files and reports.
    pub fn label(self) -> &'static str {
        match self {
            UnresolvedReason::NoConvergence => "no-convergence",
            UnresolvedReason::Timeout => "timeout",
            UnresolvedReason::Panic => "panic",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(label: &str) -> Option<UnresolvedReason> {
        match label {
            "no-convergence" => Some(UnresolvedReason::NoConvergence),
            "timeout" => Some(UnresolvedReason::Timeout),
            "panic" => Some(UnresolvedReason::Panic),
            _ => None,
        }
    }
}

impl fmt::Display for UnresolvedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Three-way outcome of one defect simulation: either the test ran to a
/// verdict, or it is unresolved for a typed reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimOutcome {
    /// The test produced a pass/fail verdict.
    Completed(TestOutcome),
    /// No verdict: the simulation crashed, diverged, or ran out of budget.
    Unresolved(UnresolvedReason),
}

impl SimOutcome {
    /// Whether the defect was positively detected (unresolved is `false`:
    /// detection claims require a completed run).
    pub fn detected(&self) -> bool {
        matches!(self, SimOutcome::Completed(o) if o.detected)
    }

    /// Whether the simulation failed to produce a verdict.
    pub fn is_unresolved(&self) -> bool {
        matches!(self, SimOutcome::Unresolved(_))
    }

    /// The completed verdict, if any.
    pub fn completed(&self) -> Option<TestOutcome> {
        match self {
            SimOutcome::Completed(o) => Some(*o),
            SimOutcome::Unresolved(_) => None,
        }
    }

    /// The unresolved reason, if any.
    pub fn unresolved_reason(&self) -> Option<UnresolvedReason> {
        match self {
            SimOutcome::Completed(_) => None,
            SimOutcome::Unresolved(r) => Some(*r),
        }
    }
}

impl From<TestOutcome> for SimOutcome {
    fn from(outcome: TestOutcome) -> Self {
        SimOutcome::Completed(outcome)
    }
}

impl From<CircuitError> for UnresolvedReason {
    fn from(e: CircuitError) -> Self {
        match e {
            CircuitError::BudgetExhausted { .. } => UnresolvedReason::Timeout,
            _ => UnresolvedReason::NoConvergence,
        }
    }
}

impl From<Result<TestOutcome, CircuitError>> for SimOutcome {
    fn from(r: Result<TestOutcome, CircuitError>) -> Self {
        match r {
            Ok(outcome) => SimOutcome::Completed(outcome),
            Err(e) => SimOutcome::Unresolved(e.into()),
        }
    }
}

impl From<Result<SimOutcome, CircuitError>> for SimOutcome {
    fn from(r: Result<SimOutcome, CircuitError>) -> Self {
        match r {
            Ok(outcome) => outcome,
            Err(e) => SimOutcome::Unresolved(e.into()),
        }
    }
}

/// Errors produced by [`run_campaign`] before or during execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum CampaignError {
    /// The defect universe contains no defects.
    EmptyUniverse,
    /// `sample_size` was zero or exceeded the universe.
    InvalidSampleSize {
        /// The requested sample size.
        requested: usize,
        /// The universe size it must fit in.
        universe: usize,
    },
    /// The checkpoint file could not be opened or written.
    Checkpoint {
        /// Path of the checkpoint file.
        path: PathBuf,
        /// Underlying I/O failure.
        reason: String,
    },
    /// `index_range` was empty or exceeded the universe.
    InvalidRange {
        /// Inclusive lower catalog index.
        lo: usize,
        /// Exclusive upper catalog index.
        hi: usize,
        /// The universe size it must fit in.
        universe: usize,
    },
    /// The campaign could not be set up: its DUT reference did not
    /// resolve or its engine failed to build. Distinct from spec
    /// validation errors — those are caught at submit time; `Setup`
    /// covers state that changed between admission and execution.
    Setup {
        /// What failed to resolve or build.
        reason: String,
    },
    /// The campaign's [`CampaignMonitor`] requested cancellation before
    /// every selected defect was simulated. Records completed so far are
    /// already flushed to the checkpoint (when one is configured), so a
    /// later run with the same options resumes where this one stopped.
    Cancelled {
        /// Records completed (resumed + freshly simulated) before the stop.
        completed: usize,
        /// Defects that were selected for simulation in total.
        selected: usize,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::EmptyUniverse => write!(f, "empty defect universe"),
            CampaignError::InvalidSampleSize {
                requested,
                universe,
            } => {
                write!(
                    f,
                    "sample size {requested} invalid for a universe of {universe} defects"
                )
            }
            CampaignError::InvalidRange { lo, hi, universe } => {
                write!(
                    f,
                    "index range [{lo}, {hi}) invalid for a universe of {universe} defects"
                )
            }
            CampaignError::Checkpoint { path, reason } => {
                write!(f, "checkpoint {}: {reason}", path.display())
            }
            CampaignError::Setup { reason } => {
                write!(f, "campaign setup failed: {reason}")
            }
            CampaignError::Cancelled {
                completed,
                selected,
            } => {
                write!(f, "campaign cancelled after {completed}/{selected} defects")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// `Some(n)`: draw `n` defects by Likelihood-Weighted Random Sampling
    /// (LWRS, §V) without replacement. `None`: simulate the entire
    /// universe.
    ///
    /// The sample detection fraction estimates the L-W coverage only while
    /// `n` is a small fraction of the universe (the paper samples ~9 % of
    /// SUBDAC defects); at large sampling fractions the without-replacement
    /// draw exhausts the high-likelihood defects and the estimate drifts
    /// toward the unweighted coverage. Keep `n/universe` below ~20 %, or
    /// simulate exhaustively.
    pub sample_size: Option<usize>,
    /// RNG seed for the LWRS draw.
    pub seed: u64,
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// Per-defect wall-clock budget. A defect whose simulation exceeds it
    /// is recorded as [`UnresolvedReason::Timeout`]. Enforced two ways:
    /// the deadline is installed as a thread [`SolveBudget`] so in-flight
    /// solves abort at the next Newton iteration, and the outcome of a
    /// defect whose total wall time overran is demoted post-hoc (covering
    /// test closures that never enter the solver). `None` = unlimited.
    ///
    /// Wall-clock enforcement is inherently load-dependent; for
    /// bit-reproducible outcomes use [`newton_budget`](Self::newton_budget)
    /// alone.
    pub defect_deadline: Option<Duration>,
    /// Per-defect Newton iteration budget across every solve the test
    /// closure triggers. Deterministic: the same defect and budget always
    /// exhaust at the same iteration. `None` = unlimited.
    pub newton_budget: Option<u64>,
    /// Restricts the campaign to catalog indices in the half-open range
    /// `[lo, hi)` — the shard boundary used by the coordinator. The
    /// restriction is applied *after* sampling: an LWRS draw is taken over
    /// the full universe with [`seed`](Self::seed) and then filtered to
    /// the range, so N shards with disjoint covering ranges and identical
    /// seeds reconstruct exactly the 1-process selection. A sampled shard
    /// whose range contains no drawn index yields an empty (zero-record)
    /// result. `None` = the whole universe.
    pub index_range: Option<(usize, usize)>,
    /// JSONL checkpoint file. Completed records are appended (one JSON
    /// object per line, flushed per record); when the file already holds
    /// records for this universe/sample, those defects are skipped and
    /// their records reused — see [`CampaignResult::resumed`]. `None`
    /// disables checkpointing.
    pub checkpoint: Option<PathBuf>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        Self {
            sample_size: None,
            seed: 0x5EED,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            defect_deadline: None,
            newton_budget: None,
            index_range: None,
            checkpoint: None,
        }
    }
}

/// Per-defect campaign record.
///
/// The record references its defect by index into the originating
/// [`DefectUniverse`] instead of cloning the whole `Defect` (whose
/// `component_name` string would otherwise be duplicated once per record);
/// the `Copy`-sized site and likelihood are duplicated because the coverage
/// estimator and escape analysis need them without the universe in hand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefectRecord {
    /// Index of the simulated defect in the originating universe.
    pub defect_index: usize,
    /// The defect site (what was injected where).
    pub site: DefectSite,
    /// Relative likelihood copied from the universe entry.
    pub likelihood: f64,
    /// Test outcome (completed verdict or unresolved reason).
    pub outcome: SimOutcome,
    /// Wall-clock simulation time for this defect.
    pub wall: Duration,
}

impl DefectRecord {
    /// Resolves the full defect description in the originating universe.
    ///
    /// # Panics
    ///
    /// Panics if `universe` is not the universe the campaign ran over.
    pub fn defect<'a>(&self, universe: &'a DefectUniverse) -> &'a Defect {
        &universe.defects()[self.defect_index]
    }
}

/// Unresolved-record counts split by [`UnresolvedReason`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UnresolvedCounts {
    /// Solver gave up: no computable operating point.
    pub no_convergence: usize,
    /// Per-defect budget (wall deadline or Newton iterations) ran out.
    pub timeout: usize,
    /// The test closure panicked.
    pub panic: usize,
}

impl UnresolvedCounts {
    /// Sum over all reasons.
    pub fn total(&self) -> usize {
        self.no_convergence + self.timeout + self.panic
    }
}

/// Full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// One record per simulated defect, in deterministic (sample) order.
    pub records: Vec<DefectRecord>,
    /// Size of the underlying universe.
    pub universe_size: usize,
    /// Total likelihood of the underlying universe.
    pub universe_likelihood: f64,
    /// Whether LWRS sampling was used.
    pub sampled: bool,
    /// Records reloaded from the checkpoint file instead of re-simulated.
    pub resumed: usize,
    /// Total campaign wall time.
    pub total_wall: Duration,
}

impl CampaignResult {
    /// Number of defects simulated (including resumed records).
    pub fn simulated(&self) -> usize {
        self.records.len()
    }

    /// Number positively detected (completed runs only).
    pub fn detected(&self) -> usize {
        self.records.iter().filter(|r| r.outcome.detected()).count()
    }

    /// Number of unresolved defects (panic, timeout, no convergence).
    pub fn unresolved(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome.is_unresolved())
            .count()
    }

    /// Unresolved defects broken down by [`UnresolvedReason`], so budget
    /// expiry is never conflated with genuine non-convergence.
    pub fn unresolved_by_reason(&self) -> UnresolvedCounts {
        let mut counts = UnresolvedCounts::default();
        for r in &self.records {
            match r.outcome.unresolved_reason() {
                Some(UnresolvedReason::NoConvergence) => counts.no_convergence += 1,
                Some(UnresolvedReason::Timeout) => counts.timeout += 1,
                Some(UnresolvedReason::Panic) => counts.panic += 1,
                None => {}
            }
        }
        counts
    }

    fn coverage_with(&self, unresolved_detected: bool) -> Coverage {
        assert!(!self.records.is_empty(), "empty campaign");
        let hit = |r: &DefectRecord| match r.outcome {
            SimOutcome::Completed(o) => o.detected,
            SimOutcome::Unresolved(_) => unresolved_detected,
        };
        if self.sampled {
            let hits = self.records.iter().filter(|r| hit(r)).count();
            lw_coverage_sampled(hits, self.simulated(), self.universe_size)
        } else {
            let outcomes: Vec<(f64, bool)> = self
                .records
                .iter()
                .map(|r| (r.likelihood, hit(r)))
                .collect();
            lw_coverage_exhaustive(&outcomes)
        }
    }

    /// The L-W coverage **lower bound** (with CI when sampled): unresolved
    /// defects are counted as escapes. This is the conservative figure to
    /// report — a defect whose simulation crashed has not been shown to be
    /// detected.
    ///
    /// # Panics
    ///
    /// Panics if the campaign simulated nothing.
    pub fn coverage(&self) -> Coverage {
        self.coverage_with(false)
    }

    /// The L-W coverage **upper bound**: unresolved defects are counted as
    /// detected. The true coverage lies in
    /// `[coverage().value, coverage_upper().value]`; the bounds coincide
    /// when every simulation completed.
    ///
    /// # Panics
    ///
    /// Panics if the campaign simulated nothing.
    pub fn coverage_upper(&self) -> Coverage {
        self.coverage_with(true)
    }

    /// Both coverage bounds, `(lower, upper)`.
    ///
    /// # Panics
    ///
    /// Panics if the campaign simulated nothing.
    pub fn coverage_bounds(&self) -> (Coverage, Coverage) {
        (self.coverage(), self.coverage_upper())
    }

    /// Records of defects that completed undetected (true escapes).
    /// Unresolved records are *not* escapes — see [`unresolved`](Self::unresolved).
    pub fn escapes(&self) -> impl Iterator<Item = &DefectRecord> {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, SimOutcome::Completed(o) if !o.detected))
    }
}

/// Observation and control hooks for a running campaign.
///
/// A monitor lets long-lived callers (the job service, progress bars,
/// result streams) watch records as they complete and stop a campaign
/// early without losing work. All hooks are called from campaign worker
/// threads, so implementations must be `Sync`; they should also be cheap —
/// a slow `on_record` serializes the workers.
///
/// Every method has a no-op default, and `()` implements the trait, so
/// `run_campaign` is just `run_campaign_monitored(.., &())`.
pub trait CampaignMonitor: Sync {
    /// Called once before any simulation, after sampling and checkpoint
    /// reload, with the number of selected defects and how many of them
    /// were resumed from the checkpoint.
    fn on_start(&self, _selected: usize, _resumed: usize) {}

    /// Called for every record in completion order: first the resumed
    /// checkpoint records (`resumed == true`, in selection order), then
    /// each freshly simulated record as its worker finishes it (order is
    /// nondeterministic under work stealing; `record.defect_index`
    /// identifies the defect).
    fn on_record(&self, _record: &DefectRecord, _resumed: bool) {}

    /// Polled by every worker between defects. Returning `true` stops the
    /// campaign: workers finish their in-flight defect (flushing its
    /// checkpoint record) and [`run_campaign_monitored`] returns
    /// [`CampaignError::Cancelled`].
    fn cancelled(&self) -> bool {
        false
    }
}

/// The no-op monitor: [`run_campaign`] behavior.
impl CampaignMonitor for () {}

/// Loads checkpoint records that belong to this campaign.
///
/// Tolerant by design: unparseable lines (including a torn final line from
/// a killed process) are skipped, records are validated against the
/// universe (index range, same site, bit-identical likelihood) so a stale
/// file from a different universe is ignored, and for duplicated indices
/// the last record wins. One hard limit bounds the tolerance: when more
/// *validated* records are found than defects were selected, the file
/// cannot be an honest journal of this campaign (something duplicated or
/// concatenated records wholesale), and silently deduplicating would mask
/// the corruption — the whole checkpoint is rejected instead and the
/// campaign re-simulates from scratch. Returns `(position in selected,
/// record)` pairs.
fn load_checkpoint(
    path: &std::path::Path,
    universe: &DefectUniverse,
    selected: &[usize],
) -> Vec<(usize, DefectRecord)> {
    let Ok(content) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut by_pos: HashMap<usize, DefectRecord> = HashMap::new();
    let mut validated = 0usize;
    for line in content.lines() {
        let Some(rec) = parse_checkpoint_line(line) else {
            continue;
        };
        if rec.defect_index >= universe.len() {
            continue;
        }
        let d = &universe.defects()[rec.defect_index];
        if d.site != rec.site || d.likelihood.to_bits() != rec.likelihood.to_bits() {
            continue;
        }
        let Ok(pos) = selected.binary_search(&rec.defect_index) else {
            continue;
        };
        validated += 1;
        if validated > selected.len() {
            return Vec::new();
        }
        by_pos.insert(pos, rec);
    }
    let mut loaded: Vec<(usize, DefectRecord)> = by_pos.into_iter().collect();
    loaded.sort_unstable_by_key(|(pos, _)| *pos);
    loaded
}

/// Runs a campaign.
///
/// The test closure receives a DUT clone with the defect already injected
/// and is invoked from multiple threads. It may return anything convertible
/// into a [`SimOutcome`]: a plain [`TestOutcome`] (always completed), a
/// `Result<TestOutcome, CircuitError>`, a `Result<SimOutcome, CircuitError>`,
/// or a [`SimOutcome`] directly — solver errors map to
/// [`UnresolvedReason::NoConvergence`] and budget expiry to
/// [`UnresolvedReason::Timeout`].
///
/// A panic in the closure is caught and recorded as
/// [`UnresolvedReason::Panic`]; it never crosses `run_campaign`.
pub fn run_campaign<D, F, R>(
    dut: &D,
    universe: &DefectUniverse,
    options: &CampaignOptions,
    test: F,
) -> Result<CampaignResult, CampaignError>
where
    D: Faultable + Clone + Send + Sync,
    F: Fn(&D) -> R + Sync,
    R: Into<SimOutcome>,
{
    run_campaign_monitored(dut, universe, options, test, &())
}

/// [`run_campaign`] with a [`CampaignMonitor`] attached: the monitor sees
/// every record as it completes and may cancel the campaign between
/// defects.
///
/// Cancellation is cooperative and loses no work: in-flight defects finish
/// and flush their checkpoint records, then the function returns
/// [`CampaignError::Cancelled`]; a subsequent run with the same options
/// resumes from the checkpoint and its final records are bit-identical to
/// an uninterrupted run's (the service's drain-and-restart contract).
pub fn run_campaign_monitored<D, F, R, M>(
    dut: &D,
    universe: &DefectUniverse,
    options: &CampaignOptions,
    test: F,
    monitor: &M,
) -> Result<CampaignResult, CampaignError>
where
    D: Faultable + Clone + Send + Sync,
    F: Fn(&D) -> R + Sync,
    R: Into<SimOutcome>,
    M: CampaignMonitor + ?Sized,
{
    if universe.is_empty() {
        return Err(CampaignError::EmptyUniverse);
    }
    let start = Instant::now();
    symbist_obs::counter!("symbist_campaign_runs_total", "Defect campaigns started").inc();
    let _campaign_span = symbist_obs::span!("campaign");
    // The caller's trace scope (e.g. the service's `job-{id}`) is
    // thread-local; capture it here and re-install it inside each scoped
    // worker thread so per-job trace slicing survives the fan-out.
    let trace_scope = symbist_obs::current_scope();

    if let Some((lo, hi)) = options.index_range {
        if lo >= hi || hi > universe.len() {
            return Err(CampaignError::InvalidRange {
                lo,
                hi,
                universe: universe.len(),
            });
        }
    }

    // LWRS draw (or the full universe), as sorted indices into the universe.
    let mut selected: Vec<usize> = match options.sample_size {
        Some(n) => {
            if n == 0 || n > universe.len() {
                return Err(CampaignError::InvalidSampleSize {
                    requested: n,
                    universe: universe.len(),
                });
            }
            let weights: Vec<f64> = universe.iter().map(|d| d.likelihood).collect();
            let mut rng = Rng::seed_from_u64(options.seed);
            let mut idx = rng.weighted_sample_without_replacement(&weights, n);
            idx.sort_unstable();
            idx
        }
        None => (0..universe.len()).collect(),
    };
    // Shard restriction (after the draw, so disjoint ranges partition the
    // exact 1-process selection — the coordinator's merge-determinism
    // invariant).
    if let Some((lo, hi)) = options.index_range {
        selected.retain(|&i| i >= lo && i < hi);
    }

    // Resume: reload completed records, then skip their positions.
    let preloaded: Vec<(usize, DefectRecord)> = match &options.checkpoint {
        Some(path) => load_checkpoint(path, universe, &selected),
        None => Vec::new(),
    };
    let done: Vec<bool> = {
        let mut done = vec![false; selected.len()];
        for (pos, _) in &preloaded {
            done[*pos] = true;
        }
        done
    };
    let resumed = preloaded.len();
    symbist_obs::counter!(
        "symbist_campaign_resumed_records_total",
        "Defect records reloaded from checkpoints instead of re-simulated"
    )
    .add(resumed as u64);
    monitor.on_start(selected.len(), resumed);
    for (_, rec) in &preloaded {
        monitor.on_record(rec, true);
    }

    // Open the checkpoint writer up front so an unwritable path fails the
    // campaign before any simulation is spent.
    let writer: Option<Mutex<std::fs::File>> = match &options.checkpoint {
        Some(path) => Some(Mutex::new(
            std::fs::File::options()
                .append(true)
                .create(true)
                .open(path)
                .map_err(|e| CampaignError::Checkpoint {
                    path: path.clone(),
                    reason: e.to_string(),
                })?,
        )),
        None => None,
    };

    let threads = options.threads.max(1).min(selected.len());
    // Work stealing: each worker pulls the next untested position from a
    // shared cursor, so one slow defect delays only its own slot.
    let cursor = AtomicUsize::new(0);
    let cancelled = std::sync::atomic::AtomicBool::new(false);

    let worker = || -> Result<Vec<(usize, DefectRecord)>, CampaignError> {
        let _scope = symbist_obs::enter_scope_opt(trace_scope.clone());
        let mut local: Vec<(usize, DefectRecord)> = Vec::new();
        loop {
            if cancelled.load(Ordering::Relaxed) || monitor.cancelled() {
                cancelled.store(true, Ordering::Relaxed);
                break;
            }
            let pos = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(&defect_index) = selected.get(pos) else {
                break;
            };
            if done[pos] {
                continue;
            }
            let defect = &universe.defects()[defect_index];
            // Fault-injection site `campaign/defect:{index}`: `stall`
            // zeroes the Newton budget (the solve exhausts immediately →
            // `Unresolved(Timeout)`), `panic` unwinds inside the per-defect
            // `catch_unwind` (→ `Unresolved(Panic)`).
            let injected = if symbist_obs::fault::active() {
                symbist_obs::fault::fire(&format!("campaign/defect:{defect_index}"))
            } else {
                None
            };
            let t0 = Instant::now();
            let budget = SolveBudget {
                deadline: options.defect_deadline.map(|d| t0 + d),
                newton_iters: if matches!(injected, Some(FaultAction::Stall)) {
                    Some(0)
                } else {
                    options.newton_budget
                },
            };
            let prev = if budget == SolveBudget::UNLIMITED {
                None
            } else {
                set_thread_solve_budget(Some(budget))
            };
            let defect_span = symbist_obs::span!("defect_sim");
            let verdict = catch_unwind(AssertUnwindSafe(|| {
                if matches!(injected, Some(FaultAction::Panic)) {
                    panic!("fault-injected panic (campaign/defect:{defect_index})");
                }
                let mut instance = dut.clone();
                instance.inject(defect.site);
                test(&instance).into()
            }));
            set_thread_solve_budget(prev);
            drop(defect_span);
            let wall = t0.elapsed();
            let mut outcome = match verdict {
                Ok(outcome) => outcome,
                Err(_) => SimOutcome::Unresolved(UnresolvedReason::Panic),
            };
            // Post-hoc deadline demotion: a closure that overran the
            // deadline without touching the solver (or whose budget abort
            // surfaced as a panic through an infallible wrapper) is a
            // timeout, not a verdict. A genuine NoConvergence is never
            // demoted — the solver reached its own conclusion first.
            if let Some(deadline) = options.defect_deadline {
                if wall > deadline
                    && !matches!(
                        outcome,
                        SimOutcome::Unresolved(UnresolvedReason::NoConvergence)
                    )
                {
                    outcome = SimOutcome::Unresolved(UnresolvedReason::Timeout);
                }
            }
            let record = DefectRecord {
                defect_index,
                site: defect.site,
                likelihood: defect.likelihood,
                outcome,
                wall,
            };
            record_defect_metrics(&record);
            if let Some(writer) = &writer {
                // Fault-injection site `campaign/checkpoint:{index}`:
                // `torn` flushes a truncated record then panics (a process
                // killed mid-append); `panic` unwinds before the write.
                // Both escape the per-defect `catch_unwind` and fail the
                // whole campaign, as a real worker death would.
                if symbist_obs::fault::active() {
                    match symbist_obs::fault::fire(&format!("campaign/checkpoint:{defect_index}")) {
                        Some(FaultAction::Torn) => {
                            let mut file = writer.lock().unwrap_or_else(|e| e.into_inner());
                            let line = checkpoint_line(&record);
                            let torn = &line[..line.len() / 2];
                            let _ = file.write_all(torn.as_bytes()).and_then(|()| file.flush());
                            drop(file);
                            panic!(
                                "fault-injected torn checkpoint write \
                                 (campaign/checkpoint:{defect_index})"
                            );
                        }
                        Some(FaultAction::Panic) => {
                            panic!(
                                "fault-injected panic in checkpoint flush \
                                 (campaign/checkpoint:{defect_index})"
                            );
                        }
                        _ => {}
                    }
                }
                let ckpt_start = symbist_obs::enabled().then(Instant::now);
                let mut file = writer.lock().unwrap_or_else(|e| e.into_inner());
                let line = checkpoint_line(&record);
                let io = file
                    .write_all(line.as_bytes())
                    .and_then(|()| file.write_all(b"\n"))
                    .and_then(|()| file.flush());
                if let Some(ckpt_start) = ckpt_start {
                    symbist_obs::histogram!(
                        "symbist_campaign_checkpoint_seconds",
                        "Latency of one checkpoint record append (lock + write + flush)",
                        symbist_obs::SECONDS_EDGES
                    )
                    .record(ckpt_start.elapsed().as_secs_f64());
                }
                if let Err(e) = io {
                    return Err(CampaignError::Checkpoint {
                        path: options
                            .checkpoint
                            .clone()
                            .expect("writer implies checkpoint path"),
                        reason: e.to_string(),
                    });
                }
            }
            monitor.on_record(&record, false);
            local.push((pos, record));
        }
        Ok(local)
    };

    let results: Vec<Result<Vec<(usize, DefectRecord)>, CampaignError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
            handles
                .into_iter()
                .map(|h| {
                    // Re-raise a campaign-worker panic (e.g. an injected
                    // checkpoint fault) with its original payload so the
                    // caller's catch_unwind sees the real message.
                    h.join()
                        .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                })
                .collect()
        });

    // Deterministic assembly: merge preloaded and freshly-computed records
    // by their position in the (sorted) selection. Every position is filled
    // exactly once by construction — either preloaded or claimed once via
    // the cursor — so no placeholder slots are needed.
    let mut tagged = preloaded;
    for result in results {
        tagged.extend(result?);
    }
    if cancelled.load(Ordering::Relaxed) {
        return Err(CampaignError::Cancelled {
            completed: tagged.len(),
            selected: selected.len(),
        });
    }
    tagged.sort_unstable_by_key(|(pos, _)| *pos);
    debug_assert_eq!(tagged.len(), selected.len());
    debug_assert!(tagged.iter().enumerate().all(|(i, (pos, _))| i == *pos));
    let records: Vec<DefectRecord> = tagged.into_iter().map(|(_, record)| record).collect();

    Ok(CampaignResult {
        records,
        universe_size: universe.len(),
        universe_likelihood: universe.total_likelihood(),
        sampled: options.sample_size.is_some(),
        resumed,
        total_wall: start.elapsed(),
    })
}

/// Bumps the per-outcome counter family, the wall-time histogram, and the
/// budget-exhaustion counter for one freshly-simulated defect. The label
/// universe is the closed set of [`SimOutcome`] shapes, so each series
/// gets a static handle.
fn record_defect_metrics(record: &DefectRecord) {
    const HELP: &str = "Freshly-simulated defects by outcome";
    let counter = match &record.outcome {
        SimOutcome::Completed(o) if o.detected => {
            symbist_obs::counter!(
                r#"symbist_campaign_defects_total{outcome="detected"}"#,
                HELP
            )
        }
        SimOutcome::Completed(_) => {
            symbist_obs::counter!(r#"symbist_campaign_defects_total{outcome="escaped"}"#, HELP)
        }
        SimOutcome::Unresolved(UnresolvedReason::NoConvergence) => symbist_obs::counter!(
            r#"symbist_campaign_defects_total{outcome="no-convergence"}"#,
            HELP
        ),
        SimOutcome::Unresolved(UnresolvedReason::Timeout) => {
            symbist_obs::counter!(r#"symbist_campaign_defects_total{outcome="timeout"}"#, HELP)
        }
        SimOutcome::Unresolved(UnresolvedReason::Panic) => {
            symbist_obs::counter!(r#"symbist_campaign_defects_total{outcome="panic"}"#, HELP)
        }
    };
    counter.inc();
    symbist_obs::histogram!(
        "symbist_campaign_defect_seconds",
        "Wall time per defect simulation",
        symbist_obs::SECONDS_EDGES
    )
    .record(record.wall.as_secs_f64());
    // `BudgetExhausted` (deadline or Newton allowance) maps to `Timeout`
    // in the outcome conversion, so this is the budget-exhaustion count.
    if matches!(
        record.outcome,
        SimOutcome::Unresolved(UnresolvedReason::Timeout)
    ) {
        symbist_obs::counter!(
            "symbist_campaign_budget_exhausted_total",
            "Defects whose per-defect budget (deadline or Newton allowance) ran out"
        )
        .inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::likelihood::LikelihoodModel;
    use symbist_adc::fault::{check_site, BlockKind, ComponentInfo, ComponentKind, DefectSite};

    /// A toy DUT: detection iff the injected defect is a short.
    #[derive(Clone)]
    struct ToyDut {
        catalog: Vec<ComponentInfo>,
        injected: Option<DefectSite>,
    }

    impl ToyDut {
        fn new(n: usize) -> Self {
            let catalog = (0..n)
                .map(|i| ComponentInfo {
                    block: BlockKind::ScArray,
                    name: format!("c{i}"),
                    kind: ComponentKind::Resistor,
                    area: 1.0 + i as f64,
                })
                .collect();
            Self {
                catalog,
                injected: None,
            }
        }
    }

    impl Faultable for ToyDut {
        fn components(&self) -> &[ComponentInfo] {
            &self.catalog
        }
        fn inject(&mut self, site: DefectSite) {
            check_site(&self.catalog, site);
            self.injected = Some(site);
        }
        fn clear_defects(&mut self) {
            self.injected = None;
        }
        fn injected(&self) -> Option<DefectSite> {
            self.injected
        }
    }

    fn toy_test(dut: &ToyDut) -> TestOutcome {
        let detected = dut.injected().map(|s| s.kind.is_short()).unwrap_or(false);
        TestOutcome {
            detected,
            detection_cycle: detected.then_some(3),
            cycles_run: if detected { 3 } else { 192 },
        }
    }

    #[test]
    fn exhaustive_campaign_covers_all() {
        let dut = ToyDut::new(4);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        let res = run_campaign(&dut, &uni, &CampaignOptions::default(), toy_test).unwrap();
        assert_eq!(res.simulated(), uni.len());
        assert!(!res.sampled);
        assert_eq!(res.resumed, 0);
        assert_eq!(res.unresolved(), 0);
        // Shorts detected: weight 3 of (3+1+0.5) per component.
        let cov = res.coverage();
        assert!(
            (cov.value - 3.0 / 4.5).abs() < 1e-12,
            "coverage {}",
            cov.value
        );
        assert!(cov.ci_half_width.is_none());
        // With every run completed the bounds coincide.
        let (lo, hi) = res.coverage_bounds();
        assert_eq!(lo.value, hi.value);
    }

    #[test]
    fn sampled_campaign_is_deterministic() {
        let dut = ToyDut::new(10);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        let opts = CampaignOptions {
            sample_size: Some(12),
            seed: 7,
            threads: 4,
            ..Default::default()
        };
        let a = run_campaign(&dut, &uni, &opts, toy_test).unwrap();
        let b = run_campaign(&dut, &uni, &opts, toy_test).unwrap();
        assert_eq!(a.simulated(), 12);
        let names_a: Vec<&str> = a
            .records
            .iter()
            .map(|r| r.defect(&uni).component_name.as_str())
            .collect();
        let names_b: Vec<&str> = b
            .records
            .iter()
            .map(|r| r.defect(&uni).component_name.as_str())
            .collect();
        assert_eq!(names_a, names_b);
        assert!(a.sampled);
        assert!(a.coverage().ci_half_width.is_some());
    }

    #[test]
    fn sampling_estimates_exhaustive_coverage() {
        // Average the LWRS estimator over several seeds at a ~10 % sampling
        // fraction: the mean must approach the exhaustive L-W coverage.
        let dut = ToyDut::new(100);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        let exhaustive = run_campaign(&dut, &uni, &CampaignOptions::default(), toy_test)
            .unwrap()
            .coverage()
            .value;
        let mut acc = 0.0;
        let seeds = 20;
        for seed in 0..seeds {
            let sampled = run_campaign(
                &dut,
                &uni,
                &CampaignOptions {
                    sample_size: Some(40),
                    seed,
                    threads: 2,
                    ..Default::default()
                },
                toy_test,
            )
            .unwrap()
            .coverage();
            acc += sampled.value;
        }
        let mean = acc / seeds as f64;
        assert!(
            (mean - exhaustive).abs() < 0.08,
            "mean sampled {mean} vs exhaustive {exhaustive}"
        );
    }

    #[test]
    fn stop_on_detection_shortens_cycles() {
        let dut = ToyDut::new(5);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        let res = run_campaign(&dut, &uni, &CampaignOptions::default(), toy_test).unwrap();
        for r in &res.records {
            let o = r.outcome.completed().expect("toy test always completes");
            if o.detected {
                assert!(o.cycles_run < 192);
            } else {
                assert_eq!(o.cycles_run, 192);
            }
        }
        // Escapes iterator complements detections.
        assert_eq!(res.escapes().count() + res.detected(), res.simulated());
    }

    #[test]
    fn single_thread_works() {
        let dut = ToyDut::new(3);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        let res = run_campaign(
            &dut,
            &uni,
            &CampaignOptions {
                threads: 1,
                ..Default::default()
            },
            toy_test,
        )
        .unwrap();
        assert_eq!(res.simulated(), uni.len());
    }

    #[test]
    fn oversized_sample_is_an_error() {
        let dut = ToyDut::new(2);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        let err = run_campaign(
            &dut,
            &uni,
            &CampaignOptions {
                sample_size: Some(10_000),
                ..Default::default()
            },
            toy_test,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                CampaignError::InvalidSampleSize {
                    requested: 10_000,
                    ..
                }
            ),
            "got {err}"
        );
        // Zero-size samples are equally invalid.
        let err = run_campaign(
            &dut,
            &uni,
            &CampaignOptions {
                sample_size: Some(0),
                ..Default::default()
            },
            toy_test,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CampaignError::InvalidSampleSize { requested: 0, .. }
        ));
    }

    #[test]
    fn sharded_ranges_reconstruct_the_full_selection() {
        // Three disjoint covering ranges — exhaustive and sampled — must
        // union (position-sorted) to exactly the 1-process selection.
        let dut = ToyDut::new(9);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        for sample_size in [None, Some(14)] {
            let base = CampaignOptions {
                sample_size,
                seed: 11,
                threads: 2,
                ..Default::default()
            };
            let oracle = run_campaign(&dut, &uni, &base, toy_test).unwrap();
            let n = uni.len();
            let cuts = [0, n / 3, 2 * n / 3, n];
            let mut merged: Vec<DefectRecord> = Vec::new();
            for w in cuts.windows(2) {
                let opts = CampaignOptions {
                    index_range: Some((w[0], w[1])),
                    ..base.clone()
                };
                let shard = run_campaign(&dut, &uni, &opts, toy_test).unwrap();
                assert!(shard
                    .records
                    .iter()
                    .all(|r| r.defect_index >= w[0] && r.defect_index < w[1]));
                merged.extend(shard.records);
            }
            merged.sort_unstable_by_key(|r| r.defect_index);
            let oracle_keys: Vec<(usize, bool)> = oracle
                .records
                .iter()
                .map(|r| (r.defect_index, r.outcome.detected()))
                .collect();
            let merged_keys: Vec<(usize, bool)> = merged
                .iter()
                .map(|r| (r.defect_index, r.outcome.detected()))
                .collect();
            assert_eq!(oracle_keys, merged_keys, "sample_size {sample_size:?}");
        }
    }

    #[test]
    fn invalid_index_range_is_an_error() {
        let dut = ToyDut::new(2);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        for (lo, hi) in [(3, 2), (0, 0), (0, uni.len() + 1)] {
            let err = run_campaign(
                &dut,
                &uni,
                &CampaignOptions {
                    index_range: Some((lo, hi)),
                    ..Default::default()
                },
                toy_test,
            )
            .unwrap_err();
            assert!(
                matches!(err, CampaignError::InvalidRange { .. }),
                "got {err}"
            );
        }
    }

    #[test]
    fn empty_universe_is_an_error() {
        let dut = ToyDut::new(1);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        let empty = uni.filter_block(BlockKind::Bandgap);
        let err = run_campaign(&dut, &empty, &CampaignOptions::default(), toy_test).unwrap_err();
        assert!(matches!(err, CampaignError::EmptyUniverse));
    }

    #[test]
    fn closure_may_return_fallible_outcomes() {
        let dut = ToyDut::new(3);
        let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        // A Result-returning closure converts through Into<SimOutcome>:
        // NoConvergence for shorts, completed escape otherwise.
        let res = run_campaign(
            &dut,
            &uni,
            &CampaignOptions::default(),
            |d: &ToyDut| -> Result<TestOutcome, CircuitError> {
                if d.injected().map(|s| s.kind.is_short()).unwrap_or(false) {
                    Err(CircuitError::NoConvergence {
                        analysis: "dc",
                        iterations: 200,
                    })
                } else {
                    Ok(TestOutcome {
                        detected: false,
                        detection_cycle: None,
                        cycles_run: 192,
                    })
                }
            },
        )
        .unwrap();
        let unresolved = res.unresolved();
        assert_eq!(unresolved, 3, "one short per component");
        assert!(res
            .records
            .iter()
            .filter(|r| r.outcome.is_unresolved())
            .all(|r| r.outcome.unresolved_reason() == Some(UnresolvedReason::NoConvergence)));
        // Bounds bracket: lower counts them escaped, upper detected.
        let (lo, hi) = res.coverage_bounds();
        assert!(lo.value < hi.value);
    }
}
