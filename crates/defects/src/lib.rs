//! # symbist-defects — mixed-signal defect model and simulator
//!
//! The reproduction's stand-in for Tessent®DefectSim (paper §V): it
//! enumerates the defect universe of a [`Faultable`] DUT under the paper's
//! defect model (shorts and opens across transistor and diode terminals,
//! ±50 % passive variation, 10 Ω short resistance, weak pulls on opens),
//! weights each defect by a global-class × component-area likelihood,
//! optionally samples the universe with Likelihood-Weighted Random
//! Sampling (LWRS), runs the injected instances through a caller-supplied
//! test across worker threads, and reports Likelihood-Weighted defect
//! coverage with a 95 % confidence interval — the exact quantities of the
//! paper's Table I.
//!
//! ```
//! use symbist_adc::{AdcConfig, SarAdc};
//! use symbist_defects::likelihood::LikelihoodModel;
//! use symbist_defects::universe::DefectUniverse;
//!
//! let adc = SarAdc::new(AdcConfig::default());
//! let universe = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
//! assert!(universe.len() > 1000); // thousands of candidate defects
//! ```
//!
//! [`Faultable`]: symbist_adc::fault::Faultable

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod campaign;
pub mod checkpoint;
pub mod classes;
pub mod coverage;
pub mod likelihood;
pub mod report;
pub mod universe;

pub use campaign::{
    run_campaign, run_campaign_monitored, CampaignError, CampaignMonitor, CampaignOptions,
    CampaignResult, DefectRecord, SimOutcome, TestOutcome, UnresolvedCounts, UnresolvedReason,
};
pub use checkpoint::{checkpoint_line, merged_line, parse_checkpoint_line};
pub use classes::{
    run_class_campaign, ClassCampaignError, ClassCampaignOptions, ClassCampaignResult, ClassOutcome,
};
pub use coverage::Coverage;
pub use likelihood::LikelihoodModel;
pub use report::CoverageTable;
pub use universe::{Defect, DefectUniverse, UniverseIssue};
