//! Per-block campaign reporting: the machinery behind the paper's Table I.

use std::fmt::Write as _;
use std::time::Duration;

use symbist_adc::fault::BlockKind;

use crate::campaign::{CampaignResult, UnresolvedCounts};
use crate::coverage::Coverage;

/// One row of a Table-I-style report.
#[derive(Debug, Clone)]
pub struct BlockRow {
    /// Block (or aggregate) label.
    pub label: String,
    /// Total defects in the block's universe.
    pub total_defects: usize,
    /// Defects simulated.
    pub simulated: usize,
    /// Simulated defects that produced no verdict, broken down by reason
    /// (non-convergence vs budget expiry vs panic); they count as escapes
    /// in `coverage`.
    pub unresolved: UnresolvedCounts,
    /// Defect simulation time.
    pub sim_time: Duration,
    /// L-W coverage **lower bound** (with CI when sampled): unresolved
    /// defects counted as escapes.
    pub coverage: Coverage,
}

/// A Table-I-style report: one row per block plus the aggregate.
#[derive(Debug, Clone, Default)]
pub struct CoverageTable {
    rows: Vec<BlockRow>,
}

impl CoverageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row built from a block campaign.
    pub fn push_block(&mut self, block: BlockKind, result: &CampaignResult) {
        self.push_aggregate(block.label(), result);
    }

    /// Appends an aggregate row (e.g. "Complete A/M-S part of SAR ADC IP").
    pub fn push_aggregate(&mut self, label: &str, result: &CampaignResult) {
        self.rows.push(BlockRow {
            label: label.to_string(),
            total_defects: result.universe_size,
            simulated: result.simulated(),
            unresolved: result.unresolved_by_reason(),
            sim_time: result.total_wall,
            coverage: result.coverage(),
        });
    }

    /// The rows.
    pub fn rows(&self) -> &[BlockRow] {
        &self.rows
    }

    /// Renders a fixed-width text table matching the paper's columns —
    /// block, #defects, #simulated, simulation time, L-W coverage — plus
    /// the unresolved breakdown (#NoConv / #Timeout / #Panic), so budget
    /// expiry is never conflated with genuine non-convergence.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<38} {:>9} {:>11} {:>8} {:>9} {:>7} {:>12} {:>18}",
            "A/M-S blocks",
            "#Defects",
            "#Simulated",
            "#NoConv",
            "#Timeout",
            "#Panic",
            "Sim time (s)",
            "L-W coverage"
        );
        let _ = writeln!(out, "{}", "-".repeat(120));
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<38} {:>9} {:>11} {:>8} {:>9} {:>7} {:>12.2} {:>18}",
                r.label,
                r.total_defects,
                r.simulated,
                r.unresolved.no_convergence,
                r.unresolved.timeout,
                r.unresolved.panic,
                r.sim_time.as_secs_f64(),
                r.coverage.to_percent_string()
            );
        }
        out
    }

    /// Renders CSV (for EXPERIMENTS.md and plotting). `unresolved` keeps
    /// the total for backward compatibility; the three reason columns sum
    /// to it.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "block,defects,simulated,unresolved,no_convergence,timeout,panic,\
             sim_time_s,coverage,ci_half_width\n",
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{:.4},{:.6},{}",
                r.label,
                r.total_defects,
                r.simulated,
                r.unresolved.total(),
                r.unresolved.no_convergence,
                r.unresolved.timeout,
                r.unresolved.panic,
                r.sim_time.as_secs_f64(),
                r.coverage.value,
                r.coverage
                    .ci_half_width
                    .map(|h| format!("{h:.6}"))
                    .unwrap_or_default()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{DefectRecord, SimOutcome, TestOutcome, UnresolvedReason};
    use symbist_adc::fault::{DefectKind, DefectSite};

    fn fake_result_with(outcomes: &[SimOutcome]) -> CampaignResult {
        let records = outcomes
            .iter()
            .enumerate()
            .map(|(i, outcome)| DefectRecord {
                defect_index: i,
                site: DefectSite {
                    component: i,
                    kind: DefectKind::Short,
                },
                likelihood: 1.0,
                outcome: *outcome,
                wall: Duration::from_millis(5),
            })
            .collect();
        CampaignResult {
            records,
            universe_size: outcomes.len(),
            universe_likelihood: outcomes.len() as f64,
            sampled: false,
            resumed: 0,
            total_wall: Duration::from_millis(50),
        }
    }

    fn fake_result(detected: &[bool]) -> CampaignResult {
        let outcomes: Vec<SimOutcome> = detected
            .iter()
            .map(|d| {
                SimOutcome::Completed(TestOutcome {
                    detected: *d,
                    detection_cycle: d.then_some(1),
                    cycles_run: 10,
                })
            })
            .collect();
        fake_result_with(&outcomes)
    }

    #[test]
    fn table_renders_all_rows() {
        let mut t = CoverageTable::new();
        t.push_block(BlockKind::ScArray, &fake_result(&[true, true, false]));
        t.push_aggregate("Complete A/M-S part", &fake_result(&[true, false]));
        let text = t.to_text();
        assert!(text.contains("SC Array"));
        assert!(text.contains("Complete A/M-S part"));
        assert!(text.contains("66.67%"));
        assert!(text.contains("50.00%"));
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = CoverageTable::new();
        t.push_block(BlockKind::ScArray, &fake_result(&[true]));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("block,"));
        assert!(lines[0].contains(",unresolved,no_convergence,timeout,panic,"));
        assert!(lines[1].starts_with("SC Array,1,1,0,0,0,0,"));
    }

    #[test]
    fn unresolved_counts_surface_in_both_renderings() {
        let detected = SimOutcome::Completed(TestOutcome {
            detected: true,
            detection_cycle: Some(1),
            cycles_run: 1,
        });
        let result = fake_result_with(&[
            detected,
            SimOutcome::Unresolved(UnresolvedReason::Panic),
            SimOutcome::Unresolved(UnresolvedReason::Timeout),
        ]);
        let mut t = CoverageTable::new();
        t.push_block(BlockKind::ScArray, &result);
        assert_eq!(t.rows()[0].unresolved.total(), 2);
        assert_eq!(t.rows()[0].unresolved.timeout, 1);
        assert_eq!(t.rows()[0].unresolved.panic, 1);
        assert_eq!(t.rows()[0].unresolved.no_convergence, 0);
        let text = t.to_text();
        assert!(text.contains("#NoConv"));
        assert!(text.contains("#Timeout"));
        assert!(text.contains("#Panic"));
        // Lower-bound coverage: 1 of 3 (unresolved count as escapes).
        assert!(text.contains("33.33%"));
        // CSV row: total 2 = 0 no-convergence + 1 timeout + 1 panic.
        assert!(t.to_csv().lines().nth(1).unwrap().contains(",3,2,0,1,1,"));
    }
}
