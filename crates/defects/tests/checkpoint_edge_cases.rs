//! Checkpoint-loader edge cases and campaign-monitor semantics: empty
//! files, torn-only files, over-count (corrupt) checkpoints, progress
//! callbacks, and cooperative cancellation.
#![allow(clippy::unwrap_used)] // integration tests assert by panicking

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use symbist_adc::fault::{
    check_site, BlockKind, ComponentInfo, ComponentKind, DefectSite, Faultable,
};
use symbist_defects::checkpoint::checkpoint_line;
use symbist_defects::likelihood::LikelihoodModel;
use symbist_defects::{
    run_campaign, run_campaign_monitored, CampaignError, CampaignMonitor, CampaignOptions,
    DefectRecord, DefectUniverse, TestOutcome,
};

#[derive(Clone)]
struct ToyDut {
    catalog: Vec<ComponentInfo>,
    injected: Option<DefectSite>,
}

impl ToyDut {
    fn new(n: usize) -> Self {
        let catalog = (0..n)
            .map(|i| ComponentInfo {
                block: BlockKind::ScArray,
                name: format!("toy/c{i}"),
                kind: ComponentKind::Resistor,
                area: 1.0 + i as f64,
            })
            .collect();
        Self {
            catalog,
            injected: None,
        }
    }
}

impl Faultable for ToyDut {
    fn components(&self) -> &[ComponentInfo] {
        &self.catalog
    }
    fn inject(&mut self, site: DefectSite) {
        check_site(&self.catalog, site);
        self.injected = Some(site);
    }
    fn clear_defects(&mut self) {
        self.injected = None;
    }
    fn injected(&self) -> Option<DefectSite> {
        self.injected
    }
}

fn universe(n: usize) -> (ToyDut, DefectUniverse) {
    let dut = ToyDut::new(n);
    let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
    (dut, uni)
}

fn toy_test(dut: &ToyDut) -> TestOutcome {
    let detected = dut.injected().map(|s| s.kind.is_short()).unwrap_or(false);
    TestOutcome {
        detected,
        detection_cycle: detected.then_some(3),
        cycles_run: if detected { 3 } else { 192 },
    }
}

fn temp_checkpoint(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!(
        "symbist-ckpt-edge-{}-{tag}-{n}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn opts_with(path: &Path) -> CampaignOptions {
    CampaignOptions {
        checkpoint: Some(path.to_path_buf()),
        ..Default::default()
    }
}

#[test]
fn empty_checkpoint_file_resumes_nothing() {
    let (dut, uni) = universe(3);
    let path = temp_checkpoint("empty");
    std::fs::write(&path, "").unwrap();
    let res = run_campaign(&dut, &uni, &opts_with(&path), toy_test).unwrap();
    assert_eq!(res.resumed, 0);
    assert_eq!(res.simulated(), uni.len());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_of_only_torn_lines_resumes_nothing() {
    let (dut, uni) = universe(3);
    let path = temp_checkpoint("torn");
    // Build a file in which *every* line is torn mid-record, as repeated
    // kills at the worst moment would leave.
    let reference = run_campaign(&dut, &uni, &CampaignOptions::default(), toy_test).unwrap();
    let torn: String = reference
        .records
        .iter()
        .map(|r| {
            let line = checkpoint_line(r);
            format!("{}\n", &line[..line.len() / 2])
        })
        .collect();
    std::fs::write(&path, torn).unwrap();
    let res = run_campaign(&dut, &uni, &opts_with(&path), toy_test).unwrap();
    assert_eq!(res.resumed, 0, "no torn line may count as a record");
    assert_eq!(res.simulated(), uni.len());
    assert_eq!(res.records, {
        let mut r = reference.records.clone();
        // Wall times legitimately differ between runs.
        for (a, b) in r.iter_mut().zip(&res.records) {
            a.wall = b.wall;
        }
        r
    });
    let _ = std::fs::remove_file(&path);
}

#[test]
fn overfull_checkpoint_is_rejected_wholesale() {
    let (dut, uni) = universe(3);
    let path = temp_checkpoint("overfull");
    // Every record genuinely matches the universe (index, site, and
    // likelihood bits all validate), but the file holds the full journal
    // twice — more records than the universe has defects. That cannot be
    // an honest journal of this campaign; accepting a deduplicated subset
    // would silently truncate the corruption, so the loader must reject
    // the whole file and the campaign must re-simulate everything.
    let reference = run_campaign(&dut, &uni, &opts_with(&path), toy_test).unwrap();
    let journal = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, format!("{journal}{journal}")).unwrap();
    let doubled = std::fs::read_to_string(&path).unwrap();
    assert!(doubled.lines().count() > uni.len());

    let res = run_campaign(&dut, &uni, &opts_with(&path), toy_test).unwrap();
    assert_eq!(res.resumed, 0, "overfull checkpoint must be rejected");
    assert_eq!(res.simulated(), uni.len());
    for (r, u) in res.records.iter().zip(&reference.records) {
        assert_eq!(r.defect_index, u.defect_index);
        assert_eq!(r.outcome, u.outcome);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn duplicates_within_budget_still_tolerated() {
    // The documented last-record-wins tolerance survives as long as the
    // validated record count stays within the selection size.
    let (dut, uni) = universe(3);
    let path = temp_checkpoint("dup-ok");
    let opts = opts_with(&path);
    run_campaign(&dut, &uni, &opts, toy_test).unwrap();
    let journal = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = journal.lines().collect();
    // Keep one real record, duplicated once: 2 validated records ≤ uni.len().
    std::fs::write(&path, format!("{}\n{}\n", lines[0], lines[0])).unwrap();
    let res = run_campaign(&dut, &uni, &opts, toy_test).unwrap();
    assert_eq!(res.resumed, 1, "deduplicated to one resumed record");
    let _ = std::fs::remove_file(&path);
}

/// Collects monitor callbacks for assertions.
#[derive(Default)]
struct Recorder {
    started: Mutex<Option<(usize, usize)>>,
    records: Mutex<Vec<(usize, bool)>>,
    cancel_after: Option<usize>,
    seen: AtomicUsize,
}

impl CampaignMonitor for Recorder {
    fn on_start(&self, selected: usize, resumed: usize) {
        *self.started.lock().unwrap() = Some((selected, resumed));
    }
    fn on_record(&self, record: &DefectRecord, resumed: bool) {
        self.seen.fetch_add(1, Ordering::SeqCst);
        self.records
            .lock()
            .unwrap()
            .push((record.defect_index, resumed));
    }
    fn cancelled(&self) -> bool {
        self.cancel_after
            .map(|n| self.seen.load(Ordering::SeqCst) >= n)
            .unwrap_or(false)
    }
}

#[test]
fn monitor_sees_every_record_once() {
    let (dut, uni) = universe(4);
    let mon = Recorder::default();
    let res =
        run_campaign_monitored(&dut, &uni, &CampaignOptions::default(), toy_test, &mon).unwrap();
    assert_eq!(*mon.started.lock().unwrap(), Some((uni.len(), 0)));
    let mut seen: Vec<usize> = mon
        .records
        .lock()
        .unwrap()
        .iter()
        .map(|(idx, resumed)| {
            assert!(!resumed);
            *idx
        })
        .collect();
    seen.sort_unstable();
    let expect: Vec<usize> = (0..uni.len()).collect();
    assert_eq!(seen, expect);
    assert_eq!(res.simulated(), uni.len());
}

#[test]
fn monitor_sees_resumed_records_first() {
    let (dut, uni) = universe(4);
    let path = temp_checkpoint("monitor-resume");
    let opts = opts_with(&path);
    run_campaign(&dut, &uni, &opts, toy_test).unwrap();
    // Keep half the journal, then resume under a monitor.
    let journal = std::fs::read_to_string(&path).unwrap();
    let keep = uni.len() / 2;
    let kept: String = journal
        .lines()
        .take(keep)
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&path, kept).unwrap();

    let mon = Recorder::default();
    let res = run_campaign_monitored(&dut, &uni, &opts, toy_test, &mon).unwrap();
    assert_eq!(res.resumed, keep);
    assert_eq!(*mon.started.lock().unwrap(), Some((uni.len(), keep)));
    let records = mon.records.lock().unwrap();
    assert_eq!(records.len(), uni.len());
    assert!(records[..keep].iter().all(|(_, resumed)| *resumed));
    assert!(records[keep..].iter().all(|(_, resumed)| !resumed));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cancellation_stops_early_and_resume_completes_bit_identically() {
    let (dut, uni) = universe(6);
    let path = temp_checkpoint("cancel");
    let opts = CampaignOptions {
        threads: 1, // deterministic single-worker cancellation point
        checkpoint: Some(path.clone()),
        ..Default::default()
    };
    let uninterrupted = {
        let clean = temp_checkpoint("cancel-ref");
        let res = run_campaign(
            &dut,
            &uni,
            &CampaignOptions {
                threads: 1,
                checkpoint: Some(clean.clone()),
                ..Default::default()
            },
            toy_test,
        )
        .unwrap();
        let _ = std::fs::remove_file(&clean);
        res
    };

    let mon = Recorder {
        cancel_after: Some(4),
        ..Default::default()
    };
    let err = run_campaign_monitored(&dut, &uni, &opts, toy_test, &mon).unwrap_err();
    match err {
        CampaignError::Cancelled {
            completed,
            selected,
        } => {
            assert!(
                completed >= 4 && completed < selected,
                "completed {completed}"
            );
            assert_eq!(selected, uni.len());
        }
        other => panic!("expected Cancelled, got {other}"),
    }

    // The drained checkpoint resumes to a result bit-identical to the
    // uninterrupted run (modulo wall times of re-simulated defects).
    let resumed = run_campaign(&dut, &uni, &opts, toy_test).unwrap();
    assert!(resumed.resumed >= 4);
    assert_eq!(resumed.records.len(), uninterrupted.records.len());
    for (r, u) in resumed.records.iter().zip(&uninterrupted.records) {
        assert_eq!(r.defect_index, u.defect_index);
        assert_eq!(r.site, u.site);
        assert_eq!(r.likelihood.to_bits(), u.likelihood.to_bits());
        assert_eq!(r.outcome, u.outcome);
    }
    let _ = std::fs::remove_file(&path);
}
