//! Deterministic fault-injection acceptance tests for the campaign
//! runner: the `campaign/defect:*` and `campaign/checkpoint:*` sites of
//! `symbist_obs::fault` (re-exported as `symbist::faultplan`).
//!
//! The fault plan is process-global, so every test that installs one
//! holds [`plan_lock`] for its whole body — tests in this binary run
//! concurrently, and a leaked plan would inject chaos into a neighbour.
#![allow(clippy::unwrap_used)] // integration tests assert by panicking

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use symbist_adc::fault::{
    check_site, BlockKind, ComponentInfo, ComponentKind, DefectSite, Faultable,
};
use symbist_circuit::dc::DcSolver;
use symbist_circuit::error::CircuitError;
use symbist_circuit::netlist::Netlist;
use symbist_defects::checkpoint::merged_line;
use symbist_defects::likelihood::LikelihoodModel;
use symbist_defects::{
    run_campaign, CampaignOptions, DefectUniverse, TestOutcome, UnresolvedReason,
};
use symbist_obs::FaultPlan;

/// Serializes tests that install a process-global fault plan.
fn plan_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A minimal Faultable DUT; detection is scripted by the test closure.
#[derive(Clone)]
struct ToyDut {
    catalog: Vec<ComponentInfo>,
    injected: Option<DefectSite>,
}

impl ToyDut {
    fn new(n: usize) -> Self {
        let catalog = (0..n)
            .map(|i| ComponentInfo {
                block: BlockKind::ScArray,
                name: format!("toy/c{i}"),
                kind: ComponentKind::Resistor,
                area: 1.0 + i as f64,
            })
            .collect();
        Self {
            catalog,
            injected: None,
        }
    }
}

impl Faultable for ToyDut {
    fn components(&self) -> &[ComponentInfo] {
        &self.catalog
    }
    fn inject(&mut self, site: DefectSite) {
        check_site(&self.catalog, site);
        self.injected = Some(site);
    }
    fn clear_defects(&mut self) {
        self.injected = None;
    }
    fn injected(&self) -> Option<DefectSite> {
        self.injected
    }
}

fn universe(n: usize) -> (ToyDut, DefectUniverse) {
    let dut = ToyDut::new(n);
    let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
    (dut, uni)
}

fn completed(detected: bool) -> TestOutcome {
    TestOutcome {
        detected,
        detection_cycle: detected.then_some(3),
        cycles_run: if detected { 3 } else { 192 },
    }
}

fn temp_checkpoint(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!(
        "symbist-fault-{}-{tag}-{n}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// Single-threaded options so checkpoint/selection order is the catalog
/// order and occurrence counts are deterministic.
fn serial_options() -> CampaignOptions {
    CampaignOptions {
        threads: 1,
        ..Default::default()
    }
}

#[test]
fn injected_panic_becomes_an_unresolved_panic_record() {
    let _serial = plan_lock();
    let (dut, uni) = universe(2);
    assert!(uni.len() > 4 && uni.len() < 10, "site addressing needs <10");
    let plan = Arc::new(FaultPlan::parse("campaign/defect:3@1=panic").unwrap());
    let _guard = symbist_obs::fault::install(plan);

    let res = run_campaign(&dut, &uni, &serial_options(), |_: &ToyDut| completed(true))
        .expect("an injected per-defect panic must stay isolated");

    assert_eq!(res.simulated(), uni.len());
    assert_eq!(res.unresolved(), 1);
    let bad = res
        .records
        .iter()
        .find(|r| r.outcome.is_unresolved())
        .unwrap();
    assert_eq!(bad.defect_index, 3);
    assert_eq!(
        bad.outcome.unresolved_reason(),
        Some(UnresolvedReason::Panic)
    );
}

#[test]
fn injected_stall_exhausts_the_solve_budget_into_timeout() {
    let _serial = plan_lock();
    let (dut, uni) = universe(2);
    let plan = Arc::new(FaultPlan::parse("campaign/defect:5@1=stall").unwrap());
    let _guard = symbist_obs::fault::install(plan);

    // Every defect drives a genuinely nonlinear solve. Without a budget it
    // converges; the stall injection zeroes the Newton budget for defect 5
    // only, so exactly that solve dies with BudgetExhausted → Timeout.
    let solver_test = |_d: &ToyDut| -> Result<TestOutcome, CircuitError> {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let k = nl.node("k");
        nl.vsource(a, Netlist::GND, 2.0);
        nl.resistor(a, k, 100.0);
        nl.diode(k, Netlist::GND, 1e-14, 1.0);
        let _ = DcSolver::new().solve(&nl)?;
        Ok(completed(false))
    };
    let res = run_campaign(&dut, &uni, &serial_options(), solver_test).unwrap();

    assert_eq!(res.unresolved(), 1, "only the stalled defect is unresolved");
    let stalled = res
        .records
        .iter()
        .find(|r| r.outcome.is_unresolved())
        .unwrap();
    assert_eq!(stalled.defect_index, 5);
    assert_eq!(
        stalled.outcome.unresolved_reason(),
        Some(UnresolvedReason::Timeout)
    );
}

#[test]
fn torn_checkpoint_write_fails_the_campaign_then_resume_is_bit_identical() {
    let _serial = plan_lock();
    let (dut, uni) = universe(2);
    let test = |d: &ToyDut| completed(d.injected().map(|s| s.kind.is_short()).unwrap_or(false));

    // Oracle: uninterrupted single-threaded run.
    let oracle_path = temp_checkpoint("torn-oracle");
    let oracle_opts = CampaignOptions {
        checkpoint: Some(oracle_path.clone()),
        ..serial_options()
    };
    let oracle = run_campaign(&dut, &uni, &oracle_opts, test).unwrap();

    // Chaos run: the checkpoint append for defect 4 writes half a line,
    // flushes, and dies — a worker killed mid-append. The panic escapes
    // the per-defect isolation and fails the whole campaign.
    let chaos_path = temp_checkpoint("torn-chaos");
    let chaos_opts = CampaignOptions {
        checkpoint: Some(chaos_path.clone()),
        ..serial_options()
    };
    {
        let plan = Arc::new(FaultPlan::parse("campaign/checkpoint:4@1=torn").unwrap());
        let _guard = symbist_obs::fault::install(plan);
        let died = catch_unwind(AssertUnwindSafe(|| {
            run_campaign(&dut, &uni, &chaos_opts, test)
        }));
        assert!(died.is_err(), "a torn checkpoint write must be fatal");
    }

    // The file holds the four records before the casualty plus a torn
    // final line the tolerant parser must skip.
    let content = std::fs::read_to_string(&chaos_path).unwrap();
    let complete_lines = content
        .lines()
        .filter(|l| symbist_defects::parse_checkpoint_line(l).is_some())
        .count();
    assert_eq!(complete_lines, 4);
    assert!(
        content.lines().count() == 5,
        "the torn half-line must be present"
    );

    // Resume with the plan uninstalled: the four durable records are
    // reused, the rest re-simulated, and the merged projection (every
    // field except wall time) is byte-identical to the oracle.
    let resumed = run_campaign(&dut, &uni, &chaos_opts, test).unwrap();
    assert_eq!(resumed.resumed, 4, "torn line must not count as durable");
    let project = |res: &symbist_defects::CampaignResult| -> Vec<String> {
        res.records.iter().map(merged_line).collect()
    };
    assert_eq!(project(&resumed), project(&oracle));

    let _ = std::fs::remove_file(&oracle_path);
    let _ = std::fs::remove_file(&chaos_path);
}

#[test]
fn checkpoint_flush_panic_fails_the_campaign_without_a_torn_line() {
    let _serial = plan_lock();
    let (dut, uni) = universe(2);
    let test = |_: &ToyDut| completed(false);
    let path = temp_checkpoint("flush-panic");
    let opts = CampaignOptions {
        checkpoint: Some(path.clone()),
        ..serial_options()
    };
    {
        let plan = Arc::new(FaultPlan::parse("campaign/checkpoint:2@1=panic").unwrap());
        let _guard = symbist_obs::fault::install(plan);
        let died = catch_unwind(AssertUnwindSafe(|| run_campaign(&dut, &uni, &opts, test)));
        assert!(died.is_err(), "a checkpoint-flush panic must be fatal");
    }
    // Unlike `torn`, `panic` unwinds before touching the file: every line
    // present is complete, and the casualty's record is simply absent.
    let content = std::fs::read_to_string(&path).unwrap();
    assert_eq!(content.lines().count(), 2);
    assert!(content
        .lines()
        .all(|l| symbist_defects::parse_checkpoint_line(l).is_some()));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn injections_are_counted_on_the_fault_metric() {
    let _serial = plan_lock();
    let (dut, uni) = universe(2);
    let counter = symbist_obs::counter!(
        r#"symbist_fault_injections_total{action="panic"}"#,
        "Fault-plan injections fired, by action."
    );
    let before = counter.get();
    let plan = Arc::new(FaultPlan::parse("campaign/defect:1@1=panic").unwrap());
    let _guard = symbist_obs::fault::install(plan);
    let _ = run_campaign(&dut, &uni, &serial_options(), |_: &ToyDut| completed(true)).unwrap();
    assert_eq!(counter.get(), before + 1);
}
