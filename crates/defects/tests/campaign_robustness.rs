//! Fault-tolerance acceptance tests for the campaign runner: panic
//! isolation, per-defect budgets, typed unresolved reasons, coverage
//! bounds, and checkpoint/resume bit-identity.
#![allow(clippy::unwrap_used)] // integration tests assert by panicking

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use symbist_adc::fault::{
    check_site, BlockKind, ComponentInfo, ComponentKind, DefectKind, DefectSite, Faultable,
};
use symbist_circuit::dc::DcSolver;
use symbist_circuit::error::CircuitError;
use symbist_circuit::netlist::Netlist;
use symbist_defects::likelihood::LikelihoodModel;
use symbist_defects::{
    run_campaign, CampaignOptions, CampaignResult, DefectUniverse, SimOutcome, TestOutcome,
    UnresolvedReason,
};

/// A minimal Faultable DUT whose behavior is scripted per injected site.
#[derive(Clone)]
struct ToyDut {
    catalog: Vec<ComponentInfo>,
    injected: Option<DefectSite>,
}

impl ToyDut {
    fn new(n: usize) -> Self {
        let catalog = (0..n)
            .map(|i| ComponentInfo {
                block: BlockKind::ScArray,
                name: format!("toy/c{i}"),
                kind: ComponentKind::Resistor,
                area: 1.0 + i as f64,
            })
            .collect();
        Self {
            catalog,
            injected: None,
        }
    }
}

impl Faultable for ToyDut {
    fn components(&self) -> &[ComponentInfo] {
        &self.catalog
    }
    fn inject(&mut self, site: DefectSite) {
        check_site(&self.catalog, site);
        self.injected = Some(site);
    }
    fn clear_defects(&mut self) {
        self.injected = None;
    }
    fn injected(&self) -> Option<DefectSite> {
        self.injected
    }
}

fn universe(n: usize) -> (ToyDut, DefectUniverse) {
    let dut = ToyDut::new(n);
    let uni = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
    (dut, uni)
}

fn completed(detected: bool) -> TestOutcome {
    TestOutcome {
        detected,
        detection_cycle: detected.then_some(3),
        cycles_run: if detected { 3 } else { 192 },
    }
}

/// Is the injected site the scripted "bad" one?
fn is_target(dut: &ToyDut, component: usize, kind: DefectKind) -> bool {
    dut.injected() == Some(DefectSite { component, kind })
}

/// Fresh checkpoint path per test (the suite runs tests concurrently).
fn temp_checkpoint(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!(
        "symbist-ckpt-{}-{tag}-{n}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn panic_on_one_defect_is_isolated() {
    let (dut, uni) = universe(4);
    let res = run_campaign(&dut, &uni, &CampaignOptions::default(), |d: &ToyDut| {
        if is_target(d, 1, DefectKind::Short) {
            panic!("solver blew up on this defect");
        }
        completed(d.injected().map(|s| s.kind.is_short()).unwrap_or(false))
    })
    .expect("campaign must complete despite the panic");

    assert_eq!(res.simulated(), uni.len());
    assert_eq!(res.unresolved(), 1);
    let bad: Vec<_> = res
        .records
        .iter()
        .filter(|r| r.outcome.is_unresolved())
        .collect();
    assert_eq!(bad.len(), 1);
    assert_eq!(
        bad[0].outcome.unresolved_reason(),
        Some(UnresolvedReason::Panic)
    );
    assert_eq!(
        bad[0].site,
        DefectSite {
            component: 1,
            kind: DefectKind::Short
        }
    );
    // Every other record carries a real verdict.
    assert_eq!(
        res.records
            .iter()
            .filter(|r| r.outcome.completed().is_some())
            .count(),
        uni.len() - 1
    );
}

#[test]
fn deadline_times_out_spinning_defect() {
    let (dut, uni) = universe(3);
    let opts = CampaignOptions {
        defect_deadline: Some(Duration::from_millis(10)),
        ..Default::default()
    };
    let res = run_campaign(&dut, &uni, &opts, |d: &ToyDut| {
        if is_target(d, 0, DefectKind::Open) {
            // A test closure stuck well past the deadline without ever
            // entering the solver: only the post-hoc demotion can catch it.
            std::thread::sleep(Duration::from_millis(60));
        }
        completed(false)
    })
    .expect("campaign must complete despite the slow defect");

    let slow: Vec<_> = res
        .records
        .iter()
        .filter(|r| {
            r.site
                == DefectSite {
                    component: 0,
                    kind: DefectKind::Open,
                }
        })
        .collect();
    assert_eq!(slow.len(), 1);
    assert_eq!(
        slow[0].outcome.unresolved_reason(),
        Some(UnresolvedReason::Timeout)
    );
    assert!(slow[0].wall >= Duration::from_millis(10));
    // The fast defects keep their completed verdicts.
    assert_eq!(res.unresolved(), 1);
}

#[test]
fn no_convergence_is_recorded_and_bounds_bracket_truth() {
    let (dut, uni) = universe(6);
    // Scripted ground truth: shorts are detectable, everything else is an
    // escape — but ParamLow simulations "fail to converge".
    let truth_test =
        |d: &ToyDut| completed(d.injected().map(|s| s.kind.is_short()).unwrap_or(false));
    let truth = run_campaign(&dut, &uni, &CampaignOptions::default(), truth_test)
        .unwrap()
        .coverage()
        .value;

    let res = run_campaign(
        &dut,
        &uni,
        &CampaignOptions::default(),
        |d: &ToyDut| -> Result<TestOutcome, CircuitError> {
            if d.injected().map(|s| s.kind == DefectKind::ParamLow) == Some(true) {
                Err(CircuitError::NoConvergence {
                    analysis: "dc",
                    iterations: 200,
                })
            } else {
                Ok(completed(
                    d.injected().map(|s| s.kind.is_short()).unwrap_or(false),
                ))
            }
        },
    )
    .unwrap();

    assert_eq!(res.unresolved(), 6, "one ParamLow per component");
    for r in res.records.iter().filter(|r| r.outcome.is_unresolved()) {
        assert_eq!(
            r.outcome.unresolved_reason(),
            Some(UnresolvedReason::NoConvergence)
        );
        assert_eq!(r.site.kind, DefectKind::ParamLow);
    }
    let (lo, hi) = res.coverage_bounds();
    assert!(
        lo.value <= truth && truth <= hi.value,
        "bounds [{}, {}] must bracket true coverage {}",
        lo.value,
        hi.value,
        truth
    );
    assert!(lo.value < hi.value, "unresolved records must open the gap");
}

#[test]
fn newton_budget_exhaustion_is_deterministic_on_real_solver() {
    let (dut, uni) = universe(2);
    let opts = CampaignOptions {
        newton_budget: Some(1),
        ..Default::default()
    };
    // Every defect drives a genuinely nonlinear solve that cannot converge
    // in a single Newton iteration; the thread budget installed by the
    // campaign must cut it off and surface BudgetExhausted → Timeout.
    let solver_test = |_d: &ToyDut| -> Result<TestOutcome, CircuitError> {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let k = nl.node("k");
        nl.vsource(a, Netlist::GND, 2.0);
        nl.resistor(a, k, 100.0);
        nl.diode(k, Netlist::GND, 1e-14, 1.0);
        let _ = DcSolver::new().solve(&nl)?;
        Ok(completed(false))
    };
    let a = run_campaign(&dut, &uni, &opts, solver_test).unwrap();
    let b = run_campaign(&dut, &uni, &opts, solver_test).unwrap();

    assert_eq!(a.simulated(), uni.len());
    for r in &a.records {
        assert_eq!(
            r.outcome.unresolved_reason(),
            Some(UnresolvedReason::Timeout),
            "budget expiry must map to Timeout, got {:?}",
            r.outcome
        );
    }
    // Iteration budgets (unlike wall deadlines) are fully deterministic.
    let outcomes = |res: &CampaignResult| -> Vec<SimOutcome> {
        res.records.iter().map(|r| r.outcome).collect()
    };
    assert_eq!(outcomes(&a), outcomes(&b));

    // Without the budget the same circuit solves fine: proof that the
    // campaign cleared the thread budget after each defect.
    let clean = run_campaign(&dut, &uni, &CampaignOptions::default(), solver_test).unwrap();
    assert_eq!(clean.unresolved(), 0);
}

#[test]
fn checkpoint_full_reload_is_bit_identical() {
    let (dut, uni) = universe(5);
    let path = temp_checkpoint("full");
    let opts = CampaignOptions {
        threads: 3,
        checkpoint: Some(path.clone()),
        ..Default::default()
    };
    let test = |d: &ToyDut| completed(d.injected().map(|s| s.kind.is_short()).unwrap_or(false));

    let first = run_campaign(&dut, &uni, &opts, test).unwrap();
    assert_eq!(first.resumed, 0);

    // Second run resumes everything: zero re-simulation, and the records —
    // including f64 likelihoods and nanosecond wall times — round-trip
    // bit-identically through the JSONL file.
    let second = run_campaign(&dut, &uni, &opts, |_: &ToyDut| -> TestOutcome {
        panic!("a fully-checkpointed campaign must not re-simulate anything")
    })
    .unwrap();
    assert_eq!(second.resumed, uni.len());
    assert_eq!(second.records, first.records);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn interrupted_campaign_resumes_without_redoing_work() {
    let (dut, uni) = universe(6);
    let path = temp_checkpoint("resume");
    let opts = CampaignOptions {
        threads: 2,
        checkpoint: Some(path.clone()),
        ..Default::default()
    };
    let test = |d: &ToyDut| completed(d.injected().map(|s| s.kind.is_short()).unwrap_or(false));

    let uninterrupted = run_campaign(&dut, &uni, &opts, test).unwrap();

    // Simulate a kill partway through: keep only the first few checkpoint
    // lines, plus a torn final line as a killed process would leave.
    let content = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = content.lines().collect();
    let keep = 3;
    let torn = &lines[keep][..lines[keep].len() / 2];
    std::fs::write(&path, format!("{}\n{torn}", lines[..keep].join("\n"))).unwrap();

    let resumed = run_campaign(&dut, &uni, &opts, test).unwrap();
    assert_eq!(resumed.resumed, keep, "torn line must not count");
    // Bit-identical final records, interrupted or not: same order, same
    // outcomes, same likelihood bits. (Wall times of re-simulated defects
    // legitimately differ; everything else must not.)
    assert_eq!(resumed.records.len(), uninterrupted.records.len());
    for (r, u) in resumed.records.iter().zip(&uninterrupted.records) {
        assert_eq!(r.defect_index, u.defect_index);
        assert_eq!(r.site, u.site);
        assert_eq!(r.likelihood.to_bits(), u.likelihood.to_bits());
        assert_eq!(r.outcome, u.outcome);
    }

    let _ = std::fs::remove_file(&path);
}

#[test]
fn stale_checkpoint_from_other_universe_is_ignored() {
    let (dut, uni) = universe(3);
    let (big_dut, big_uni) = universe(9);
    let path = temp_checkpoint("stale");
    let opts = CampaignOptions {
        checkpoint: Some(path.clone()),
        ..Default::default()
    };
    let test = |d: &ToyDut| completed(d.injected().map(|s| s.kind.is_short()).unwrap_or(false));

    // Populate the checkpoint from the *large* universe, then run the
    // small one against the same file: indices past the small universe
    // must be rejected, in-range ones only accepted when site and
    // likelihood match exactly.
    run_campaign(&big_dut, &big_uni, &opts, test).unwrap();
    let res = run_campaign(&dut, &uni, &opts, test).unwrap();
    assert_eq!(res.simulated(), uni.len());
    // The two universes agree on the leading components, so those records
    // resume; nothing out of range may leak in.
    assert!(res.resumed <= uni.len());
    assert!(res.records.iter().all(|r| r.defect_index < uni.len()));

    let _ = std::fs::remove_file(&path);
}

#[test]
fn unwritable_checkpoint_path_fails_fast() {
    let (dut, uni) = universe(2);
    let opts = CampaignOptions {
        checkpoint: Some(PathBuf::from("/nonexistent-dir/ckpt.jsonl")),
        ..Default::default()
    };
    let err = run_campaign(&dut, &uni, &opts, |_: &ToyDut| completed(false)).unwrap_err();
    assert!(
        matches!(err, symbist_defects::CampaignError::Checkpoint { .. }),
        "got {err}"
    );
}
