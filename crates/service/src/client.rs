//! A small blocking client for the service API — used by the example,
//! the integration tests, and the throughput benchmarks. One TCP
//! connection per request, mirroring the server's one-request-per-
//! connection model.
//!
//! Construction goes through [`Client::builder`]; the builder defaults to
//! the versioned `/v1` API surface:
//!
//! ```no_run
//! use std::time::Duration;
//! use symbist_service::Client;
//!
//! let client = Client::builder()
//!     .base_url("127.0.0.1:7171")
//!     .timeout(Duration::from_secs(5))
//!     .retries(2)
//!     .build();
//! # let _ = client;
//! ```
//!
//! Server-side failures arrive as [`ClientError::Service`] carrying a
//! typed [`ServiceError`] parsed from the error envelope — match on the
//! variant, never on message text.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use symbist_defects::checkpoint::parse_checkpoint_line;
use symbist_defects::DefectRecord;
use symbist_dut::DutSpec;

use crate::backoff::{Backoff, DEFAULT_BASE, DEFAULT_CAP};
use crate::job::JobId;
use crate::json::Json;
use crate::spec::JobSpec;

/// A non-2xx response, parsed from the service's typed error envelope
/// (`{"error": {"code", "message", ...}}`) into the matching variant.
/// Unknown or future codes land in [`ServiceError::Other`], so adding a
/// server-side code is not a client-breaking change.
#[derive(Debug, Clone)]
pub enum ServiceError {
    /// `400 bad_request`: malformed body, spec, or parameters.
    BadRequest(String),
    /// `404 not_found`: no such job or route.
    NotFound(String),
    /// `405 method_not_allowed`.
    MethodNotAllowed(String),
    /// `409 conflict`: the job's state refuses the operation.
    Conflict(String),
    /// `413 payload_too_large`.
    PayloadTooLarge(String),
    /// `403 quota_exceeded`: the tenant's DUT-registry quota is full.
    /// Deliberately not `429`: a quota does not heal by waiting, so the
    /// client must never auto-retry it.
    QuotaExceeded(String),
    /// `422 lint_failed`: the pre-flight lint gate rejected the spec;
    /// `diagnostics` holds the lint report.
    LintFailed {
        /// Envelope message.
        message: String,
        /// The lint report (errors/warnings/diagnostics), when present.
        diagnostics: Option<Json>,
    },
    /// `429 saturated`: the handler pool refused the connection.
    Saturated {
        /// Envelope message.
        message: String,
        /// Server retry hint in seconds.
        retry_after: Option<u64>,
    },
    /// `503 queue_full`: the bounded job queue is at capacity.
    QueueFull {
        /// Envelope message.
        message: String,
        /// Server retry hint in seconds.
        retry_after: Option<u64>,
    },
    /// `503 draining`: the service is shutting down.
    Draining(String),
    /// `308 moved_permanently`: a deprecated unversioned path was used.
    MovedPermanently(String),
    /// Any other status/code pair, including codes newer than this client.
    Other {
        /// HTTP status code.
        status: u16,
        /// The envelope's `code` slug (empty when unparseable).
        code: String,
        /// Envelope (or raw body) message.
        message: String,
    },
}

impl ServiceError {
    /// The HTTP status this error arrived with.
    pub fn status(&self) -> u16 {
        match self {
            ServiceError::BadRequest(_) => 400,
            ServiceError::NotFound(_) => 404,
            ServiceError::MethodNotAllowed(_) => 405,
            ServiceError::Conflict(_) => 409,
            ServiceError::PayloadTooLarge(_) => 413,
            ServiceError::QuotaExceeded(_) => 403,
            ServiceError::LintFailed { .. } => 422,
            ServiceError::Saturated { .. } => 429,
            ServiceError::QueueFull { .. } | ServiceError::Draining(_) => 503,
            ServiceError::MovedPermanently(_) => 308,
            ServiceError::Other { status, .. } => *status,
        }
    }

    /// The server's retry hint in seconds, when it gave one.
    pub fn retry_after(&self) -> Option<u64> {
        match self {
            ServiceError::Saturated { retry_after, .. }
            | ServiceError::QueueFull { retry_after, .. } => *retry_after,
            _ => None,
        }
    }

    /// Parses a non-2xx body. Falls back to [`ServiceError::Other`] with
    /// the raw body when the envelope is absent or malformed.
    fn parse(status: u16, body: &str) -> ServiceError {
        let envelope = Json::parse(body)
            .ok()
            .and_then(|doc| doc.get("error").cloned());
        let Some(envelope) = envelope else {
            return ServiceError::Other {
                status,
                code: String::new(),
                message: body.trim().to_string(),
            };
        };
        let field = |name: &str| {
            envelope
                .get(name)
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string()
        };
        let code = field("code");
        let message = field("message");
        let retry_after = envelope.get("retry_after").and_then(Json::as_u64);
        let diagnostics = envelope.get("diagnostics").cloned();
        match code.as_str() {
            "bad_request" => ServiceError::BadRequest(message),
            "not_found" => ServiceError::NotFound(message),
            "method_not_allowed" => ServiceError::MethodNotAllowed(message),
            "conflict" => ServiceError::Conflict(message),
            "payload_too_large" => ServiceError::PayloadTooLarge(message),
            "quota_exceeded" => ServiceError::QuotaExceeded(message),
            "lint_failed" => ServiceError::LintFailed {
                message,
                diagnostics,
            },
            "saturated" => ServiceError::Saturated {
                message,
                retry_after,
            },
            "queue_full" => ServiceError::QueueFull {
                message,
                retry_after,
            },
            "draining" => ServiceError::Draining(message),
            "moved_permanently" => ServiceError::MovedPermanently(message),
            _ => ServiceError::Other {
                status,
                code,
                message,
            },
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::NotFound(m) => write!(f, "not found: {m}"),
            ServiceError::MethodNotAllowed(m) => write!(f, "method not allowed: {m}"),
            ServiceError::Conflict(m) => write!(f, "conflict: {m}"),
            ServiceError::PayloadTooLarge(m) => write!(f, "payload too large: {m}"),
            ServiceError::QuotaExceeded(m) => write!(f, "quota exceeded: {m}"),
            ServiceError::LintFailed { message, .. } => write!(f, "lint failed: {message}"),
            ServiceError::Saturated { message, .. } => write!(f, "saturated: {message}"),
            ServiceError::QueueFull { message, .. } => write!(f, "queue full: {message}"),
            ServiceError::Draining(m) => write!(f, "draining: {m}"),
            ServiceError::MovedPermanently(m) => write!(f, "moved permanently: {m}"),
            ServiceError::Other {
                status,
                code,
                message,
            } => write!(f, "HTTP {status} ({code}): {message}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server answered with a non-2xx status; the typed envelope.
    Service(ServiceError),
    /// The response violated the wire contract.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Service(e) => write!(f, "service error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A parsed (non-streaming) response.
struct Response {
    status: u16,
    body: String,
}

impl Response {
    fn json(&self) -> Result<Json, ClientError> {
        Json::parse(&self.body).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    fn check(self) -> Result<Response, ClientError> {
        if (200..300).contains(&self.status) {
            return Ok(self);
        }
        Err(ClientError::Service(ServiceError::parse(
            self.status,
            &self.body,
        )))
    }
}

/// Configures and builds a [`Client`]; see [`Client::builder`].
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    addr: String,
    base_path: String,
    timeout: Duration,
    retries: u32,
    backoff_base: Duration,
    backoff_cap: Duration,
    backoff_seed: u64,
}

impl Default for ClientBuilder {
    fn default() -> Self {
        ClientBuilder {
            addr: String::new(),
            base_path: "/v1".to_string(),
            timeout: Duration::from_secs(30),
            retries: 0,
            backoff_base: DEFAULT_BASE,
            backoff_cap: DEFAULT_CAP,
            backoff_seed: 0x5EED0FF,
        }
    }
}

impl ClientBuilder {
    /// Sets the service address, optionally with an API path prefix:
    /// `"127.0.0.1:7171"` targets the default `/v1` surface, while
    /// `"127.0.0.1:7171/v1"` (or a future `/v2`) pins one explicitly.
    pub fn base_url(mut self, base: impl Into<String>) -> ClientBuilder {
        let base = base.into();
        match base.find('/') {
            Some(slash) => {
                self.addr = base[..slash].to_string();
                self.base_path = base[slash..].trim_end_matches('/').to_string();
            }
            None => self.addr = base,
        }
        self
    }

    /// Overrides the per-request read timeout (default 30 s). Streaming
    /// reads use it per line, not per stream.
    pub fn timeout(mut self, timeout: Duration) -> ClientBuilder {
        self.timeout = timeout;
        self
    }

    /// How many times to re-send a request that provably never entered
    /// the service: transport connect failures and `429 saturated`
    /// refusals (the acceptor answered before reading the request).
    /// Definitive answers — `503 queue_full` included — are never
    /// retried. Default 0.
    pub fn retries(mut self, retries: u32) -> ClientBuilder {
        self.retries = retries;
        self
    }

    /// Tunes the retry backoff schedule: sleeps are drawn with
    /// decorrelated jitter from `[base, cap]` (see [`Backoff`]), with the
    /// server's `Retry-After` applied as a floor on top.
    pub fn backoff(mut self, base: Duration, cap: Duration) -> ClientBuilder {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Seeds the jitter RNG so a retry schedule is reproducible in tests.
    pub fn backoff_seed(mut self, seed: u64) -> ClientBuilder {
        self.backoff_seed = seed;
        self
    }

    /// Builds the client.
    pub fn build(self) -> Client {
        Client {
            addr: self.addr,
            base_path: self.base_path,
            timeout: self.timeout,
            retries: self.retries,
            backoff_base: self.backoff_base,
            backoff_cap: self.backoff_cap,
            backoff_seed: self.backoff_seed,
        }
    }
}

/// Blocking HTTP client bound to one service address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    base_path: String,
    timeout: Duration,
    retries: u32,
    backoff_base: Duration,
    backoff_cap: Duration,
    backoff_seed: u64,
}

impl Client {
    /// Starts a [`ClientBuilder`] targeting the `/v1` API by default.
    pub fn builder() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// Creates a client for `addr` (e.g. `"127.0.0.1:7171"`), targeting
    /// the `/v1` API with default timeout and no retries.
    #[deprecated(
        since = "0.1.0",
        note = "use Client::builder().base_url(addr).build() instead"
    )]
    pub fn new(addr: impl Into<String>) -> Client {
        Client::builder().base_url(addr).build()
    }

    /// Overrides the per-request read timeout; prefer
    /// [`ClientBuilder::timeout`].
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    fn url(&self, path: &str) -> String {
        format!("{}{path}", self.base_path)
    }

    fn connect(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<TcpStream, ClientError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            self.addr,
            body.len()
        );
        stream.write_all(request.as_bytes())?;
        stream.flush()?;
        Ok(stream)
    }

    fn request_once(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, ClientError> {
        let stream = self.connect(method, path, body)?;
        let mut reader = BufReader::new(stream);
        let status = read_status(&mut reader)?;
        skip_headers(&mut reader)?;
        let mut body = String::new();
        reader.read_to_string(&mut body)?; // EOF-delimited: Connection: close
        Ok(Response { status, body })
    }

    /// One request, with the builder's retry policy: only failures where
    /// the request never entered the service (connect errors, `429`) are
    /// re-sent. Sleeps follow the seeded decorrelated-jitter [`Backoff`]
    /// schedule, with the server's `Retry-After` honored as a floor — a
    /// loaded server's hint can only lengthen the wait, never shorten it.
    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, ClientError> {
        let mut attempt = 0;
        let mut backoff = Backoff::new(self.backoff_seed, self.backoff_base, self.backoff_cap);
        loop {
            let result = self.request_once(method, path, body);
            let retryable = match &result {
                Err(ClientError::Io(_)) => true,
                Ok(response) if response.status == 429 => true,
                _ => false,
            };
            if !retryable || attempt >= self.retries {
                return result;
            }
            attempt += 1;
            let floor = match &result {
                Ok(response) => ServiceError::parse(response.status, &response.body)
                    .retry_after()
                    .map(Duration::from_secs),
                Err(_) => None,
            };
            std::thread::sleep(backoff.next(floor));
        }
    }

    /// `GET /v1/healthz`.
    pub fn health(&self) -> Result<(), ClientError> {
        self.request("GET", &self.url("/healthz"), None)?
            .check()
            .map(|_| ())
    }

    /// `GET /v1/stats`.
    pub fn stats(&self) -> Result<Json, ClientError> {
        self.request("GET", &self.url("/stats"), None)?
            .check()?
            .json()
    }

    /// `GET /v1/metrics`: the raw Prometheus text exposition.
    pub fn metrics(&self) -> Result<String, ClientError> {
        self.request("GET", &self.url("/metrics"), None)?
            .check()
            .map(|r| r.body)
    }

    /// `GET /v1/universe`: the size of the backend's full defect universe
    /// (the catalog-index domain shard ranges address).
    pub fn universe(&self) -> Result<u64, ClientError> {
        self.request("GET", &self.url("/universe"), None)?
            .check()?
            .json()?
            .get("defects")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("universe response missing defects".into()))
    }

    /// `POST /v1/jobs`: submits a spec, returning the new job id.
    /// Queue-full backpressure surfaces as
    /// `ClientError::Service(ServiceError::QueueFull { .. })`.
    pub fn submit(&self, spec: &JobSpec) -> Result<JobId, ClientError> {
        let body = spec.to_json().to_string();
        let response = self
            .request("POST", &self.url("/jobs"), Some(&body))?
            .check()?;
        response
            .json()?
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("submit response missing id".into()))
    }

    /// `GET /v1/jobs/{id}`: the raw status document.
    pub fn status(&self, id: JobId) -> Result<Json, ClientError> {
        self.request("GET", &self.url(&format!("/jobs/{id}")), None)?
            .check()?
            .json()
    }

    /// `DELETE /v1/jobs/{id}`.
    pub fn cancel(&self, id: JobId) -> Result<(), ClientError> {
        self.request("DELETE", &self.url(&format!("/jobs/{id}")), None)?
            .check()
            .map(|_| ())
    }

    /// `GET /v1/report/{id}`: the final coverage report (completed jobs).
    pub fn report(&self, id: JobId) -> Result<Json, ClientError> {
        self.request("GET", &self.url(&format!("/report/{id}")), None)?
            .check()?
            .json()
    }

    /// `GET /v1/lint/{id}`: the pre-flight lint report evaluated for the
    /// job's DUT and defect universe at submission.
    pub fn lint(&self, id: JobId) -> Result<Json, ClientError> {
        self.request("GET", &self.url(&format!("/lint/{id}")), None)?
            .check()?
            .json()
    }

    /// `GET /v1/jobs/{id}/trace`: the job's captured trace spans as
    /// `chrome://tracing` NDJSON (one event object per line).
    pub fn trace(&self, id: JobId) -> Result<String, ClientError> {
        self.request("GET", &self.url(&format!("/jobs/{id}/trace")), None)?
            .check()
            .map(|r| r.body)
    }

    /// `POST /v1/duts`: registers a DUT (netlist + invariance spec) and
    /// returns the response document (`id`, `created`, `defects`, ...).
    ///
    /// Uploads are content-addressed and idempotent, so the builder's
    /// retry policy — transport errors and `429` only, failures where the
    /// request provably never entered the service — is safe here too: a
    /// retry that races a success just returns the existing entry.
    /// Definitive rejections (`422 lint_failed`, `403 quota_exceeded`,
    /// `400 bad_request`) are never retried.
    pub fn upload_dut(&self, spec: &DutSpec) -> Result<Json, ClientError> {
        self.upload_dut_json(&spec.to_json().to_string())
    }

    /// `POST /v1/duts` with a pre-serialized JSON spec body (e.g. read
    /// from a file); see [`Client::upload_dut`].
    pub fn upload_dut_json(&self, body: &str) -> Result<Json, ClientError> {
        self.request("POST", &self.url("/duts"), Some(body))?
            .check()?
            .json()
    }

    /// `GET /v1/duts/{id-or-name}`: one registered DUT's document,
    /// including its cached lint report.
    pub fn get_dut(&self, reference: &str) -> Result<Json, ClientError> {
        self.request("GET", &self.url(&format!("/duts/{reference}")), None)?
            .check()?
            .json()
    }

    /// `GET /v1/duts/{id-or-name}/analysis`: the DUT's stage-two static
    /// analysis (symmetry orbits, defect-class partition, detectability),
    /// cached server-side at upload.
    pub fn dut_analysis(&self, reference: &str) -> Result<Json, ClientError> {
        self.request(
            "GET",
            &self.url(&format!("/duts/{reference}/analysis")),
            None,
        )?
        .check()?
        .json()
    }

    /// `GET /v1/duts`: summaries of every registered DUT, upload order.
    pub fn list_duts(&self) -> Result<Vec<Json>, ClientError> {
        let doc = self
            .request("GET", &self.url("/duts"), None)?
            .check()?
            .json()?;
        match doc.get("duts") {
            Some(Json::Arr(items)) => Ok(items.clone()),
            _ => Err(ClientError::Protocol(
                "duts response missing duts array".into(),
            )),
        }
    }

    /// `POST /v1/shutdown`: asks the server to drain and exit.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        self.request("POST", &self.url("/shutdown"), None)?
            .check()
            .map(|_| ())
    }

    /// `GET /v1/jobs/{id}/results`: opens the NDJSON record stream. The
    /// iterator follows a live job and ends when the job reaches a
    /// terminal state.
    pub fn stream_results(&self, id: JobId) -> Result<ResultStream, ClientError> {
        let stream = self.connect("GET", &self.url(&format!("/jobs/{id}/results")), None)?;
        let mut reader = BufReader::new(stream);
        let status = read_status(&mut reader)?;
        if status != 200 {
            let mut body = String::new();
            skip_headers(&mut reader)?;
            reader.read_to_string(&mut body)?;
            return Response { status, body }.check().map(|_| unreachable!());
        }
        skip_headers(&mut reader)?;
        Ok(ResultStream { reader })
    }

    /// Polls `GET /v1/jobs/{id}` until the job reaches a terminal state,
    /// returning the final state label and status document.
    pub fn wait_terminal(&self, id: JobId, poll: Duration) -> Result<(String, Json), ClientError> {
        loop {
            let status = self.status(id)?;
            let state = status
                .get("state")
                .and_then(Json::as_str)
                .ok_or_else(|| ClientError::Protocol("status missing state".into()))?
                .to_string();
            if matches!(state.as_str(), "completed" | "failed" | "cancelled") {
                return Ok((state, status));
            }
            std::thread::sleep(poll);
        }
    }
}

fn read_status(reader: &mut BufReader<TcpStream>) -> Result<u16, ClientError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        // Connection closed before any status line: a transport failure
        // (retryable), not a protocol violation by the server.
        return Err(ClientError::Io(std::io::Error::from(
            std::io::ErrorKind::UnexpectedEof,
        )));
    }
    // "HTTP/1.1 200 OK"
    line.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line {line:?}")))
}

fn skip_headers(reader: &mut BufReader<TcpStream>) -> Result<(), ClientError> {
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line.trim_end().is_empty() {
            return Ok(());
        }
    }
}

/// Iterator over a live NDJSON result stream; each item is one campaign
/// record, parsed with the checkpoint-line parser (the wire format *is*
/// the checkpoint format).
pub struct ResultStream {
    reader: BufReader<TcpStream>,
}

impl Iterator for ResultStream {
    type Item = Result<DefectRecord, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) => return None, // clean end of stream
                Ok(_) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    return Some(parse_checkpoint_line(&line).ok_or_else(|| {
                        ClientError::Protocol(format!("unparseable record line {line:?}"))
                    }));
                }
                Err(e) => return Some(Err(ClientError::Io(e))),
            }
        }
    }
}
