//! A small blocking client for the service API — used by the example,
//! the integration tests, and the throughput benchmarks. One TCP
//! connection per request, mirroring the server's one-request-per-
//! connection model.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use symbist_defects::checkpoint::parse_checkpoint_line;
use symbist_defects::DefectRecord;

use crate::job::JobId;
use crate::json::Json;
use crate::spec::JobSpec;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server answered with a non-2xx status.
    Http {
        /// HTTP status code.
        status: u16,
        /// The server's `error` message, when parseable.
        message: String,
    },
    /// The response violated the wire contract.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Http { status, message } => write!(f, "HTTP {status}: {message}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A parsed (non-streaming) response.
struct Response {
    status: u16,
    body: String,
}

impl Response {
    fn json(&self) -> Result<Json, ClientError> {
        Json::parse(&self.body).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    fn check(self) -> Result<Response, ClientError> {
        if (200..300).contains(&self.status) {
            return Ok(self);
        }
        let message = self
            .json()
            .ok()
            .and_then(|j| j.get("error").and_then(Json::as_str).map(str::to_string))
            .unwrap_or_else(|| self.body.trim().to_string());
        Err(ClientError::Http {
            status: self.status,
            message,
        })
    }
}

/// Blocking HTTP client bound to one service address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Duration,
}

impl Client {
    /// Creates a client for `addr` (e.g. `"127.0.0.1:7171"`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            timeout: Duration::from_secs(30),
        }
    }

    /// Overrides the per-request read timeout (default 30 s). Streaming
    /// reads use it per line, not per stream.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    fn connect(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<TcpStream, ClientError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            self.addr,
            body.len()
        );
        stream.write_all(request.as_bytes())?;
        stream.flush()?;
        Ok(stream)
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, ClientError> {
        let stream = self.connect(method, path, body)?;
        let mut reader = BufReader::new(stream);
        let status = read_status(&mut reader)?;
        skip_headers(&mut reader)?;
        let mut body = String::new();
        reader.read_to_string(&mut body)?; // EOF-delimited: Connection: close
        Ok(Response { status, body })
    }

    /// `GET /healthz`.
    pub fn health(&self) -> Result<(), ClientError> {
        self.request("GET", "/healthz", None)?.check().map(|_| ())
    }

    /// `GET /stats`.
    pub fn stats(&self) -> Result<Json, ClientError> {
        self.request("GET", "/stats", None)?.check()?.json()
    }

    /// `POST /jobs`: submits a spec, returning the new job id. Queue-full
    /// backpressure surfaces as `ClientError::Http { status: 503, .. }`.
    pub fn submit(&self, spec: &JobSpec) -> Result<JobId, ClientError> {
        let body = spec.to_json().to_string();
        let response = self.request("POST", "/jobs", Some(&body))?.check()?;
        response
            .json()?
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("submit response missing id".into()))
    }

    /// `GET /jobs/{id}`: the raw status document.
    pub fn status(&self, id: JobId) -> Result<Json, ClientError> {
        self.request("GET", &format!("/jobs/{id}"), None)?
            .check()?
            .json()
    }

    /// `DELETE /jobs/{id}`.
    pub fn cancel(&self, id: JobId) -> Result<(), ClientError> {
        self.request("DELETE", &format!("/jobs/{id}"), None)?
            .check()
            .map(|_| ())
    }

    /// `GET /report/{id}`: the final coverage report (completed jobs).
    pub fn report(&self, id: JobId) -> Result<Json, ClientError> {
        self.request("GET", &format!("/report/{id}"), None)?
            .check()?
            .json()
    }

    /// `GET /lint/{id}`: the pre-flight lint report evaluated for the
    /// job's DUT and defect universe at submission.
    pub fn lint(&self, id: JobId) -> Result<Json, ClientError> {
        self.request("GET", &format!("/lint/{id}"), None)?
            .check()?
            .json()
    }

    /// `POST /shutdown`: asks the server to drain and exit.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        self.request("POST", "/shutdown", None)?.check().map(|_| ())
    }

    /// `GET /jobs/{id}/results`: opens the NDJSON record stream. The
    /// iterator follows a live job and ends when the job reaches a
    /// terminal state.
    pub fn stream_results(&self, id: JobId) -> Result<ResultStream, ClientError> {
        let stream = self.connect("GET", &format!("/jobs/{id}/results"), None)?;
        let mut reader = BufReader::new(stream);
        let status = read_status(&mut reader)?;
        if status != 200 {
            let mut body = String::new();
            skip_headers(&mut reader)?;
            reader.read_to_string(&mut body)?;
            return Response { status, body }.check().map(|_| unreachable!());
        }
        skip_headers(&mut reader)?;
        Ok(ResultStream { reader })
    }

    /// Polls `GET /jobs/{id}` until the job reaches a terminal state,
    /// returning the final state label and status document.
    pub fn wait_terminal(&self, id: JobId, poll: Duration) -> Result<(String, Json), ClientError> {
        loop {
            let status = self.status(id)?;
            let state = status
                .get("state")
                .and_then(Json::as_str)
                .ok_or_else(|| ClientError::Protocol("status missing state".into()))?
                .to_string();
            if matches!(state.as_str(), "completed" | "failed" | "cancelled") {
                return Ok((state, status));
            }
            std::thread::sleep(poll);
        }
    }
}

fn read_status(reader: &mut BufReader<TcpStream>) -> Result<u16, ClientError> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    // "HTTP/1.1 200 OK"
    line.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line {line:?}")))
}

fn skip_headers(reader: &mut BufReader<TcpStream>) -> Result<(), ClientError> {
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line.trim_end().is_empty() {
            return Ok(());
        }
    }
}

/// Iterator over a live NDJSON result stream; each item is one campaign
/// record, parsed with the checkpoint-line parser (the wire format *is*
/// the checkpoint format).
pub struct ResultStream {
    reader: BufReader<TcpStream>,
}

impl Iterator for ResultStream {
    type Item = Result<DefectRecord, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) => return None, // clean end of stream
                Ok(_) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    return Some(parse_checkpoint_line(&line).ok_or_else(|| {
                        ClientError::Protocol(format!("unparseable record line {line:?}"))
                    }));
                }
                Err(e) => return Some(Err(ClientError::Io(e))),
            }
        }
    }
}
