//! Campaign backends: how a [`JobSpec`](crate::spec::JobSpec) turns into
//! an actual defect campaign.
//!
//! The service core (registry, workers, HTTP front-end) is backend
//! agnostic. The production backend is [`AdcBackend`] — the paper's SAR
//! ADC IP under the calibrated SymBIST engine. [`SyntheticBackend`] is a
//! fast, deterministic stand-in for integration tests and throughput
//! benchmarks: its defects are scripted (shorts detected, everything else
//! not) and its per-defect cost is a configurable delay plus an optional
//! [`Gate`] tests can hold to freeze a campaign mid-flight.

use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use symbist::experiments::ExperimentConfig;
use symbist::session::{Schedule, SymBist};
use symbist_adc::fault::{check_site, ComponentInfo, ComponentKind, DefectSite, Faultable};
use symbist_adc::{BlockKind, SarAdc};
use symbist_defects::likelihood::LikelihoodModel;
use symbist_defects::{
    run_campaign_monitored, CampaignError, CampaignMonitor, CampaignResult, DefectUniverse,
    SimOutcome, TestOutcome,
};
use symbist_lint::{analyze_adc_with_universe, lint_adc_with_universe, AnalysisReport, LintReport};

use crate::spec::{JobSpec, SpecError};

/// Turns validated job specs into campaigns. Implementations are shared
/// across worker threads, so `run` must be re-entrant.
pub trait CampaignBackend: Send + Sync {
    /// Checks a spec against this backend's universe so a bad spec is
    /// rejected at submit time (`400`) instead of failing the job later.
    fn validate(&self, spec: &JobSpec) -> Result<(), SpecError>;

    /// Size of this backend's full defect universe: the catalog-index
    /// domain that `index_lo`/`index_hi` shard ranges address. Exposed on
    /// `GET /v1/universe` so a coordinator can split the range before
    /// submitting shard jobs.
    fn universe_len(&self) -> usize;

    /// Static pre-flight analysis for a spec: the lint report of the DUT
    /// and universe the job would run against. The front-end rejects
    /// submissions whose report carries Error-level diagnostics (`422`)
    /// before the job ever reaches the queue or a worker slot. The
    /// default is an empty (passing) report.
    fn preflight(&self, _spec: &JobSpec) -> LintReport {
        LintReport::default()
    }

    /// Runs the campaign described by `spec`, checkpointing to
    /// `checkpoint` and publishing every record through `monitor` (which
    /// may also cancel the campaign between defects).
    fn run(
        &self,
        spec: &JobSpec,
        checkpoint: Option<PathBuf>,
        monitor: &dyn CampaignMonitor,
    ) -> Result<CampaignResult, CampaignError>;

    /// Stage-two static analysis for the spec's DUT: symmetry orbits, the
    /// (orbit × defect kind) class partition, and cone-of-influence
    /// detectability. Served verbatim on `GET /v1/duts/{id}/analysis` and
    /// summarized inside `GET /v1/lint/{id}`. `None` (the default) means
    /// the backend has no analyzer for that DUT — the routes answer `404`
    /// and the lint response simply omits the summary.
    fn analysis(&self, _spec: &JobSpec) -> Option<AnalysisReport> {
        None
    }

    /// The DUT registry behind this backend, if it serves one. The HTTP
    /// front-end routes `/v1/duts` through this; backends without a
    /// registry (the synthetic test backend, a bare ADC server) answer
    /// `404` there. The default is `None`.
    fn dut_registry(&self) -> Option<&Arc<symbist_dut::DutRegistry>> {
        None
    }
}

/// Resolves a spec's block label against the backend's catalog.
fn resolve_block(spec: &JobSpec) -> Result<Option<BlockKind>, SpecError> {
    match &spec.block {
        None => Ok(None),
        Some(label) => BlockKind::ALL
            .into_iter()
            .find(|b| b.label() == label)
            .map(Some)
            .ok_or_else(|| {
                SpecError(format!(
                    "unknown block \"{label}\" (expected one of: {})",
                    BlockKind::ALL.map(BlockKind::label).join(", ")
                ))
            }),
    }
}

/// Checks the sampled/exhaustive choice against a universe size.
pub(crate) fn check_sample(spec: &JobSpec, universe_len: usize) -> Result<(), SpecError> {
    if let Some(n) = spec.sample_size {
        if n > universe_len {
            return Err(SpecError(format!(
                "sample_size {n} exceeds the {universe_len}-defect universe"
            )));
        }
    }
    Ok(())
}

/// Checks a spec's shard range against the universe it will run over.
pub(crate) fn check_range(spec: &JobSpec, universe_len: usize) -> Result<(), SpecError> {
    let lo = spec.index_lo.unwrap_or(0);
    let hi = spec.index_hi.unwrap_or(universe_len);
    if lo >= hi || hi > universe_len {
        return Err(SpecError(format!(
            "index range [{lo}, {hi}) invalid for the {universe_len}-defect universe"
        )));
    }
    Ok(())
}

/// Parses a spec's schedule label, defaulting to sequential.
fn resolve_schedule(spec: &JobSpec) -> Result<Schedule, SpecError> {
    match &spec.schedule {
        None => Ok(Schedule::Sequential),
        Some(label) => Schedule::from_label(label).ok_or_else(|| {
            SpecError(format!(
                "unknown schedule \"{label}\" (expected \"sequential\" or \"parallel\")"
            ))
        }),
    }
}

/// The production backend: the paper's SAR ADC IP with both SymBIST
/// comparator schedules calibrated once at startup.
pub struct AdcBackend {
    adc: SarAdc,
    universe: DefectUniverse,
    lint: LintReport,
    analysis: AnalysisReport,
    sequential: SymBist,
    parallel: SymBist,
}

impl AdcBackend {
    /// Builds the ADC, enumerates its defect universe, and calibrates a
    /// SymBIST engine per schedule (the expensive part — done once, not
    /// per job). The static lint report is also computed here: the DUT
    /// and universe are fixed for the backend's lifetime, so pre-flight
    /// per submission is a clone, not a re-analysis.
    pub fn new(xc: &ExperimentConfig) -> AdcBackend {
        let adc = SarAdc::new(xc.adc.clone());
        let universe = DefectUniverse::enumerate(&adc, &LikelihoodModel::default());
        let lint = lint_adc_with_universe(&adc, &universe);
        let analysis = analyze_adc_with_universe(&adc, &universe);
        let engine = |schedule| {
            let mut xc = xc.clone();
            xc.schedule = schedule;
            xc.build_engine()
        };
        AdcBackend {
            adc,
            universe,
            lint,
            analysis,
            sequential: engine(Schedule::Sequential),
            parallel: engine(Schedule::Parallel),
        }
    }

    /// Size of the full defect universe.
    pub fn universe_len(&self) -> usize {
        self.universe.len()
    }

    fn select(&self, block: Option<BlockKind>) -> DefectUniverse {
        match block {
            None => DefectUniverse::from_defects(self.universe.defects().to_vec()),
            Some(block) => self.universe.filter_block(block),
        }
    }
}

impl CampaignBackend for AdcBackend {
    fn preflight(&self, _spec: &JobSpec) -> LintReport {
        self.lint.clone()
    }

    fn analysis(&self, spec: &JobSpec) -> Option<AnalysisReport> {
        // Only answer for the baked-in DUT: a bare ADC server (no
        // registry decorator) must not serve its own analysis under an
        // arbitrary `/v1/duts/{id}/analysis` reference.
        matches!(
            spec.dut.as_deref(),
            None | Some(symbist_dut::BUILTIN_ADC_DUT)
        )
        .then(|| self.analysis.clone())
    }

    fn validate(&self, spec: &JobSpec) -> Result<(), SpecError> {
        let block = resolve_block(spec)?;
        resolve_schedule(spec)?;
        let universe = self.select(block);
        if universe.is_empty() {
            return Err(SpecError(format!(
                "block \"{}\" has no defects",
                spec.block.as_deref().unwrap_or("?")
            )));
        }
        check_sample(spec, universe.len())?;
        check_range(spec, universe.len())
    }

    fn universe_len(&self) -> usize {
        self.universe.len()
    }

    fn run(
        &self,
        spec: &JobSpec,
        checkpoint: Option<PathBuf>,
        monitor: &dyn CampaignMonitor,
    ) -> Result<CampaignResult, CampaignError> {
        let universe = self.select(resolve_block(spec).map_err(|_| CampaignError::EmptyUniverse)?);
        let engine = match resolve_schedule(spec).unwrap_or(Schedule::Sequential) {
            Schedule::Sequential => &self.sequential,
            Schedule::Parallel => &self.parallel,
        };
        let options = spec.campaign_options(checkpoint, universe.len());
        run_campaign_monitored(
            &self.adc,
            &universe,
            &options,
            |dut| engine.campaign_test(dut),
            monitor,
        )
    }
}

/// A barrier tests hold to freeze a synthetic campaign mid-defect: while
/// held, every in-flight defect simulation blocks in [`Gate::pass`] until
/// [`Gate::release`]. Lets tests deterministically observe a `running`
/// job with a known record count.
#[derive(Debug, Default)]
pub struct Gate {
    held: Mutex<bool>,
    released: Condvar,
}

impl Gate {
    /// Creates an open gate.
    pub fn new() -> Arc<Gate> {
        Arc::new(Gate::default())
    }

    /// Closes the gate: subsequent [`pass`](Self::pass) calls block.
    pub fn hold(&self) {
        *self.held.lock().unwrap_or_else(|e| e.into_inner()) = true;
    }

    /// Opens the gate, waking every blocked simulation.
    pub fn release(&self) {
        *self.held.lock().unwrap_or_else(|e| e.into_inner()) = false;
        self.released.notify_all();
    }

    fn pass(&self) {
        let mut held = self.held.lock().unwrap_or_else(|e| e.into_inner());
        while *held {
            held = self.released.wait(held).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// The synthetic DUT behind [`SyntheticBackend`]: `n` resistors in the SC
/// Array block, scripted detection (short-class defects detected,
/// everything else an escape).
#[derive(Clone)]
pub struct SyntheticDut {
    catalog: Arc<Vec<ComponentInfo>>,
    injected: Option<DefectSite>,
}

impl SyntheticDut {
    fn new(components: usize) -> SyntheticDut {
        let catalog = (0..components)
            .map(|i| ComponentInfo {
                block: BlockKind::ScArray,
                name: format!("synthetic/r{i}"),
                kind: ComponentKind::Resistor,
                area: 1.0 + i as f64,
            })
            .collect();
        SyntheticDut {
            catalog: Arc::new(catalog),
            injected: None,
        }
    }
}

impl Faultable for SyntheticDut {
    fn components(&self) -> &[ComponentInfo] {
        &self.catalog
    }
    fn inject(&mut self, site: DefectSite) {
        check_site(&self.catalog, site);
        self.injected = Some(site);
    }
    fn clear_defects(&mut self) {
        self.injected = None;
    }
    fn injected(&self) -> Option<DefectSite> {
        self.injected
    }
}

/// Deterministic test/bench backend: a scripted universe with tunable
/// per-defect cost and an optional hold [`Gate`].
pub struct SyntheticBackend {
    dut: SyntheticDut,
    universe: DefectUniverse,
    defect_delay: Duration,
    gate: Option<Arc<Gate>>,
    lint: LintReport,
}

impl SyntheticBackend {
    /// Builds a backend over `components` resistors (each expands to its
    /// applicable defect kinds). Zero-delay, no gate.
    pub fn new(components: usize) -> SyntheticBackend {
        let dut = SyntheticDut::new(components);
        let universe = DefectUniverse::enumerate(&dut, &LikelihoodModel::default());
        SyntheticBackend {
            dut,
            universe,
            defect_delay: Duration::ZERO,
            gate: None,
            lint: LintReport::default(),
        }
    }

    /// Adds a fixed per-defect simulated cost.
    pub fn with_delay(mut self, delay: Duration) -> SyntheticBackend {
        self.defect_delay = delay;
        self
    }

    /// Attaches a hold gate every defect simulation must pass.
    pub fn with_gate(mut self, gate: Arc<Gate>) -> SyntheticBackend {
        self.gate = Some(gate);
        self
    }

    /// Scripts the pre-flight lint report (tests exercise the `422`
    /// rejection path without building a structurally broken DUT).
    pub fn with_lint_report(mut self, report: LintReport) -> SyntheticBackend {
        self.lint = report;
        self
    }

    /// Size of the synthetic defect universe.
    pub fn universe_len(&self) -> usize {
        self.universe.len()
    }
}

impl CampaignBackend for SyntheticBackend {
    fn preflight(&self, _spec: &JobSpec) -> LintReport {
        self.lint.clone()
    }

    fn validate(&self, spec: &JobSpec) -> Result<(), SpecError> {
        if let Some(block) = &spec.block {
            if block != BlockKind::ScArray.label() {
                return Err(SpecError(format!(
                    "unknown block \"{block}\" (synthetic backend has only \"{}\")",
                    BlockKind::ScArray.label()
                )));
            }
        }
        resolve_schedule(spec)?;
        check_sample(spec, self.universe.len())?;
        check_range(spec, self.universe.len())
    }

    fn universe_len(&self) -> usize {
        self.universe.len()
    }

    fn run(
        &self,
        spec: &JobSpec,
        checkpoint: Option<PathBuf>,
        monitor: &dyn CampaignMonitor,
    ) -> Result<CampaignResult, CampaignError> {
        let delay = self.defect_delay;
        let gate = self.gate.clone();
        run_campaign_monitored(
            &self.dut,
            &self.universe,
            &spec.campaign_options(checkpoint, self.universe.len()),
            move |dut: &SyntheticDut| {
                if let Some(gate) = &gate {
                    gate.pass();
                }
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                let detected = dut.injected().is_some_and(|site| site.kind.is_short());
                SimOutcome::Completed(TestOutcome {
                    detected,
                    detection_cycle: detected.then_some(3),
                    cycles_run: if detected { 3 } else { 192 },
                })
            },
            monitor,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_backend_runs_exhaustively() {
        let backend = SyntheticBackend::new(4);
        let spec = JobSpec::default();
        backend.validate(&spec).unwrap();
        let result = backend.run(&spec, None, &()).unwrap();
        assert_eq!(result.simulated(), backend.universe_len());
        // Resistors expand to short/open/±50%: exactly one in four is a
        // short, and only shorts are detected.
        assert_eq!(result.detected() * 4, result.simulated());
    }

    #[test]
    fn synthetic_backend_validates_specs() {
        let backend = SyntheticBackend::new(4);
        let huge = JobSpec {
            sample_size: Some(10_000),
            ..Default::default()
        };
        assert!(backend.validate(&huge).is_err());
        let bad_block = JobSpec {
            block: Some("BandGap".into()),
            ..Default::default()
        };
        assert!(backend.validate(&bad_block).is_err());
        let bad_schedule = JobSpec {
            schedule: Some("zigzag".into()),
            ..Default::default()
        };
        assert!(backend.validate(&bad_schedule).is_err());
        let good = JobSpec {
            block: Some("SC Array".into()),
            sample_size: Some(4),
            schedule: Some("parallel".into()),
            ..Default::default()
        };
        backend.validate(&good).unwrap();
    }

    #[test]
    fn gate_freezes_and_releases() {
        let gate = Gate::new();
        gate.hold();
        let backend = SyntheticBackend::new(2).with_gate(Arc::clone(&gate));
        let handle = {
            let spec = JobSpec::default();
            std::thread::spawn(move || backend.run(&spec, None, &()).unwrap())
        };
        std::thread::sleep(Duration::from_millis(30));
        assert!(!handle.is_finished(), "campaign must block on the gate");
        gate.release();
        let result = handle.join().unwrap();
        assert!(result.simulated() > 0);
    }
}
