//! Jobs and the job registry: IDs, the per-job state machine, the bounded
//! FIFO queue, progress tracking, cancellation, and crash-safe
//! persistence.
//!
//! # State machine
//!
//! ```text
//!            submit            claim             finish
//! (wire) ──► Queued ─────────► Running ────────► Completed
//!              │                  │        └───► Failed
//!              │ DELETE           │ DELETE / drain
//!              └────────────► Cancelled ◄┘
//! ```
//!
//! Only `Queued → Running`, `Running → {Completed, Failed, Cancelled}` and
//! `Queued → Cancelled` are legal; terminal states never transition again.
//!
//! # Persistence and drain
//!
//! With a data directory configured, each job owns two files:
//! `job-<id>.json` (id + spec + state, rewritten on every transition) and
//! `job-<id>.ckpt.jsonl` (the campaign checkpoint, appended per record by
//! the campaign runner). A drain (graceful shutdown) cancels running jobs
//! cooperatively — every completed record is already on disk — and
//! persists them as `queued`, so a restarted registry re-enqueues them and
//! the resumed campaign produces records bit-identical to an uninterrupted
//! run.

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use symbist_defects::checkpoint::parse_checkpoint_line;
use symbist_defects::{CampaignMonitor, CampaignResult, DefectRecord, UnresolvedCounts};

use crate::json::Json;
use crate::spec::JobSpec;

/// Job identifier: dense integers assigned at submit time, stable across
/// restarts (recovery continues after the highest persisted id).
pub type JobId = u64;

/// The per-job lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting in the FIFO queue.
    Queued,
    /// Claimed by a worker; campaign in progress.
    Running,
    /// Campaign finished; results and report available.
    Completed,
    /// Campaign errored or the worker panicked.
    Failed,
    /// Cancelled by the client (or recovered as such).
    Cancelled,
}

impl JobState {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(label: &str) -> Option<JobState> {
        match label {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "completed" => Some(JobState::Completed),
            "failed" => Some(JobState::Failed),
            "cancelled" => Some(JobState::Cancelled),
            _ => None,
        }
    }

    /// Whether the state is final.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Live progress counters, updated per record by the campaign monitor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobProgress {
    /// Defects selected for simulation (sample or full universe); 0 until
    /// the campaign starts.
    pub selected: usize,
    /// Records reloaded from the checkpoint instead of re-simulated.
    pub resumed: usize,
    /// Records completed so far (including resumed ones).
    pub done: usize,
    /// Positively detected defects so far.
    pub detected: usize,
    /// Unresolved records so far, by reason.
    pub unresolved: UnresolvedCounts,
}

/// Summary of a finished campaign, served by `GET /report/{id}`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Defects simulated (including resumed records).
    pub simulated: usize,
    /// Positively detected defects.
    pub detected: usize,
    /// Unresolved records by reason.
    pub unresolved: UnresolvedCounts,
    /// L-W coverage lower bound (unresolved counted as escapes).
    pub coverage_lower: f64,
    /// CI half-width of the lower bound (sampled campaigns only).
    pub ci_lower: Option<f64>,
    /// L-W coverage upper bound (unresolved counted as detected).
    pub coverage_upper: f64,
    /// CI half-width of the upper bound (sampled campaigns only).
    pub ci_upper: Option<f64>,
    /// Campaign wall time in seconds.
    pub wall_s: f64,
}

impl JobReport {
    /// Builds a report from a finished campaign result. An empty result —
    /// a sampled shard whose index range drew no defects — reports zero
    /// coverage with no CI rather than panicking in the estimator.
    pub fn from_result(result: &CampaignResult) -> JobReport {
        if result.simulated() == 0 {
            return JobReport {
                simulated: 0,
                detected: 0,
                unresolved: UnresolvedCounts::default(),
                coverage_lower: 0.0,
                ci_lower: None,
                coverage_upper: 0.0,
                ci_upper: None,
                wall_s: result.total_wall.as_secs_f64(),
            };
        }
        let (lo, hi) = result.coverage_bounds();
        JobReport {
            simulated: result.simulated(),
            detected: result.detected(),
            unresolved: result.unresolved_by_reason(),
            coverage_lower: lo.value,
            ci_lower: lo.ci_half_width,
            coverage_upper: hi.value,
            ci_upper: hi.ci_half_width,
            wall_s: result.total_wall.as_secs_f64(),
        }
    }

    /// Serializes the report for the wire and the persistence layer.
    pub fn to_json(&self) -> Json {
        let ci = |v: Option<f64>| v.map(Json::num).unwrap_or(Json::Null);
        Json::obj([
            ("simulated", Json::num(self.simulated as f64)),
            ("detected", Json::num(self.detected as f64)),
            (
                "unresolved",
                Json::obj([
                    (
                        "no_convergence",
                        Json::num(self.unresolved.no_convergence as f64),
                    ),
                    ("timeout", Json::num(self.unresolved.timeout as f64)),
                    ("panic", Json::num(self.unresolved.panic as f64)),
                ]),
            ),
            (
                "coverage",
                Json::obj([
                    ("lower", Json::num(self.coverage_lower)),
                    ("lower_ci", ci(self.ci_lower)),
                    ("upper", Json::num(self.coverage_upper)),
                    ("upper_ci", ci(self.ci_upper)),
                ]),
            ),
            ("wall_s", Json::num(self.wall_s)),
        ])
    }

    /// Parses a persisted report.
    pub fn from_json(json: &Json) -> Option<JobReport> {
        let unresolved = json.get("unresolved")?;
        let coverage = json.get("coverage")?;
        let opt = |v: Option<&Json>| -> Option<f64> { v.and_then(Json::as_f64) };
        Some(JobReport {
            simulated: json.get("simulated")?.as_u64()? as usize,
            detected: json.get("detected")?.as_u64()? as usize,
            unresolved: UnresolvedCounts {
                no_convergence: unresolved.get("no_convergence")?.as_u64()? as usize,
                timeout: unresolved.get("timeout")?.as_u64()? as usize,
                panic: unresolved.get("panic")?.as_u64()? as usize,
            },
            coverage_lower: coverage.get("lower")?.as_f64()?,
            ci_lower: opt(coverage.get("lower_ci")),
            coverage_upper: coverage.get("upper")?.as_f64()?,
            ci_upper: opt(coverage.get("upper_ci")),
            wall_s: json.get("wall_s")?.as_f64()?,
        })
    }
}

/// A point-in-time view of a job, serializable for `GET /jobs/{id}`.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The job id.
    pub id: JobId,
    /// Current state.
    pub state: JobState,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Live progress counters.
    pub progress: JobProgress,
    /// Failure message, for failed jobs.
    pub error: Option<String>,
    /// Final report, for completed jobs.
    pub report: Option<JobReport>,
}

impl JobStatus {
    /// Serializes the status for the wire.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::num(self.id as f64)),
            ("state", Json::str(self.state.label())),
            ("spec", self.spec.to_json()),
            (
                "progress",
                Json::obj([
                    ("selected", Json::num(self.progress.selected as f64)),
                    ("resumed", Json::num(self.progress.resumed as f64)),
                    ("done", Json::num(self.progress.done as f64)),
                    ("detected", Json::num(self.progress.detected as f64)),
                    (
                        "no_convergence",
                        Json::num(self.progress.unresolved.no_convergence as f64),
                    ),
                    (
                        "timeout",
                        Json::num(self.progress.unresolved.timeout as f64),
                    ),
                    ("panic", Json::num(self.progress.unresolved.panic as f64)),
                ]),
            ),
            (
                "error",
                self.error
                    .as_ref()
                    .map(|e| Json::str(e.clone()))
                    .unwrap_or(Json::Null),
            ),
            (
                "report",
                self.report
                    .as_ref()
                    .map(JobReport::to_json)
                    .unwrap_or(Json::Null),
            ),
        ])
    }
}

#[derive(Debug)]
struct JobInner {
    state: JobState,
    progress: JobProgress,
    /// Completion-order record log: the NDJSON stream source. Resumed
    /// records land first (selection order), then fresh ones as workers
    /// finish them.
    records: Vec<DefectRecord>,
    error: Option<String>,
    report: Option<JobReport>,
    cancel_requested: bool,
    /// The cancellation came from a graceful drain, not a client DELETE:
    /// persist as `queued` so a restart resumes the job.
    drain: bool,
}

/// One job: spec, state, record log, and synchronization.
#[derive(Debug)]
pub struct Job {
    /// The job id.
    pub id: JobId,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Campaign checkpoint path (present when the registry has a data
    /// directory).
    pub checkpoint: Option<PathBuf>,
    /// When the job entered the queue (re-set on recovery), the reference
    /// point for the queue-wait histogram.
    enqueued_at: Instant,
    inner: Mutex<JobInner>,
    changed: Condvar,
}

impl Job {
    fn new(id: JobId, spec: JobSpec, checkpoint: Option<PathBuf>) -> Job {
        Job {
            id,
            spec,
            checkpoint,
            enqueued_at: Instant::now(),
            inner: Mutex::new(JobInner {
                state: JobState::Queued,
                progress: JobProgress::default(),
                records: Vec::new(),
                error: None,
                report: None,
                cancel_requested: false,
                drain: false,
            }),
            changed: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JobInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The current state.
    pub fn state(&self) -> JobState {
        self.lock().state
    }

    /// A point-in-time status snapshot.
    pub fn status(&self) -> JobStatus {
        let inner = self.lock();
        JobStatus {
            id: self.id,
            state: inner.state,
            spec: self.spec.clone(),
            progress: inner.progress,
            error: inner.error.clone(),
            report: inner.report.clone(),
        }
    }

    /// The final report, for completed jobs.
    pub fn report(&self) -> Option<JobReport> {
        self.lock().report.clone()
    }

    /// Copies records `from..` out of the completion-order log, plus
    /// whether the job has reached a terminal state. The pair is read
    /// under one lock so a streamer can't miss records published between
    /// the copy and the terminal check.
    pub fn records_from(&self, from: usize) -> (Vec<DefectRecord>, bool) {
        let inner = self.lock();
        let records = inner.records.get(from..).unwrap_or_default().to_vec();
        (records, inner.state.is_terminal())
    }

    /// Blocks until the record log grows past `len` or the job ends, with
    /// a timeout tick so callers can poll for client disconnects.
    pub fn wait_progress(&self, len: usize, timeout: Duration) {
        let inner = self.lock();
        if inner.records.len() > len || inner.state.is_terminal() {
            return;
        }
        let _unused = self
            .changed
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
    }

    /// Requests cooperative cancellation. `drain` marks a shutdown drain
    /// (persist as queued) rather than a client cancel.
    pub fn request_cancel(&self, drain: bool) {
        let mut inner = self.lock();
        inner.cancel_requested = true;
        inner.drain = inner.drain || drain;
        self.changed.notify_all();
    }

    /// Whether cancellation was requested (drain or client).
    pub fn cancel_requested(&self) -> bool {
        self.lock().cancel_requested
    }

    /// Whether the pending cancellation is a shutdown drain.
    pub fn is_drain(&self) -> bool {
        self.lock().drain
    }

    fn transition(&self, to: JobState) {
        let mut inner = self.lock();
        debug_assert!(
            !inner.state.is_terminal(),
            "illegal transition {:?} -> {to:?}",
            inner.state
        );
        inner.state = to;
        self.changed.notify_all();
    }

    fn complete(&self, result: &CampaignResult) {
        let mut inner = self.lock();
        inner.report = Some(JobReport::from_result(result));
        inner.state = JobState::Completed;
        self.changed.notify_all();
    }

    fn fail(&self, error: String) {
        let mut inner = self.lock();
        inner.error = Some(error);
        inner.state = JobState::Failed;
        self.changed.notify_all();
    }
}

/// [`CampaignMonitor`] adapter publishing a job's campaign progress into
/// the registry-visible job state.
pub struct JobMonitor<'a> {
    job: &'a Job,
}

impl<'a> JobMonitor<'a> {
    /// Wraps a job.
    pub fn new(job: &'a Job) -> JobMonitor<'a> {
        JobMonitor { job }
    }
}

impl CampaignMonitor for JobMonitor<'_> {
    fn on_start(&self, selected: usize, resumed: usize) {
        let mut inner = self.job.lock();
        // A resumed job replays its checkpoint records through on_record;
        // reset the log so the stream never duplicates them.
        inner.records.clear();
        inner.progress = JobProgress {
            selected,
            resumed,
            ..JobProgress::default()
        };
        self.job.changed.notify_all();
    }

    fn on_record(&self, record: &DefectRecord, _resumed: bool) {
        let mut inner = self.job.lock();
        inner.progress.done += 1;
        if record.outcome.detected() {
            inner.progress.detected += 1;
        }
        if let Some(reason) = record.outcome.unresolved_reason() {
            use symbist_defects::UnresolvedReason::*;
            match reason {
                NoConvergence => inner.progress.unresolved.no_convergence += 1,
                Timeout => inner.progress.unresolved.timeout += 1,
                Panic => inner.progress.unresolved.panic += 1,
            }
        }
        inner.records.push(*record);
        self.job.changed.notify_all();
    }

    fn cancelled(&self) -> bool {
        self.job.lock().cancel_requested
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The FIFO queue is at capacity — the `503` backpressure signal.
    QueueFull {
        /// The configured capacity the queue is at.
        capacity: usize,
    },
    /// The registry is draining for shutdown.
    Draining,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "job queue full (capacity {capacity})")
            }
            SubmitError::Draining => write!(f, "service is draining for shutdown"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Aggregate service counters for `GET /stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegistryStats {
    /// Jobs waiting in the queue.
    pub queue_depth: usize,
    /// Configured queue capacity.
    pub queue_capacity: usize,
    /// Jobs currently running.
    pub running: usize,
    /// Jobs accepted since startup (including recovered ones).
    pub submitted: u64,
    /// Jobs that reached `Completed`.
    pub completed: u64,
    /// Jobs that reached `Failed`.
    pub failed: u64,
    /// Jobs that reached `Cancelled`.
    pub cancelled: u64,
    /// Submissions refused with queue-full backpressure.
    pub rejected: u64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    jobs: BTreeMap<JobId, Arc<Job>>,
    queue: VecDeque<JobId>,
    next_id: JobId,
    accepting: bool,
    stats: RegistryStats,
}

/// The shared job registry: bounded FIFO queue plus the job table.
#[derive(Debug)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
    queue_ready: Condvar,
    queue_capacity: usize,
    data_dir: Option<PathBuf>,
}

impl Registry {
    /// Creates a registry with the given queue capacity. With a data
    /// directory, previously persisted jobs are recovered: terminal jobs
    /// become queryable history (their record logs reload from their
    /// checkpoints), and queued/running jobs re-enter the queue in id
    /// order — the restart half of the drain-resume contract.
    pub fn new(queue_capacity: usize, data_dir: Option<PathBuf>) -> std::io::Result<Registry> {
        let registry = Registry {
            inner: Mutex::new(RegistryInner {
                accepting: true,
                next_id: 1,
                ..Default::default()
            }),
            queue_ready: Condvar::new(),
            queue_capacity: queue_capacity.max(1),
            data_dir,
        };
        if let Some(dir) = registry.data_dir.clone() {
            std::fs::create_dir_all(&dir)?;
            registry.recover(&dir)?;
        }
        Ok(registry)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn meta_path(dir: &Path, id: JobId) -> PathBuf {
        dir.join(format!("job-{id:06}.json"))
    }

    fn ckpt_path(dir: &Path, id: JobId) -> PathBuf {
        dir.join(format!("job-{id:06}.ckpt.jsonl"))
    }

    /// Rewrites a job's metadata file to reflect `state`.
    fn persist(&self, job: &Job, state: JobState) {
        let Some(dir) = &self.data_dir else {
            return;
        };
        let mut pairs = vec![
            ("id", Json::num(job.id as f64)),
            ("state", Json::str(state.label())),
            ("spec", job.spec.to_json()),
        ];
        if let Some(report) = job.report() {
            pairs.push(("report", report.to_json()));
        }
        let doc = Json::obj(pairs);
        // Write-then-rename so a kill mid-write never tears the metadata.
        let path = Self::meta_path(dir, job.id);
        let tmp = path.with_extension("json.tmp");
        if std::fs::write(&tmp, format!("{doc}\n")).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }

    fn recover(&self, dir: &Path) -> std::io::Result<()> {
        let mut metas: Vec<(JobId, Json)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !name.starts_with("job-") || !name.ends_with(".json") {
                continue;
            }
            let Ok(text) = std::fs::read_to_string(entry.path()) else {
                continue;
            };
            let Ok(doc) = Json::parse(&text) else {
                continue; // torn metadata: the tmp-rename makes this rare
            };
            let Some(id) = doc.get("id").and_then(Json::as_u64) else {
                continue;
            };
            metas.push((id, doc));
        }
        metas.sort_unstable_by_key(|(id, _)| *id);

        let mut inner = self.lock();
        for (id, doc) in metas {
            let Some(spec) = doc.get("spec").and_then(|s| JobSpec::from_json(s).ok()) else {
                continue;
            };
            let state = doc
                .get("state")
                .and_then(Json::as_str)
                .and_then(JobState::from_label)
                .unwrap_or(JobState::Queued);
            let ckpt = Self::ckpt_path(dir, id);
            let job = Arc::new(Job::new(id, spec, Some(ckpt.clone())));
            inner.next_id = inner.next_id.max(id + 1);
            inner.stats.submitted += 1;
            match state {
                // Interrupted (queued, or running when the process died):
                // re-enqueue; the campaign resumes from the checkpoint.
                JobState::Queued | JobState::Running => {
                    inner.queue.push_back(id);
                }
                terminal => {
                    // Historical job: restore state, report, and record log
                    // so status/report/results stay serveable.
                    {
                        let mut jinner = job.lock();
                        jinner.state = terminal;
                        jinner.report = doc.get("report").and_then(JobReport::from_json);
                        if let Ok(content) = std::fs::read_to_string(&ckpt) {
                            jinner.records =
                                content.lines().filter_map(parse_checkpoint_line).collect();
                            jinner.progress.done = jinner.records.len();
                        }
                        match terminal {
                            JobState::Completed => inner.stats.completed += 1,
                            JobState::Failed => inner.stats.failed += 1,
                            JobState::Cancelled => inner.stats.cancelled += 1,
                            _ => unreachable!(),
                        }
                    }
                }
            }
            inner.jobs.insert(id, job);
        }
        drop(inner);
        self.queue_ready.notify_all();
        Ok(())
    }

    /// Submits a job. Fails fast with [`SubmitError::QueueFull`] when the
    /// bounded queue is at capacity — the server maps this to `503`.
    pub fn submit(&self, spec: JobSpec) -> Result<Arc<Job>, SubmitError> {
        let mut inner = self.lock();
        if !inner.accepting {
            return Err(SubmitError::Draining);
        }
        if inner.queue.len() >= self.queue_capacity {
            inner.stats.rejected += 1;
            return Err(SubmitError::QueueFull {
                capacity: self.queue_capacity,
            });
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let checkpoint = self.data_dir.as_deref().map(|d| Self::ckpt_path(d, id));
        let job = Arc::new(Job::new(id, spec, checkpoint));
        inner.jobs.insert(id, Arc::clone(&job));
        inner.queue.push_back(id);
        inner.stats.submitted += 1;
        note_queue_depth(inner.queue.len());
        drop(inner);
        self.persist(&job, JobState::Queued);
        self.queue_ready.notify_one();
        Ok(job)
    }

    /// Blocks until a queued job is available and claims it (marking it
    /// `Running`), or returns `None` once the registry is draining —
    /// the worker-pool exit signal. Draining leaves queued jobs queued:
    /// they persist as such and resume after restart.
    pub fn claim_next(&self) -> Option<Arc<Job>> {
        let mut inner = self.lock();
        loop {
            if !inner.accepting {
                return None;
            }
            if let Some(id) = inner.queue.pop_front() {
                let job = inner.jobs.get(&id).cloned()?;
                // A queued job cancelled before being claimed was already
                // transitioned; skip it.
                if job.state() != JobState::Queued {
                    continue;
                }
                inner.stats.running += 1;
                note_queue_depth(inner.queue.len());
                drop(inner);
                symbist_obs::histogram!(
                    "symbist_service_queue_wait_seconds",
                    "Time a job spent queued before a worker claimed it",
                    symbist_obs::SECONDS_EDGES
                )
                .record(job.enqueued_at.elapsed().as_secs_f64());
                job.transition(JobState::Running);
                self.persist(&job, JobState::Running);
                return Some(job);
            }
            inner = self
                .queue_ready
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Records a claimed job's outcome (worker-pool callback): applies the
    /// terminal transition, updates counters, and persists. A drain
    /// cancellation persists as `queued` so a restart resumes the job.
    pub fn finish(&self, job: &Job, outcome: Result<CampaignResult, String>) {
        let cancelled = job.cancel_requested();
        let drain = job.is_drain();
        let persist_state = match &outcome {
            Ok(result) => {
                job.complete(result);
                JobState::Completed
            }
            Err(_) if cancelled => {
                job.transition(JobState::Cancelled);
                if drain {
                    JobState::Queued
                } else {
                    JobState::Cancelled
                }
            }
            Err(error) => {
                job.fail(error.clone());
                JobState::Failed
            }
        };
        let mut inner = self.lock();
        inner.stats.running = inner.stats.running.saturating_sub(1);
        const HELP: &str = "Jobs finished, by terminal state";
        match job.state() {
            JobState::Completed => {
                inner.stats.completed += 1;
                symbist_obs::counter!(r#"symbist_service_jobs_total{state="completed"}"#, HELP)
                    .inc();
            }
            JobState::Failed => {
                inner.stats.failed += 1;
                symbist_obs::counter!(r#"symbist_service_jobs_total{state="failed"}"#, HELP).inc();
            }
            JobState::Cancelled => {
                inner.stats.cancelled += 1;
                symbist_obs::counter!(r#"symbist_service_jobs_total{state="cancelled"}"#, HELP)
                    .inc();
            }
            _ => {}
        }
        drop(inner);
        self.persist(job, persist_state);
    }

    /// Looks up a job.
    pub fn get(&self, id: JobId) -> Option<Arc<Job>> {
        self.lock().jobs.get(&id).cloned()
    }

    /// Cancels a job. Queued jobs transition immediately; running jobs
    /// get a cooperative cancel request (the campaign stops between
    /// defects). Returns `false` for unknown or already-terminal jobs.
    pub fn cancel(&self, id: JobId) -> bool {
        let Some(job) = self.get(id) else {
            return false;
        };
        match job.state() {
            JobState::Queued => {
                job.request_cancel(false);
                job.transition(JobState::Cancelled);
                let mut inner = self.lock();
                inner.queue.retain(|queued| *queued != id);
                inner.stats.cancelled += 1;
                symbist_obs::counter!(
                    r#"symbist_service_jobs_total{state="cancelled"}"#,
                    "Jobs finished, by terminal state"
                )
                .inc();
                note_queue_depth(inner.queue.len());
                drop(inner);
                self.persist(&job, JobState::Cancelled);
                true
            }
            JobState::Running => {
                job.request_cancel(false);
                true
            }
            _ => false,
        }
    }

    /// Begins a graceful drain: stop accepting submissions, wake idle
    /// workers so they exit, and cooperatively cancel running jobs (their
    /// checkpoints already hold every completed record). Queued jobs stay
    /// persisted as queued for the restarted server.
    pub fn begin_drain(&self) {
        let mut inner = self.lock();
        inner.accepting = false;
        let running: Vec<Arc<Job>> = inner
            .jobs
            .values()
            .filter(|j| j.state() == JobState::Running)
            .cloned()
            .collect();
        drop(inner);
        for job in running {
            job.request_cancel(true);
        }
        self.queue_ready.notify_all();
    }

    /// Whether the registry is still accepting submissions.
    pub fn accepting(&self) -> bool {
        self.lock().accepting
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.lock();
        RegistryStats {
            queue_depth: inner.queue.len(),
            queue_capacity: self.queue_capacity,
            ..inner.stats
        }
    }
}

/// Publishes the queue depth gauge after any queue mutation.
fn note_queue_depth(depth: usize) {
    symbist_obs::gauge!(
        "symbist_service_queue_depth",
        "Jobs currently waiting in the FIFO queue"
    )
    .set(i64::try_from(depth).unwrap_or(i64::MAX));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::default()
    }

    #[test]
    fn submit_claim_finish_lifecycle() {
        let reg = Registry::new(4, None).unwrap();
        let job = reg.submit(spec()).unwrap();
        assert_eq!(job.state(), JobState::Queued);
        let claimed = reg.claim_next().unwrap();
        assert_eq!(claimed.id, job.id);
        assert_eq!(claimed.state(), JobState::Running);
        reg.finish(&claimed, Err("boom".into()));
        assert_eq!(job.state(), JobState::Failed);
        assert_eq!(job.status().error.as_deref(), Some("boom"));
        let stats = reg.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.running, 0);
    }

    #[test]
    fn queue_capacity_backpressure() {
        let reg = Registry::new(2, None).unwrap();
        reg.submit(spec()).unwrap();
        reg.submit(spec()).unwrap();
        let err = reg.submit(spec()).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull { capacity: 2 });
        assert_eq!(reg.stats().rejected, 1);
        // Claiming one frees a slot.
        let _job = reg.claim_next().unwrap();
        assert!(reg.submit(spec()).is_ok());
    }

    #[test]
    fn cancel_queued_job_skips_claim() {
        let reg = Registry::new(4, None).unwrap();
        let a = reg.submit(spec()).unwrap();
        let b = reg.submit(spec()).unwrap();
        assert!(reg.cancel(a.id));
        assert_eq!(a.state(), JobState::Cancelled);
        let claimed = reg.claim_next().unwrap();
        assert_eq!(claimed.id, b.id, "cancelled job must not be claimed");
        // Terminal jobs cannot be cancelled again.
        assert!(!reg.cancel(a.id));
    }

    #[test]
    fn drain_stops_accepting_and_unblocks_workers() {
        let reg = Arc::new(Registry::new(4, None).unwrap());
        let waiter = {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || reg.claim_next())
        };
        std::thread::sleep(Duration::from_millis(20));
        reg.begin_drain();
        assert!(waiter.join().unwrap().is_none());
        assert!(matches!(
            reg.submit(spec()).unwrap_err(),
            SubmitError::Draining
        ));
    }

    #[test]
    fn ids_are_dense_and_fresh() {
        let reg = Registry::new(8, None).unwrap();
        let a = reg.submit(spec()).unwrap();
        let b = reg.submit(spec()).unwrap();
        assert_eq!(b.id, a.id + 1);
        assert!(reg.get(a.id).is_some());
        assert!(reg.get(999).is_none());
    }
}
