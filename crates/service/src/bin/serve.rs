//! The SymBIST campaign service daemon.
//!
//! ```sh
//! cargo run --release -p symbist-service --bin serve -- \
//!     --addr 127.0.0.1:7171 --workers 2 --queue 16 --data-dir ./jobs
//! ```
//!
//! Flags (all optional):
//!
//! * `--addr HOST:PORT` — bind address (default `127.0.0.1:7171`)
//! * `--workers N` — campaign worker threads (default 2)
//! * `--handlers N` — HTTP handler threads (default 4)
//! * `--queue N` — job-queue capacity, the 503 threshold (default 16)
//! * `--data-dir PATH` — persist jobs + checkpoints for drain/resume
//! * `--calibration-samples N` — Monte-Carlo samples for the window
//!   calibration at startup (default 10, as in the paper experiments)
//! * `--synthetic N` — serve the scripted N-component synthetic backend
//!   instead of the SAR ADC (fast; for demos and smoke tests)
//! * `--dut-quota N` — max registered DUTs per tenant on `POST /v1/duts`
//!   (default 64). The registry persists as `duts.jsonl` under
//!   `--data-dir` and reloads on restart; without a data dir it is
//!   in-memory only.
//! * `--trace-out PATH` — on exit, dump the captured trace ring as
//!   `chrome://tracing`-compatible NDJSON to PATH
//! * `--fault-plan SPEC` — install a deterministic fault-injection plan
//!   (e.g. `seed=7;worker/kill:shard-1@4=panic`) for chaos testing; see
//!   `symbist::faultplan`. Injections are counted on
//!   `symbist_fault_injections_total`.
//!
//! The process exits after `POST /shutdown` finishes draining: running
//! campaigns stop at the next defect boundary with every completed record
//! checkpointed, and restarting with the same `--data-dir` resumes them.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use symbist::experiments::ExperimentConfig;
use symbist_dut::{DutRegistry, DutRegistryConfig};
use symbist_service::backend::{AdcBackend, CampaignBackend, SyntheticBackend};
use symbist_service::dut_backend::GenericBackend;
use symbist_service::http::{Server, ServiceConfig};

struct Args {
    config: ServiceConfig,
    calibration_samples: usize,
    synthetic: Option<usize>,
    dut_quota: usize,
    trace_out: Option<PathBuf>,
    fault_plan: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: ServiceConfig {
            addr: "127.0.0.1:7171".into(),
            ..ServiceConfig::default()
        },
        calibration_samples: 10,
        synthetic: None,
        dut_quota: DutRegistryConfig::default().max_per_tenant,
        trace_out: None,
        fault_plan: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.config.addr = value("--addr")?,
            "--workers" => args.config.workers = parse_num(&value("--workers")?)?,
            "--handlers" => args.config.handlers = parse_num(&value("--handlers")?)?,
            "--queue" => args.config.queue_capacity = parse_num(&value("--queue")?)?,
            "--data-dir" => args.config.data_dir = Some(PathBuf::from(value("--data-dir")?)),
            "--calibration-samples" => {
                args.calibration_samples = parse_num(&value("--calibration-samples")?)?
            }
            "--synthetic" => args.synthetic = Some(parse_num(&value("--synthetic")?)?),
            "--dut-quota" => args.dut_quota = parse_num(&value("--dut-quota")?)?,
            "--trace-out" => args.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--fault-plan" => args.fault_plan = Some(value("--fault-plan")?),
            "--help" | "-h" => {
                return Err(
                    "usage: serve [--addr HOST:PORT] [--workers N] [--handlers N] \
                            [--queue N] [--data-dir PATH] [--calibration-samples N] \
                            [--synthetic N] [--dut-quota N] [--trace-out PATH] \
                            [--fault-plan SPEC]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("not a number: {s:?}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    // Keep the guard alive for the process lifetime: dropping it would
    // uninstall the plan while workers are mid-campaign.
    let _fault_guard = match &args.fault_plan {
        Some(spec) => match symbist_obs::FaultPlan::parse(spec) {
            Ok(plan) => {
                eprintln!("serve: fault plan active: {plan}");
                Some(symbist_obs::fault::install(Arc::new(plan)))
            }
            Err(e) => {
                eprintln!("serve: bad --fault-plan: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let backend: Arc<dyn CampaignBackend> = match args.synthetic {
        Some(components) => {
            eprintln!("serve: synthetic backend with {components} components");
            Arc::new(SyntheticBackend::new(components))
        }
        None => {
            eprintln!(
                "serve: calibrating SymBIST on the SAR ADC IP \
                 ({} Monte-Carlo samples)...",
                args.calibration_samples
            );
            let xc = ExperimentConfig {
                calibration_samples: args.calibration_samples,
                ..ExperimentConfig::default()
            };
            let backend = AdcBackend::new(&xc);
            eprintln!(
                "serve: ready; defect universe has {} defects",
                backend.universe_len()
            );
            Arc::new(backend)
        }
    };

    // Every server carries a DUT registry: `POST /v1/duts` registers
    // arbitrary netlist DUTs, and specs with a `dut` field run generic
    // invariance campaigns against them. Specs without one still reach
    // the inner backend verbatim.
    let registry = match DutRegistry::open(DutRegistryConfig {
        dir: args.config.data_dir.clone(),
        max_per_tenant: args.dut_quota,
    }) {
        Ok(registry) => Arc::new(registry),
        Err(e) => {
            eprintln!("serve: failed to open DUT registry: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !registry.is_empty() {
        eprintln!("serve: DUT registry reloaded {} entries", registry.len());
    }
    let backend: Arc<dyn CampaignBackend> = Arc::new(GenericBackend::new(backend, registry));

    let server = match Server::start(args.config, backend) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "serve: listening on http://{} (POST /shutdown to drain and exit)",
        server.addr()
    );
    server.wait();
    if let Some(path) = &args.trace_out {
        match write_trace(path) {
            Ok(events) => eprintln!("serve: wrote {events} trace events to {}", path.display()),
            Err(e) => eprintln!("serve: failed to write trace to {}: {e}", path.display()),
        }
    }
    eprintln!("serve: drained; bye");
    ExitCode::SUCCESS
}

fn write_trace(path: &std::path::Path) -> std::io::Result<usize> {
    let tracer = symbist_obs::tracer();
    let events = tracer.len();
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    tracer.write_ndjson(&mut file)?;
    std::io::Write::flush(&mut file)?;
    Ok(events)
}
