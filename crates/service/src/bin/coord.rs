//! The SymBIST campaign coordinator: shards a defect universe across a
//! fleet of `serve` workers and merges the results deterministically.
//!
//! ```sh
//! cargo run --release -p symbist-service --bin coord -- \
//!     --workers 127.0.0.1:7171,127.0.0.1:7172,127.0.0.1:7173 \
//!     --shards 3 --data-dir ./coord-run
//! ```
//!
//! Flags:
//!
//! * `--workers A,B,C` — comma-separated worker addresses (required)
//! * `--shards N` — contiguous catalog-index shards (default: one per worker)
//! * `--data-dir PATH` — shard checkpoints + `merged.jsonl` (default `./coord-data`)
//! * `--sample N` — LWRS sample size (default: exhaustive)
//! * `--seed N` — campaign seed forwarded to every shard (default 0)
//! * `--threads N` — worker-side campaign threads per shard job (default 1;
//!   keep 1 for bit-identical checkpoint *ordering*, any value for
//!   bit-identical *merged* output)
//! * `--newton-budget N` / `--deadline-ms N` / `--schedule NAME` —
//!   forwarded spec knobs, as in `POST /v1/jobs`
//! * `--dut ID-OR-NAME` — shard a DUT the workers already have registered
//! * `--dut-spec PATH` — read a JSON DUT spec, `POST /v1/duts` it to
//!   every worker (content addressing makes the id identical fleet-wide),
//!   and shard that DUT; mutually exclusive with `--dut`
//! * `--lease-ms N` — progress-watermark lease (default 30000)
//! * `--poll-ms N` — status poll cadence (default 50)
//! * `--max-attempts N` — dispatch attempts per shard (default 5)
//! * `--fault-plan SPEC` — install a coordinator-side fault plan (chaos
//!   testing the coordinator itself; worker-side plans go on `serve`)
//!
//! Exit status is non-zero if any shard exhausts its attempts or the
//! merge is incomplete; recovery activity is printed per shard.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use symbist_service::coord::{run_coordinator, CoordConfig};
use symbist_service::spec::JobSpec;

struct Args {
    config: CoordConfig,
    fault_plan: Option<String>,
    shards_set: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: CoordConfig::new(Vec::new(), 0, PathBuf::from("./coord-data")),
        fault_plan: None,
        shards_set: false,
    };
    args.config.spec = JobSpec {
        threads: 1,
        ..JobSpec::default()
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--workers" => {
                args.config.workers = value("--workers")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--shards" => {
                args.config.shards = parse_num(&value("--shards")?)?;
                args.shards_set = true;
            }
            "--data-dir" => args.config.data_dir = PathBuf::from(value("--data-dir")?),
            "--sample" => args.config.spec.sample_size = Some(parse_num(&value("--sample")?)?),
            "--seed" => {
                args.config.spec.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?
            }
            "--threads" => args.config.spec.threads = parse_num(&value("--threads")?)?,
            "--newton-budget" => {
                args.config.spec.newton_budget = Some(
                    value("--newton-budget")?
                        .parse()
                        .map_err(|_| "bad --newton-budget".to_string())?,
                )
            }
            "--deadline-ms" => {
                args.config.spec.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|_| "bad --deadline-ms".to_string())?,
                )
            }
            "--schedule" => args.config.spec.schedule = Some(value("--schedule")?),
            "--dut" => args.config.spec.dut = Some(value("--dut")?),
            "--dut-spec" => {
                let path = value("--dut-spec")?;
                args.config.dut_spec = Some(
                    std::fs::read_to_string(&path)
                        .map_err(|e| format!("cannot read --dut-spec {path:?}: {e}"))?,
                )
            }
            "--lease-ms" => {
                args.config.lease_timeout =
                    Duration::from_millis(parse_num(&value("--lease-ms")?)? as u64)
            }
            "--poll-ms" => {
                args.config.poll_interval =
                    Duration::from_millis(parse_num(&value("--poll-ms")?)? as u64)
            }
            "--max-attempts" => {
                args.config.max_attempts = parse_num(&value("--max-attempts")?)? as u32
            }
            "--fault-plan" => args.fault_plan = Some(value("--fault-plan")?),
            "--help" | "-h" => {
                return Err(
                    "usage: coord --workers A,B,C [--shards N] [--data-dir PATH] \
                     [--sample N] [--seed N] [--threads N] [--newton-budget N] \
                     [--deadline-ms N] [--schedule NAME] [--dut ID-OR-NAME] \
                     [--dut-spec PATH] [--lease-ms N] [--poll-ms N] \
                     [--max-attempts N] [--fault-plan SPEC]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if args.config.workers.is_empty() {
        return Err("--workers is required (try --help)".into());
    }
    if !args.shards_set {
        args.config.shards = args.config.workers.len();
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("not a number: {s:?}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let _fault_guard = match &args.fault_plan {
        Some(spec) => match symbist_obs::FaultPlan::parse(spec) {
            Ok(plan) => {
                eprintln!("coord: fault plan active: {plan}");
                Some(symbist_obs::fault::install(Arc::new(plan)))
            }
            Err(e) => {
                eprintln!("coord: bad --fault-plan: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    eprintln!(
        "coord: {} shards across {} workers",
        args.config.shards,
        args.config.workers.len()
    );
    match run_coordinator(&args.config) {
        Ok(outcome) => {
            for shard in &outcome.shards {
                eprintln!(
                    "coord: shard {} [{}, {}): {} records, {} attempt(s), \
                     {} lease expirie(s), {} recovered from checkpoint",
                    shard.shard,
                    shard.range.0,
                    shard.range.1,
                    shard.records,
                    shard.attempts,
                    shard.lease_expiries,
                    shard.recovered,
                );
            }
            let (lo, hi) = (&outcome.coverage_lower, &outcome.coverage_upper);
            eprintln!(
                "coord: merged {} records ({} re-dispatches) -> {}",
                outcome.result.simulated(),
                outcome.redispatches,
                outcome.merged_path.display(),
            );
            eprintln!(
                "coord: coverage lower {} upper {}",
                lo.to_percent_string(),
                hi.to_percent_string(),
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("coord: failed: {e}");
            ExitCode::FAILURE
        }
    }
}
