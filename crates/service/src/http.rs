//! The hand-rolled HTTP/1.1 front-end over `std::net`.
//!
//! Deliberately minimal, like the rest of this crate's wire layer: one
//! request per connection, `Connection: close`, bodies delimited by
//! `Content-Length` on the way in and by EOF on the way out — which is
//! what lets the NDJSON result stream be plain sequential writes with no
//! chunked framing.
//!
//! # Backpressure, explicitly
//!
//! Two independent admission controls, each with its own status code:
//!
//! * **`429`** — the bounded handler pool is saturated. The acceptor
//!   thread never queues more than `ServiceConfig::backlog` connections;
//!   beyond that it answers `429 Too Many Requests` inline and closes.
//! * **`503`** — the job queue is full (or draining). `POST /jobs` maps
//!   [`SubmitError::QueueFull`] to `503 Service Unavailable` with a
//!   `Retry-After` hint; accepted connections are unaffected.
//!
//! # Endpoints
//!
//! | Method/path              | Purpose                                  |
//! |--------------------------|------------------------------------------|
//! | `POST /jobs`             | Submit a campaign job (JSON spec)        |
//! | `GET /jobs/{id}`         | Job status + live progress               |
//! | `GET /jobs/{id}/results` | NDJSON record stream (follows live jobs) |
//! | `DELETE /jobs/{id}`      | Cancel a queued/running job              |
//! | `GET /report/{id}`       | Final coverage report                    |
//! | `GET /lint/{id}`         | Pre-flight lint report for the job's DUT |
//! | `GET /healthz`           | Liveness probe                           |
//! | `GET /stats`             | Service counters                         |
//! | `POST /shutdown`         | Graceful drain-to-checkpoint shutdown    |

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use symbist_defects::checkpoint::checkpoint_line;

use crate::backend::CampaignBackend;
use crate::job::{JobId, JobState, Registry, SubmitError};
use crate::json::Json;
use crate::spec::JobSpec;
use crate::worker::WorkerPool;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address; use port 0 to let the OS pick (tests).
    pub addr: String,
    /// Job-queue capacity — the `503` threshold.
    pub queue_capacity: usize,
    /// Campaign worker threads.
    pub workers: usize,
    /// HTTP handler threads.
    pub handlers: usize,
    /// Accepted-but-unhandled connection backlog — the `429` threshold.
    pub backlog: usize,
    /// Job persistence directory; `None` disables persistence (and with
    /// it drain/resume across restarts).
    pub data_dir: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 16,
            workers: 2,
            handlers: 4,
            backlog: 8,
            data_dir: None,
        }
    }
}

struct Shared {
    registry: Arc<Registry>,
    backend: Arc<dyn CampaignBackend>,
    shutdown: Mutex<bool>,
    shutdown_cv: Condvar,
}

impl Shared {
    fn request_shutdown(&self) {
        *self.shutdown.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.shutdown_cv.notify_all();
    }
}

/// The running service: listener, handler pool, worker pool, registry.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    stop_accepting: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
    handler_threads: Vec<JoinHandle<()>>,
    pool: WorkerPool,
}

impl Server {
    /// Binds, recovers persisted jobs, and spawns the worker and handler
    /// pools. Returns once the service is accepting requests.
    pub fn start(
        config: ServiceConfig,
        backend: Arc<dyn CampaignBackend>,
    ) -> std::io::Result<Server> {
        let registry = Arc::new(Registry::new(
            config.queue_capacity,
            config.data_dir.clone(),
        )?);
        let pool = WorkerPool::spawn(Arc::clone(&registry), Arc::clone(&backend), config.workers);
        let shared = Arc::new(Shared {
            registry,
            backend,
            shutdown: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        });

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stop_accepting = Arc::new(AtomicBool::new(false));

        let (tx, rx) = mpsc::sync_channel::<TcpStream>(config.backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let handler_threads = (0..config.handlers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("symbist-http-{i}"))
                    .spawn(move || handler_loop(&rx, &shared))
                    .expect("spawn handler thread")
            })
            .collect();

        let acceptor = {
            let stop = Arc::clone(&stop_accepting);
            std::thread::Builder::new()
                .name("symbist-accept".into())
                .spawn(move || accept_loop(listener, tx, &stop))
                .expect("spawn acceptor thread")
        };

        Ok(Server {
            shared,
            addr,
            stop_accepting,
            acceptor,
            handler_threads,
            pool,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The job registry (for in-process inspection in tests).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// Requests a graceful shutdown, as `POST /shutdown` does. Returns
    /// immediately; [`wait`](Self::wait) performs the actual drain.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until shutdown is requested (via
    /// [`request_shutdown`](Self::request_shutdown) or `POST /shutdown`),
    /// then drains: running jobs are cancelled to their checkpoints and
    /// persisted as `queued`, in-flight responses finish, and every
    /// thread joins. After this returns, a new server on the same data
    /// directory resumes the interrupted jobs bit-identically.
    pub fn wait(self) {
        {
            let mut down = self
                .shared
                .shutdown
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            while !*down {
                down = self
                    .shared
                    .shutdown_cv
                    .wait(down)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        // Drain order matters: cancel jobs first so live NDJSON streams
        // reach a terminal record set and handler threads can finish.
        self.shared.registry.begin_drain();
        self.pool.join();
        // Unblock the acceptor (it may be parked in accept()).
        self.stop_accepting.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
        // The acceptor owned the channel sender; handlers drain what was
        // queued, then exit on the closed channel.
        for handle in self.handler_threads {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, tx: SyncSender<TcpStream>, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                // Handler pool saturated: refuse inline, never queue.
                let _ = write_response(
                    &mut stream,
                    429,
                    &[("Retry-After", "1")],
                    error_json("handler pool saturated"),
                );
                // The request was never read, so a plain close would RST
                // the connection and could destroy the in-flight 429.
                // Half-close instead and give the client a moment to
                // drain the response (EOF or timeout, whichever first).
                let _ = stream.shutdown(std::net::Shutdown::Write);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
                let mut sink = [0u8; 512];
                while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

fn handler_loop(rx: &Mutex<Receiver<TcpStream>>, shared: &Shared) {
    loop {
        let stream = {
            let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        match stream {
            Ok(stream) => handle_connection(stream, shared),
            Err(_) => break, // acceptor gone, queue drained
        }
    }
}

// ---------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------

const MAX_HEADER_BYTES: usize = 8 * 1024;
const MAX_BODY_BYTES: usize = 64 * 1024;
/// Stream-follow tick: how often a results stream re-checks for new
/// records (and notices client disconnects) when the job is idle.
const FOLLOW_TICK: Duration = Duration::from_millis(50);

struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

enum ParseFailure {
    /// Protocol error worth a status response.
    Bad(u16, &'static str),
    /// Dead/empty connection; just close.
    Drop,
}

fn parse_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ParseFailure> {
    let mut line = String::new();
    if reader
        .read_line(&mut line)
        .map_err(|_| ParseFailure::Drop)?
        == 0
    {
        return Err(ParseFailure::Drop);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(ParseFailure::Bad(400, "malformed request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(ParseFailure::Bad(400, "malformed request line"))?;
    // Strip any query string; no endpoint takes one.
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    let mut header_bytes = line.len();
    loop {
        let mut header = String::new();
        if reader
            .read_line(&mut header)
            .map_err(|_| ParseFailure::Drop)?
            == 0
        {
            return Err(ParseFailure::Drop);
        }
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(ParseFailure::Bad(431, "header block too large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ParseFailure::Bad(400, "bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseFailure::Bad(413, "body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|_| ParseFailure::Drop)?;
    Ok(Request { method, path, body })
}

// ---------------------------------------------------------------------
// Response writing
// ---------------------------------------------------------------------

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

fn error_json(message: &str) -> Json {
    Json::obj([("error", Json::str(message))])
}

/// Renders a lint report as the service's JSON diagnostics shape (the
/// same fields the `lint --json` binary emits).
fn lint_json(report: &symbist_lint::LintReport) -> Json {
    Json::obj([
        ("errors", Json::num(report.error_count() as f64)),
        (
            "warnings",
            Json::num(report.count(symbist_lint::Severity::Warning) as f64),
        ),
        (
            "diagnostics",
            Json::Arr(
                report
                    .diagnostics()
                    .iter()
                    .map(|d| {
                        Json::obj([
                            ("rule", Json::str(d.rule.code())),
                            ("name", Json::str(d.rule.name())),
                            ("severity", Json::str(d.severity.label())),
                            ("context", Json::str(d.context.clone())),
                            ("subject", Json::str(d.subject.clone())),
                            ("message", Json::str(d.message.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: Json,
) -> std::io::Result<()> {
    let payload = format!("{body}\n");
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nConnection: close\r\n\
         Content-Type: application/json\r\nContent-Length: {}\r\n",
        status_reason(status),
        payload.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()
}

// ---------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------

fn handle_connection(stream: TcpStream, shared: &Shared) {
    // A slow or stalled client must not pin a handler thread forever —
    // except while streaming, where the write path has its own pacing.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    let request = match parse_request(&mut reader) {
        Ok(request) => request,
        Err(ParseFailure::Bad(status, message)) => {
            let _ = write_response(&mut stream, status, &[], error_json(message));
            return;
        }
        Err(ParseFailure::Drop) => return,
    };
    route(&mut stream, &request, shared);
}

/// Splits `/jobs/{id}`-style paths. Returns the id and the trailing
/// segment (e.g. `"results"`), if any.
fn parse_job_path<'a>(path: &'a str, prefix: &str) -> Option<(JobId, Option<&'a str>)> {
    let rest = path.strip_prefix(prefix)?;
    match rest.split_once('/') {
        None => Some((rest.parse().ok()?, None)),
        Some((id, tail)) => Some((id.parse().ok()?, Some(tail))),
    }
}

fn route(stream: &mut TcpStream, request: &Request, shared: &Shared) {
    let method = request.method.as_str();
    let path = request.path.as_str();
    let result = match (method, path) {
        ("GET", "/healthz") => {
            write_response(stream, 200, &[], Json::obj([("status", Json::str("ok"))]))
        }
        ("GET", "/stats") => {
            let s = shared.registry.stats();
            write_response(
                stream,
                200,
                &[],
                Json::obj([
                    ("queue_depth", Json::num(s.queue_depth as f64)),
                    ("queue_capacity", Json::num(s.queue_capacity as f64)),
                    ("running", Json::num(s.running as f64)),
                    ("submitted", Json::num(s.submitted as f64)),
                    ("completed", Json::num(s.completed as f64)),
                    ("failed", Json::num(s.failed as f64)),
                    ("cancelled", Json::num(s.cancelled as f64)),
                    ("rejected", Json::num(s.rejected as f64)),
                    ("accepting", Json::Bool(shared.registry.accepting())),
                ]),
            )
        }
        ("POST", "/jobs") => submit_job(stream, &request.body, shared),
        ("POST", "/shutdown") => {
            shared.request_shutdown();
            write_response(
                stream,
                202,
                &[],
                Json::obj([("status", Json::str("draining"))]),
            )
        }
        _ => route_job(stream, method, path, shared),
    };
    let _ = result;
}

fn route_job(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    shared: &Shared,
) -> std::io::Result<()> {
    if let Some((id, tail)) = parse_job_path(path, "/report/") {
        return match (method, tail) {
            ("GET", None) => report(stream, id, shared),
            _ => write_response(stream, 405, &[], error_json("method not allowed")),
        };
    }
    if let Some((id, tail)) = parse_job_path(path, "/lint/") {
        return match (method, tail) {
            ("GET", None) => lint_report(stream, id, shared),
            _ => write_response(stream, 405, &[], error_json("method not allowed")),
        };
    }
    let Some((id, tail)) = parse_job_path(path, "/jobs/") else {
        return write_response(stream, 404, &[], error_json("no such route"));
    };
    match (method, tail) {
        ("GET", None) => job_status(stream, id, shared),
        ("GET", Some("results")) => stream_results(stream, id, shared),
        ("DELETE", None) => cancel_job(stream, id, shared),
        (_, None | Some("results")) => {
            write_response(stream, 405, &[], error_json("method not allowed"))
        }
        _ => write_response(stream, 404, &[], error_json("no such route")),
    }
}

fn submit_job(stream: &mut TcpStream, body: &[u8], shared: &Shared) -> std::io::Result<()> {
    let text = match std::str::from_utf8(body) {
        Ok(text) if !text.trim().is_empty() => text,
        _ => {
            return write_response(
                stream,
                400,
                &[],
                error_json("expected a JSON job spec body"),
            )
        }
    };
    let spec = match JobSpec::from_json_text(text) {
        Ok(spec) => spec,
        Err(e) => return write_response(stream, 400, &[], error_json(&e.0)),
    };
    if let Err(e) = shared.backend.validate(&spec) {
        return write_response(stream, 400, &[], error_json(&e.0));
    }
    // Static pre-flight: a DUT/universe that fails Error-level lints
    // would burn a worker slot on a campaign doomed to NoConvergence or
    // corrupted coverage — reject before the job touches the queue.
    let lint = shared.backend.preflight(&spec);
    if lint.has_errors() {
        let mut body = match lint_json(&lint) {
            Json::Obj(map) => map,
            _ => unreachable!("lint_json always returns an object"),
        };
        body.insert(
            "error".to_string(),
            Json::str("pre-flight lint failed: the DUT or defect universe is structurally broken"),
        );
        return write_response(stream, 422, &[], Json::Obj(body));
    }
    match shared.registry.submit(spec) {
        Ok(job) => write_response(
            stream,
            201,
            &[],
            Json::obj([
                ("id", Json::num(job.id as f64)),
                ("state", Json::str(job.state().label())),
            ]),
        ),
        Err(e @ SubmitError::QueueFull { .. }) => write_response(
            stream,
            503,
            &[("Retry-After", "1")],
            error_json(&e.to_string()),
        ),
        Err(e @ SubmitError::Draining) => {
            write_response(stream, 503, &[], error_json(&e.to_string()))
        }
    }
}

fn job_status(stream: &mut TcpStream, id: JobId, shared: &Shared) -> std::io::Result<()> {
    match shared.registry.get(id) {
        Some(job) => write_response(stream, 200, &[], job.status().to_json()),
        None => write_response(stream, 404, &[], error_json("no such job")),
    }
}

fn cancel_job(stream: &mut TcpStream, id: JobId, shared: &Shared) -> std::io::Result<()> {
    match shared.registry.get(id) {
        None => write_response(stream, 404, &[], error_json("no such job")),
        Some(job) if job.state().is_terminal() => {
            write_response(stream, 409, &[], error_json("job already finished"))
        }
        Some(job) => {
            shared.registry.cancel(id);
            write_response(
                stream,
                202,
                &[],
                Json::obj([
                    ("id", Json::num(job.id as f64)),
                    ("state", Json::str(job.state().label())),
                ]),
            )
        }
    }
}

/// Returns the pre-flight lint report the submission gate evaluated for
/// job `id`'s spec. Admitted jobs always show zero `errors`; the value is
/// in the warnings/info detail and in auditing what the gate saw.
fn lint_report(stream: &mut TcpStream, id: JobId, shared: &Shared) -> std::io::Result<()> {
    match shared.registry.get(id) {
        Some(job) => write_response(
            stream,
            200,
            &[],
            lint_json(&shared.backend.preflight(&job.spec)),
        ),
        None => write_response(stream, 404, &[], error_json("no such job")),
    }
}

fn report(stream: &mut TcpStream, id: JobId, shared: &Shared) -> std::io::Result<()> {
    let Some(job) = shared.registry.get(id) else {
        return write_response(stream, 404, &[], error_json("no such job"));
    };
    match (job.state(), job.report()) {
        (JobState::Completed, Some(report)) => write_response(stream, 200, &[], report.to_json()),
        (state, _) => write_response(
            stream,
            409,
            &[],
            error_json(&format!("no report: job is {}", state.label())),
        ),
    }
}

/// Streams the job's record log as NDJSON, following a live job until it
/// reaches a terminal state. Lines use the campaign checkpoint format, so
/// clients parse them with `parse_checkpoint_line` and a completed
/// stream is byte-identical to the job's checkpoint modulo record order.
fn stream_results(stream: &mut TcpStream, id: JobId, shared: &Shared) -> std::io::Result<()> {
    let Some(job) = shared.registry.get(id) else {
        return write_response(stream, 404, &[], error_json("no such job"));
    };
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nConnection: close\r\n\
          Content-Type: application/x-ndjson\r\n\r\n",
    )?;
    let mut sent = 0usize;
    loop {
        let (records, terminal) = job.records_from(sent);
        for record in &records {
            stream.write_all(checkpoint_line(record).as_bytes())?;
            stream.write_all(b"\n")?;
        }
        stream.flush()?;
        sent += records.len();
        if terminal && records.is_empty() {
            return Ok(());
        }
        if records.is_empty() {
            // A drained registry leaves queued jobs queued (they resume
            // after restart) — following one would outlive the server, so
            // end the stream.
            if !shared.registry.accepting() && job.state() == JobState::Queued {
                return Ok(());
            }
            // A failed write above is how we notice a gone client; the
            // wait ticks so a stalled job can't pin the handler forever
            // without re-checking.
            job.wait_progress(sent, FOLLOW_TICK);
        }
    }
}
