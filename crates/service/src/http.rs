//! The hand-rolled HTTP/1.1 front-end over `std::net`.
//!
//! Deliberately minimal, like the rest of this crate's wire layer: one
//! request per connection, `Connection: close`, bodies delimited by
//! `Content-Length` on the way in and by EOF on the way out — which is
//! what lets the NDJSON result stream be plain sequential writes with no
//! chunked framing.
//!
//! # Backpressure, explicitly
//!
//! Two independent admission controls, each with its own status code:
//!
//! * **`429`** — the bounded handler pool is saturated. The acceptor
//!   thread never queues more than `ServiceConfig::backlog` connections;
//!   beyond that it answers `429 Too Many Requests` inline and closes.
//! * **`503`** — the job queue is full (or draining). `POST /jobs` maps
//!   [`SubmitError::QueueFull`] to `503 Service Unavailable` with a
//!   `Retry-After` hint; accepted connections are unaffected.
//!
//! # Endpoints (v1)
//!
//! All routes live under the `/v1` prefix. The pre-versioning paths
//! answer `308 Permanent Redirect` with a `Location: /v1{path}` and a
//! `Deprecation: true` header, so old clients keep working while new
//! ones never learn the legacy names.
//!
//! | Method/path                 | Purpose                                  |
//! |-----------------------------|------------------------------------------|
//! | `POST /v1/jobs`             | Submit a campaign job (JSON spec)        |
//! | `POST /v1/duts`             | Register a DUT (netlist + invariances)   |
//! | `GET /v1/duts`              | List registered DUTs                     |
//! | `GET /v1/duts/{id}`         | DUT detail (universe size, lint report)  |
//! | `GET /v1/duts/{id}/analysis`| Static symmetry analysis (orbits, classes)|
//! | `GET /v1/jobs/{id}`         | Job status + live progress               |
//! | `GET /v1/jobs/{id}/results` | NDJSON record stream (follows live jobs) |
//! | `GET /v1/jobs/{id}/trace`   | Per-job trace spans (chrome NDJSON)      |
//! | `DELETE /v1/jobs/{id}`      | Cancel a queued/running job              |
//! | `GET /v1/report/{id}`       | Final coverage report                    |
//! | `GET /v1/lint/{id}`         | Pre-flight lint report + analysis summary |
//! | `GET /v1/metrics`           | Prometheus text exposition               |
//! | `GET /v1/healthz`           | Liveness probe                           |
//! | `GET /v1/stats`             | Service counters                         |
//! | `POST /v1/shutdown`         | Graceful drain-to-checkpoint shutdown    |
//!
//! # Errors
//!
//! Every non-2xx response (including the 308 redirects) carries one JSON
//! envelope: `{"error": {"code", "message", "retry_after?",
//! "diagnostics?"}}`. `code` is a stable machine-readable slug (see
//! [`ApiError`]); `retry_after`, when present, duplicates the
//! `Retry-After` header in seconds; `diagnostics` carries structured
//! detail (currently: the lint report on `422`).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use symbist_defects::checkpoint::checkpoint_line;

use symbist_dut::{DutEntry, DutSpec, InvarianceKind, UploadError};

use crate::backend::CampaignBackend;
use crate::job::{JobId, JobState, Registry, SubmitError};
use crate::json::Json;
use crate::spec::JobSpec;
use crate::worker::WorkerPool;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address; use port 0 to let the OS pick (tests).
    pub addr: String,
    /// Job-queue capacity — the `503` threshold.
    pub queue_capacity: usize,
    /// Campaign worker threads.
    pub workers: usize,
    /// HTTP handler threads.
    pub handlers: usize,
    /// Accepted-but-unhandled connection backlog — the `429` threshold.
    pub backlog: usize,
    /// Job persistence directory; `None` disables persistence (and with
    /// it drain/resume across restarts).
    pub data_dir: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 16,
            workers: 2,
            handlers: 4,
            backlog: 8,
            data_dir: None,
        }
    }
}

struct Shared {
    registry: Arc<Registry>,
    backend: Arc<dyn CampaignBackend>,
    shutdown: Mutex<bool>,
    shutdown_cv: Condvar,
}

impl Shared {
    fn request_shutdown(&self) {
        *self.shutdown.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.shutdown_cv.notify_all();
    }
}

/// The running service: listener, handler pool, worker pool, registry.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    stop_accepting: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
    handler_threads: Vec<JoinHandle<()>>,
    pool: WorkerPool,
}

impl Server {
    /// Binds, recovers persisted jobs, and spawns the worker and handler
    /// pools. Returns once the service is accepting requests.
    pub fn start(
        config: ServiceConfig,
        backend: Arc<dyn CampaignBackend>,
    ) -> std::io::Result<Server> {
        let registry = Arc::new(Registry::new(
            config.queue_capacity,
            config.data_dir.clone(),
        )?);
        let pool = WorkerPool::spawn(Arc::clone(&registry), Arc::clone(&backend), config.workers);
        let shared = Arc::new(Shared {
            registry,
            backend,
            shutdown: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        });

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stop_accepting = Arc::new(AtomicBool::new(false));

        let (tx, rx) = mpsc::sync_channel::<TcpStream>(config.backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let handler_threads = (0..config.handlers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("symbist-http-{i}"))
                    .spawn(move || handler_loop(&rx, &shared))
                    .expect("spawn handler thread")
            })
            .collect();

        let acceptor = {
            let stop = Arc::clone(&stop_accepting);
            std::thread::Builder::new()
                .name("symbist-accept".into())
                .spawn(move || accept_loop(listener, tx, &stop))
                .expect("spawn acceptor thread")
        };

        Ok(Server {
            shared,
            addr,
            stop_accepting,
            acceptor,
            handler_threads,
            pool,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The job registry (for in-process inspection in tests).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// Requests a graceful shutdown, as `POST /shutdown` does. Returns
    /// immediately; [`wait`](Self::wait) performs the actual drain.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until shutdown is requested (via
    /// [`request_shutdown`](Self::request_shutdown) or `POST /shutdown`),
    /// then drains: running jobs are cancelled to their checkpoints and
    /// persisted as `queued`, in-flight responses finish, and every
    /// thread joins. After this returns, a new server on the same data
    /// directory resumes the interrupted jobs bit-identically.
    pub fn wait(self) {
        {
            let mut down = self
                .shared
                .shutdown
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            while !*down {
                down = self
                    .shared
                    .shutdown_cv
                    .wait(down)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        // Drain order matters: cancel jobs first so live NDJSON streams
        // reach a terminal record set and handler threads can finish.
        self.shared.registry.begin_drain();
        self.pool.join();
        // Unblock the acceptor (it may be parked in accept()).
        self.stop_accepting.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
        // The acceptor owned the channel sender; handlers drain what was
        // queued, then exit on the closed channel.
        for handle in self.handler_threads {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, tx: SyncSender<TcpStream>, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                // Handler pool saturated: refuse inline, never queue.
                let _ = write_error(
                    &mut stream,
                    &ApiError::new(429, "saturated", "handler pool saturated").with_retry_after(1),
                    &[],
                );
                // The request was never read, so a plain close would RST
                // the connection and could destroy the in-flight 429.
                // Half-close instead and give the client a moment to
                // drain the response (EOF or timeout, whichever first).
                let _ = stream.shutdown(std::net::Shutdown::Write);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
                let mut sink = [0u8; 512];
                while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

fn handler_loop(rx: &Mutex<Receiver<TcpStream>>, shared: &Shared) {
    loop {
        let stream = {
            let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        match stream {
            Ok(stream) => handle_connection(stream, shared),
            Err(_) => break, // acceptor gone, queue drained
        }
    }
}

// ---------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------

const MAX_HEADER_BYTES: usize = 8 * 1024;
const MAX_BODY_BYTES: usize = 64 * 1024;
/// Stream-follow tick: how often a results stream re-checks for new
/// records (and notices client disconnects) when the job is idle.
const FOLLOW_TICK: Duration = Duration::from_millis(50);

struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

enum ParseFailure {
    /// Protocol error worth a status response.
    Bad(u16, &'static str),
    /// Dead/empty connection; just close.
    Drop,
}

fn parse_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ParseFailure> {
    let mut line = String::new();
    if reader
        .read_line(&mut line)
        .map_err(|_| ParseFailure::Drop)?
        == 0
    {
        return Err(ParseFailure::Drop);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(ParseFailure::Bad(400, "malformed request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(ParseFailure::Bad(400, "malformed request line"))?;
    // Strip any query string; no endpoint takes one.
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    let mut header_bytes = line.len();
    loop {
        let mut header = String::new();
        if reader
            .read_line(&mut header)
            .map_err(|_| ParseFailure::Drop)?
            == 0
        {
            return Err(ParseFailure::Drop);
        }
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(ParseFailure::Bad(431, "header block too large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ParseFailure::Bad(400, "bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseFailure::Bad(413, "body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|_| ParseFailure::Drop)?;
    Ok(Request { method, path, body })
}

// ---------------------------------------------------------------------
// Response writing
// ---------------------------------------------------------------------

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        308 => "Permanent Redirect",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// The one shape every non-2xx response takes:
/// `{"error": {"code", "message", "retry_after?", "diagnostics?"}}`.
///
/// `code` is the stable machine-readable contract — clients match on it,
/// never on `message` text. The codes in use: `bad_request`, `not_found`,
/// `method_not_allowed`, `conflict`, `payload_too_large`, `lint_failed`,
/// `saturated`, `header_too_large`, `queue_full`, `draining`,
/// `moved_permanently`, `quota_exceeded`, `internal`.
///
/// `quota_exceeded` is deliberately a `403`, not a `429`: the client's
/// retry policy treats `429` as transient saturation and retries with
/// backoff, but a full registry quota does not heal by waiting — it heals
/// by an operator raising the limit or retiring DUTs.
#[derive(Debug, Clone)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Stable machine-readable error slug.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Seconds to wait before retrying (also sent as `Retry-After`).
    pub retry_after: Option<u64>,
    /// Structured detail, e.g. the lint report on `422`.
    pub diagnostics: Option<Json>,
}

impl ApiError {
    fn new(status: u16, code: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            code,
            message: message.into(),
            retry_after: None,
            diagnostics: None,
        }
    }

    fn with_retry_after(mut self, seconds: u64) -> ApiError {
        self.retry_after = Some(seconds);
        self
    }

    fn with_diagnostics(mut self, diagnostics: Json) -> ApiError {
        self.diagnostics = Some(diagnostics);
        self
    }

    fn not_found(message: impl Into<String>) -> ApiError {
        ApiError::new(404, "not_found", message)
    }

    fn method_not_allowed() -> ApiError {
        ApiError::new(405, "method_not_allowed", "method not allowed")
    }

    /// The JSON envelope body.
    fn envelope(&self) -> Json {
        let mut fields = vec![
            ("code".to_string(), Json::str(self.code)),
            ("message".to_string(), Json::str(self.message.clone())),
        ];
        if let Some(seconds) = self.retry_after {
            fields.push(("retry_after".to_string(), Json::num(seconds as f64)));
        }
        if let Some(diagnostics) = &self.diagnostics {
            fields.push(("diagnostics".to_string(), diagnostics.clone()));
        }
        Json::obj([("error", Json::Obj(fields.into_iter().collect()))])
    }
}

/// Writes an [`ApiError`] envelope; `retry_after` doubles as the
/// `Retry-After` header.
fn write_error(
    stream: &mut TcpStream,
    error: &ApiError,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<u16> {
    let retry = error.retry_after.map(|s| s.to_string());
    let mut headers: Vec<(&str, &str)> = Vec::with_capacity(extra_headers.len() + 1);
    if let Some(retry) = &retry {
        headers.push(("Retry-After", retry));
    }
    headers.extend_from_slice(extra_headers);
    write_response(stream, error.status, &headers, error.envelope())
}

/// Renders a lint report as the service's JSON diagnostics shape (the
/// same fields the `lint --json` binary emits).
fn lint_json(report: &symbist_lint::LintReport) -> Json {
    Json::obj([
        ("errors", Json::num(report.error_count() as f64)),
        (
            "warnings",
            Json::num(report.count(symbist_lint::Severity::Warning) as f64),
        ),
        (
            "diagnostics",
            Json::Arr(
                report
                    .diagnostics()
                    .iter()
                    .map(|d| {
                        Json::obj([
                            ("rule", Json::str(d.rule.code())),
                            ("name", Json::str(d.rule.name())),
                            ("severity", Json::str(d.severity.label())),
                            ("context", Json::str(d.context.clone())),
                            ("subject", Json::str(d.subject.clone())),
                            ("message", Json::str(d.message.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: Json,
) -> std::io::Result<u16> {
    write_payload(
        stream,
        status,
        extra_headers,
        "application/json",
        &format!("{body}\n"),
    )
}

/// Writes a non-JSON body (the Prometheus exposition, trace NDJSON).
fn write_text_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<u16> {
    write_payload(stream, status, &[], content_type, body)
}

fn write_payload(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    content_type: &str,
    payload: &str,
) -> std::io::Result<u16> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nConnection: close\r\n\
         Content-Type: {content_type}\r\nContent-Length: {}\r\n",
        status_reason(status),
        payload.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()?;
    Ok(status)
}

// ---------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------

fn handle_connection(stream: TcpStream, shared: &Shared) {
    // A slow or stalled client must not pin a handler thread forever —
    // except while streaming, where the write path has its own pacing.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    let start = Instant::now();
    let request = match parse_request(&mut reader) {
        Ok(request) => request,
        Err(ParseFailure::Bad(status, message)) => {
            let code = match status {
                413 => "payload_too_large",
                431 => "header_too_large",
                _ => "bad_request",
            };
            let written = write_error(&mut stream, &ApiError::new(status, code, message), &[]);
            record_request_metrics(written, start);
            return;
        }
        Err(ParseFailure::Drop) => return,
    };
    // Fault-injection site `http/response:{METHOD} {path}`: `drop` kills
    // the connection without a response (a worker dying mid-request);
    // `reject` synthesizes the transient `503 queue_full` answer a loaded
    // worker would give. Both exercise real client retry paths.
    if symbist_obs::fault::active() {
        match symbist_obs::fault::fire(&format!(
            "http/response:{} {}",
            request.method, request.path
        )) {
            Some(symbist_obs::FaultAction::Drop) => return,
            Some(symbist_obs::FaultAction::Reject) => {
                let error = ApiError::new(503, "queue_full", "fault-injected transient rejection")
                    .with_retry_after(1);
                let written = write_error(&mut stream, &error, &[]);
                record_request_metrics(written, start);
                return;
            }
            _ => {}
        }
    }
    let _span = symbist_obs::span!("http_request");
    let written = route(&mut stream, &request, shared);
    record_request_metrics(written, start);
}

/// Bumps the per-status-class request counter and latency histogram for
/// one completed response. An `Err` means the client vanished mid-write;
/// that response was never delivered, so it is not counted.
fn record_request_metrics(written: std::io::Result<u16>, start: Instant) {
    let Ok(status) = written else { return };
    const HELP: &str = "HTTP responses, by status class";
    let counter = match status / 100 {
        2 => symbist_obs::counter!(r#"symbist_service_requests_total{class="2xx"}"#, HELP),
        3 => symbist_obs::counter!(r#"symbist_service_requests_total{class="3xx"}"#, HELP),
        4 => symbist_obs::counter!(r#"symbist_service_requests_total{class="4xx"}"#, HELP),
        _ => symbist_obs::counter!(r#"symbist_service_requests_total{class="5xx"}"#, HELP),
    };
    counter.inc();
    symbist_obs::histogram!(
        "symbist_service_request_seconds",
        "Wall time from request parse to response flush",
        symbist_obs::SECONDS_EDGES
    )
    .record(start.elapsed().as_secs_f64());
}

/// Splits `/jobs/{id}`-style paths. Returns the id and the trailing
/// segment (e.g. `"results"`), if any.
fn parse_job_path<'a>(path: &'a str, prefix: &str) -> Option<(JobId, Option<&'a str>)> {
    let rest = path.strip_prefix(prefix)?;
    match rest.split_once('/') {
        None => Some((rest.parse().ok()?, None)),
        Some((id, tail)) => Some((id.parse().ok()?, Some(tail))),
    }
}

fn route(stream: &mut TcpStream, request: &Request, shared: &Shared) -> std::io::Result<u16> {
    let method = request.method.as_str();
    let path = request.path.as_str();
    match path.strip_prefix("/v1") {
        Some(rest) if rest.starts_with('/') => route_v1(stream, method, rest, request, shared),
        Some(_) => write_error(stream, &ApiError::not_found("no such route"), &[]),
        None if is_legacy_route(path) => redirect_to_v1(stream, path),
        None => write_error(stream, &ApiError::not_found("no such route"), &[]),
    }
}

/// Whether a pre-versioning path deserves a `308` onto its `/v1` twin.
/// Unknown paths fall through to a plain `404` — redirecting them would
/// turn every typo into a misleading "deprecated route" signal.
fn is_legacy_route(path: &str) -> bool {
    matches!(path, "/healthz" | "/stats" | "/jobs" | "/shutdown")
        || path.starts_with("/jobs/")
        || path.starts_with("/report/")
        || path.starts_with("/lint/")
}

/// `308 Permanent Redirect` preserves the method and body, so a legacy
/// `POST /jobs` replays correctly against `/v1/jobs`. The `Deprecation`
/// header marks the old name; the envelope body serves clients that do
/// not follow redirects.
fn redirect_to_v1(stream: &mut TcpStream, path: &str) -> std::io::Result<u16> {
    let location = format!("/v1{path}");
    let error = ApiError::new(
        308,
        "moved_permanently",
        format!("unversioned paths are deprecated; use {location}"),
    );
    write_error(
        stream,
        &error,
        &[("Location", &location), ("Deprecation", "true")],
    )
}

fn route_v1(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    request: &Request,
    shared: &Shared,
) -> std::io::Result<u16> {
    match (method, path) {
        ("GET", "/healthz") => {
            write_response(stream, 200, &[], Json::obj([("status", Json::str("ok"))]))
        }
        ("GET", "/stats") => {
            let s = shared.registry.stats();
            write_response(
                stream,
                200,
                &[],
                Json::obj([
                    ("queue_depth", Json::num(s.queue_depth as f64)),
                    ("queue_capacity", Json::num(s.queue_capacity as f64)),
                    ("running", Json::num(s.running as f64)),
                    ("submitted", Json::num(s.submitted as f64)),
                    ("completed", Json::num(s.completed as f64)),
                    ("failed", Json::num(s.failed as f64)),
                    ("cancelled", Json::num(s.cancelled as f64)),
                    ("rejected", Json::num(s.rejected as f64)),
                    ("accepting", Json::Bool(shared.registry.accepting())),
                ]),
            )
        }
        ("GET", "/universe") => write_response(
            stream,
            200,
            &[],
            Json::obj([("defects", Json::num(shared.backend.universe_len() as f64))]),
        ),
        ("GET", "/metrics") => write_text_response(
            stream,
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            &symbist_obs::registry().render_prometheus(),
        ),
        ("POST", "/jobs") => submit_job(stream, &request.body, shared),
        ("POST", "/duts") => upload_dut(stream, &request.body, shared),
        ("GET", "/duts") => list_duts(stream, shared),
        ("POST", "/shutdown") => {
            shared.request_shutdown();
            write_response(
                stream,
                202,
                &[],
                Json::obj([("status", Json::str("draining"))]),
            )
        }
        _ => route_job(stream, method, path, shared),
    }
}

fn route_job(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    shared: &Shared,
) -> std::io::Result<u16> {
    if let Some((id, tail)) = parse_job_path(path, "/report/") {
        return match (method, tail) {
            ("GET", None) => report(stream, id, shared),
            _ => write_error(stream, &ApiError::method_not_allowed(), &[]),
        };
    }
    if let Some((id, tail)) = parse_job_path(path, "/lint/") {
        return match (method, tail) {
            ("GET", None) => lint_report(stream, id, shared),
            _ => write_error(stream, &ApiError::method_not_allowed(), &[]),
        };
    }
    if let Some(reference) = path.strip_prefix("/duts/") {
        if let Some(reference) = reference.strip_suffix("/analysis") {
            if !reference.is_empty() && !reference.contains('/') {
                return match method {
                    "GET" => dut_analysis(stream, reference, shared),
                    _ => write_error(stream, &ApiError::method_not_allowed(), &[]),
                };
            }
        }
        return match (method, reference.contains('/')) {
            ("GET", false) => get_dut(stream, reference, shared),
            (_, false) => write_error(stream, &ApiError::method_not_allowed(), &[]),
            _ => write_error(stream, &ApiError::not_found("no such route"), &[]),
        };
    }
    let Some((id, tail)) = parse_job_path(path, "/jobs/") else {
        return write_error(stream, &ApiError::not_found("no such route"), &[]);
    };
    match (method, tail) {
        ("GET", None) => job_status(stream, id, shared),
        ("GET", Some("results")) => stream_results(stream, id, shared),
        ("GET", Some("trace")) => job_trace(stream, id, shared),
        ("DELETE", None) => cancel_job(stream, id, shared),
        (_, None | Some("results" | "trace")) => {
            write_error(stream, &ApiError::method_not_allowed(), &[])
        }
        _ => write_error(stream, &ApiError::not_found("no such route"), &[]),
    }
}

fn submit_job(stream: &mut TcpStream, body: &[u8], shared: &Shared) -> std::io::Result<u16> {
    let text = match std::str::from_utf8(body) {
        Ok(text) if !text.trim().is_empty() => text,
        _ => {
            return write_error(
                stream,
                &ApiError::new(400, "bad_request", "expected a JSON job spec body"),
                &[],
            )
        }
    };
    let spec = match JobSpec::from_json_text(text) {
        Ok(spec) => spec,
        Err(e) => return write_error(stream, &ApiError::new(400, "bad_request", e.0), &[]),
    };
    if let Err(e) = shared.backend.validate(&spec) {
        return write_error(stream, &ApiError::new(400, "bad_request", e.0), &[]);
    }
    // Static pre-flight: a DUT/universe that fails Error-level lints
    // would burn a worker slot on a campaign doomed to NoConvergence or
    // corrupted coverage — reject before the job touches the queue.
    let lint = shared.backend.preflight(&spec);
    if lint.has_errors() {
        let error = ApiError::new(
            422,
            "lint_failed",
            "pre-flight lint failed: the DUT or defect universe is structurally broken",
        )
        .with_diagnostics(lint_json(&lint));
        return write_error(stream, &error, &[]);
    }
    match shared.registry.submit(spec) {
        Ok(job) => write_response(
            stream,
            201,
            &[],
            Json::obj([
                ("id", Json::num(job.id as f64)),
                ("state", Json::str(job.state().label())),
            ]),
        ),
        Err(e @ SubmitError::QueueFull { .. }) => write_error(
            stream,
            &ApiError::new(503, "queue_full", e.to_string()).with_retry_after(1),
            &[],
        ),
        Err(e @ SubmitError::Draining) => {
            write_error(stream, &ApiError::new(503, "draining", e.to_string()), &[])
        }
    }
}

/// One registered DUT as the `/v1/duts` wire shape. `detail` adds the
/// cached lint report (list responses stay small).
fn dut_json(entry: &DutEntry, detail: bool) -> Json {
    let spec = entry.spec();
    let invariances: Vec<Json> = spec
        .invariances
        .iter()
        .map(|inv| {
            Json::obj([
                ("name", Json::str(inv.name.clone())),
                (
                    "kind",
                    Json::str(match inv.kind {
                        InvarianceKind::Complementary { .. } => "complementary",
                        InvarianceKind::Replica => "replica",
                    }),
                ),
            ])
        })
        .collect();
    let mut fields = vec![
        ("id", Json::str(entry.id.clone())),
        ("name", Json::str(spec.name.clone())),
        ("tenant", Json::str(spec.tenant.clone())),
        ("seq", Json::num(entry.seq as f64)),
        ("defects", Json::num(entry.model.universe.len() as f64)),
        (
            "components",
            Json::num(entry.model.dut.template().device_count() as f64),
        ),
        ("invariances", Json::Arr(invariances)),
    ];
    if detail {
        fields.push(("lint", lint_json(&entry.lint)));
    }
    Json::obj(fields)
}

/// `POST /v1/duts`: parse → content-hash dedup → lint gate → quota →
/// persist. `201` for new content, `200` with the cached entry (and its
/// cached lint report) for an identical re-upload.
fn upload_dut(stream: &mut TcpStream, body: &[u8], shared: &Shared) -> std::io::Result<u16> {
    let Some(registry) = shared.backend.dut_registry() else {
        return write_error(
            stream,
            &ApiError::not_found("this server has no DUT registry"),
            &[],
        );
    };
    let text = match std::str::from_utf8(body) {
        Ok(text) if !text.trim().is_empty() => text,
        _ => {
            return write_error(
                stream,
                &ApiError::new(400, "bad_request", "expected a JSON DUT spec body"),
                &[],
            )
        }
    };
    let spec = match DutSpec::from_json_text(text) {
        Ok(spec) => spec,
        Err(e) => return write_error(stream, &ApiError::new(400, "bad_request", e.0), &[]),
    };
    match registry.upload(spec) {
        Ok(outcome) => {
            let status = if outcome.created() { 201 } else { 200 };
            let entry = outcome.entry();
            let mut body = dut_json(entry, true);
            if let Json::Obj(map) = &mut body {
                map.insert("created".into(), Json::Bool(outcome.created()));
            }
            write_response(stream, status, &[], body)
        }
        Err(UploadError::Lint(report)) => {
            let error = ApiError::new(
                422,
                "lint_failed",
                "DUT rejected by lint preflight: the netlist or its defect \
                 universe is structurally broken",
            )
            .with_diagnostics(lint_json(&report));
            write_error(stream, &error, &[])
        }
        Err(e @ UploadError::Quota { .. }) => {
            // 403, not 429: quota exhaustion is not transient, so the
            // client's backoff-and-retry loop must not touch it.
            write_error(
                stream,
                &ApiError::new(403, "quota_exceeded", e.to_string()),
                &[],
            )
        }
        Err(UploadError::Io(e)) => write_error(
            stream,
            &ApiError::new(500, "internal", format!("registry persistence failed: {e}")),
            &[],
        ),
        Err(e) => write_error(
            stream,
            &ApiError::new(400, "bad_request", e.to_string()),
            &[],
        ),
    }
}

/// `GET /v1/duts`: every registered DUT, in upload order.
fn list_duts(stream: &mut TcpStream, shared: &Shared) -> std::io::Result<u16> {
    let Some(registry) = shared.backend.dut_registry() else {
        return write_error(
            stream,
            &ApiError::not_found("this server has no DUT registry"),
            &[],
        );
    };
    let duts: Vec<Json> = registry
        .list()
        .iter()
        .map(|entry| dut_json(entry, false))
        .collect();
    write_response(stream, 200, &[], Json::obj([("duts", Json::Arr(duts))]))
}

/// `GET /v1/duts/{id-or-name}`: full detail including the cached lint
/// report and the universe size a coordinator needs to shard over it.
fn get_dut(stream: &mut TcpStream, reference: &str, shared: &Shared) -> std::io::Result<u16> {
    let Some(registry) = shared.backend.dut_registry() else {
        return write_error(
            stream,
            &ApiError::not_found("this server has no DUT registry"),
            &[],
        );
    };
    match registry.get(reference) {
        Some(entry) => write_response(stream, 200, &[], dut_json(&entry, true)),
        None => write_error(stream, &ApiError::not_found("no such DUT"), &[]),
    }
}

/// `GET /v1/duts/{id-or-name}/analysis`: the full stage-two static
/// analysis — symmetry orbits, the (orbit × defect kind) defect-class
/// partition, and detectability diagnostics — cached at upload time for
/// registered DUTs, computed once at startup for the baked-in ADC (the
/// reserved name resolves through the backend, not the registry).
fn dut_analysis(stream: &mut TcpStream, reference: &str, shared: &Shared) -> std::io::Result<u16> {
    let spec = JobSpec {
        dut: Some(reference.to_string()),
        ..JobSpec::default()
    };
    match shared.backend.analysis(&spec) {
        Some(report) => match Json::parse(&report.to_json_string()) {
            Ok(body) => write_response(stream, 200, &[], body),
            Err(e) => write_error(
                stream,
                &ApiError::new(500, "internal", format!("analysis rendering failed: {e}")),
                &[],
            ),
        },
        None => write_error(
            stream,
            &ApiError::not_found("no analysis for this DUT"),
            &[],
        ),
    }
}

fn job_status(stream: &mut TcpStream, id: JobId, shared: &Shared) -> std::io::Result<u16> {
    match shared.registry.get(id) {
        Some(job) => write_response(stream, 200, &[], job.status().to_json()),
        None => write_error(stream, &ApiError::not_found("no such job"), &[]),
    }
}

fn cancel_job(stream: &mut TcpStream, id: JobId, shared: &Shared) -> std::io::Result<u16> {
    match shared.registry.get(id) {
        None => write_error(stream, &ApiError::not_found("no such job"), &[]),
        Some(job) if job.state().is_terminal() => write_error(
            stream,
            &ApiError::new(409, "conflict", "job already finished"),
            &[],
        ),
        Some(job) => {
            shared.registry.cancel(id);
            write_response(
                stream,
                202,
                &[],
                Json::obj([
                    ("id", Json::num(job.id as f64)),
                    ("state", Json::str(job.state().label())),
                ]),
            )
        }
    }
}

/// Returns the pre-flight lint report the submission gate evaluated for
/// job `id`'s spec. Admitted jobs always show zero `errors`; the value is
/// in the warnings/info detail and in auditing what the gate saw. When
/// the backend has a static analyzer for the job's DUT, its orbit/class
/// summary rides along under `"analysis"` (full detail lives on
/// `GET /v1/duts/{id}/analysis`).
fn lint_report(stream: &mut TcpStream, id: JobId, shared: &Shared) -> std::io::Result<u16> {
    match shared.registry.get(id) {
        Some(job) => {
            let mut body = lint_json(&shared.backend.preflight(&job.spec));
            if let Some(analysis) = shared.backend.analysis(&job.spec) {
                if let (Json::Obj(map), Ok(summary)) =
                    (&mut body, Json::parse(&analysis.summary_json()))
                {
                    map.insert("analysis".into(), summary);
                }
            }
            write_response(stream, 200, &[], body)
        }
        None => write_error(stream, &ApiError::not_found("no such job"), &[]),
    }
}

fn report(stream: &mut TcpStream, id: JobId, shared: &Shared) -> std::io::Result<u16> {
    let Some(job) = shared.registry.get(id) else {
        return write_error(stream, &ApiError::not_found("no such job"), &[]);
    };
    match (job.state(), job.report()) {
        (JobState::Completed, Some(report)) => write_response(stream, 200, &[], report.to_json()),
        (state, _) => write_error(
            stream,
            &ApiError::new(
                409,
                "conflict",
                format!("no report: job is {}", state.label()),
            ),
            &[],
        ),
    }
}

/// Serves the spans captured under the job's trace scope as NDJSON in the
/// `chrome://tracing` Trace Event Format. Best-effort by design: the
/// global ring is bounded, so a long-running service eventually evicts
/// old jobs' spans — recent jobs are the ones worth inspecting.
fn job_trace(stream: &mut TcpStream, id: JobId, shared: &Shared) -> std::io::Result<u16> {
    if shared.registry.get(id).is_none() {
        return write_error(stream, &ApiError::not_found("no such job"), &[]);
    }
    let scope = format!("job-{id}");
    let mut body = String::new();
    for event in symbist_obs::tracer().snapshot_scope(&scope) {
        body.push_str(&event.to_json_line());
        body.push('\n');
    }
    write_text_response(stream, 200, "application/x-ndjson", &body)
}

/// Streams the job's record log as NDJSON, following a live job until it
/// reaches a terminal state. Lines use the campaign checkpoint format, so
/// clients parse them with `parse_checkpoint_line` and a completed
/// stream is byte-identical to the job's checkpoint modulo record order.
fn stream_results(stream: &mut TcpStream, id: JobId, shared: &Shared) -> std::io::Result<u16> {
    let Some(job) = shared.registry.get(id) else {
        return write_error(stream, &ApiError::not_found("no such job"), &[]);
    };
    // A client that vanishes mid-stream (broken pipe on a write below) is
    // routine, not an error: count it, release the handler slot, and move
    // on — a follower's death must never look like a server failure.
    match stream_results_body(stream, &job, shared) {
        Ok(()) => Ok(200),
        Err(_) => {
            symbist_obs::counter!(
                "symbist_service_stream_aborts_total",
                "NDJSON result streams cut short by a client disconnect"
            )
            .inc();
            Ok(200)
        }
    }
}

fn stream_results_body(
    stream: &mut TcpStream,
    job: &crate::job::Job,
    shared: &Shared,
) -> std::io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nConnection: close\r\n\
          Content-Type: application/x-ndjson\r\n\r\n",
    )?;
    let mut sent = 0usize;
    loop {
        let (records, terminal) = job.records_from(sent);
        for record in &records {
            stream.write_all(checkpoint_line(record).as_bytes())?;
            stream.write_all(b"\n")?;
        }
        stream.flush()?;
        sent += records.len();
        if terminal && records.is_empty() {
            return Ok(());
        }
        if records.is_empty() {
            // A drained registry leaves queued jobs queued (they resume
            // after restart) — following one would outlive the server, so
            // end the stream.
            if !shared.registry.accepting() && job.state() == JobState::Queued {
                return Ok(());
            }
            // A failed write above is how we notice a gone client; the
            // wait ticks so a stalled job can't pin the handler forever
            // without re-checking.
            job.wait_progress(sent, FOLLOW_TICK);
        }
    }
}
