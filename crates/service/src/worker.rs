//! The worker pool: fixed threads pulling jobs off the registry queue and
//! running them against the backend, with per-job panic isolation.
//!
//! Each worker loops on [`Registry::claim_next`] until the registry
//! drains. A claimed job runs under `catch_unwind`, so a backend bug
//! takes down one job (it transitions to `Failed`), never a worker thread
//! — mirroring the per-defect panic isolation inside the campaign runner
//! one level up.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use symbist_defects::{CampaignError, CampaignMonitor, DefectRecord};

use crate::backend::CampaignBackend;
use crate::job::{Job, JobMonitor, Registry};

/// Wraps the job monitor with the `worker/kill:{tag}` fault-injection
/// site: a matching `panic` rule unwinds *after* the record is durable
/// (checkpointed and published), so the job fails with exactly `k`
/// records delivered — the deterministic "worker dies after k records"
/// chaos scenario. The panic escapes the campaign's per-defect
/// `catch_unwind` (monitors run outside it) and is caught by this
/// worker's per-job `catch_unwind` below, failing the job but never the
/// worker thread.
struct FaultMonitor<'a> {
    inner: JobMonitor<'a>,
    site: String,
}

impl CampaignMonitor for FaultMonitor<'_> {
    fn on_start(&self, selected: usize, resumed: usize) {
        self.inner.on_start(selected, resumed);
    }

    fn on_record(&self, record: &DefectRecord, resumed: bool) {
        self.inner.on_record(record, resumed);
        if matches!(
            symbist_obs::fault::fire(&self.site),
            Some(symbist_obs::FaultAction::Panic)
        ) {
            panic!("fault-injected worker kill ({})", self.site);
        }
    }

    fn cancelled(&self) -> bool {
        self.inner.cancelled()
    }
}

/// A pool of campaign worker threads.
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (clamped to at least 1) serving the
    /// registry's queue with the given backend.
    pub fn spawn(
        registry: Arc<Registry>,
        backend: Arc<dyn CampaignBackend>,
        threads: usize,
    ) -> WorkerPool {
        let threads = threads.max(1);
        symbist_obs::gauge!(
            "symbist_service_workers_total",
            "Campaign worker threads in the pool"
        )
        .set(i64::try_from(threads).unwrap_or(i64::MAX));
        let handles = (0..threads)
            .map(|i| {
                let registry = Arc::clone(&registry);
                let backend = Arc::clone(&backend);
                std::thread::Builder::new()
                    .name(format!("symbist-worker-{i}"))
                    .spawn(move || worker_loop(&registry, backend.as_ref()))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Waits for every worker to exit. Workers exit once the registry
    /// drains ([`Registry::begin_drain`]) and their in-flight job — if
    /// any — reaches a terminal state, so calling this after
    /// `begin_drain` implements graceful shutdown.
    pub fn join(self) {
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(registry: &Registry, backend: &dyn CampaignBackend) {
    while let Some(job) = registry.claim_next() {
        run_one(registry, backend, &job);
    }
}

/// Runs a claimed job to a terminal state.
fn run_one(registry: &Registry, backend: &dyn CampaignBackend, job: &Job) {
    // Scope the worker thread to this job so every span opened below —
    // including those from campaign worker threads, which re-install the
    // scope — is retrievable via `GET /v1/jobs/{id}/trace`.
    let _scope = symbist_obs::enter_scope(&format!("job-{}", job.id));
    let busy = symbist_obs::gauge!(
        "symbist_service_workers_busy",
        "Worker threads currently running a job"
    );
    busy.add(1);
    let run_start = std::time::Instant::now();
    let monitor = FaultMonitor {
        inner: JobMonitor::new(job),
        site: format!("worker/kill:{}", job.spec.tag.as_deref().unwrap_or("")),
    };
    let outcome = {
        let _span = symbist_obs::span!("job_run");
        catch_unwind(AssertUnwindSafe(|| {
            backend.run(&job.spec, job.checkpoint.clone(), &monitor)
        }))
    };
    symbist_obs::histogram!(
        "symbist_service_job_run_seconds",
        "Wall time a worker spent running one job",
        symbist_obs::SECONDS_EDGES
    )
    .record(run_start.elapsed().as_secs_f64());
    busy.add(-1);
    let outcome = match outcome {
        Ok(Ok(result)) => Ok(result),
        Ok(Err(CampaignError::Cancelled { completed, .. })) => {
            Err(format!("cancelled after {completed} defects"))
        }
        Ok(Err(error)) => Err(error.to_string()),
        Err(panic) => Err(format!("worker panicked: {}", panic_message(&*panic))),
    };
    registry.finish(job, outcome);
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::time::Duration;

    use symbist_defects::{CampaignMonitor, CampaignResult};

    use crate::backend::SyntheticBackend;
    use crate::job::{JobState, SubmitError};
    use crate::spec::JobSpec;

    /// Backend that panics on every run.
    struct PanickingBackend;

    impl CampaignBackend for PanickingBackend {
        fn validate(&self, _spec: &JobSpec) -> Result<(), crate::spec::SpecError> {
            Ok(())
        }
        fn universe_len(&self) -> usize {
            0
        }
        fn run(
            &self,
            _spec: &JobSpec,
            _checkpoint: Option<PathBuf>,
            _monitor: &dyn CampaignMonitor,
        ) -> Result<CampaignResult, CampaignError> {
            panic!("backend exploded");
        }
    }

    fn wait_terminal(job: &Job) -> JobState {
        for _ in 0..500 {
            let state = job.state();
            if state.is_terminal() {
                return state;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("job never reached a terminal state");
    }

    #[test]
    fn pool_runs_jobs_to_completion() {
        let registry = Arc::new(Registry::new(8, None).unwrap());
        let backend: Arc<dyn CampaignBackend> = Arc::new(SyntheticBackend::new(3));
        let pool = WorkerPool::spawn(Arc::clone(&registry), backend, 2);
        let jobs: Vec<_> = (0..4)
            .map(|_| registry.submit(JobSpec::default()).unwrap())
            .collect();
        for job in &jobs {
            assert_eq!(wait_terminal(job), JobState::Completed);
            assert!(job.report().is_some());
        }
        registry.begin_drain();
        pool.join();
        let stats = registry.stats();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.running, 0);
    }

    #[test]
    fn panicking_backend_fails_job_not_worker() {
        let registry = Arc::new(Registry::new(8, None).unwrap());
        let pool = WorkerPool::spawn(Arc::clone(&registry), Arc::new(PanickingBackend), 1);
        let bad = registry.submit(JobSpec::default()).unwrap();
        assert_eq!(wait_terminal(&bad), JobState::Failed);
        let error = bad.status().error.unwrap();
        assert!(error.contains("backend exploded"), "{error}");
        // The worker survived the panic and keeps serving.
        let next = registry.submit(JobSpec::default()).unwrap();
        assert_eq!(wait_terminal(&next), JobState::Failed);
        registry.begin_drain();
        pool.join();
    }

    #[test]
    fn drain_with_empty_queue_joins_immediately() {
        let registry = Arc::new(Registry::new(4, None).unwrap());
        let backend: Arc<dyn CampaignBackend> = Arc::new(SyntheticBackend::new(2));
        let pool = WorkerPool::spawn(Arc::clone(&registry), backend, 3);
        registry.begin_drain();
        pool.join();
        assert!(matches!(
            registry.submit(JobSpec::default()).unwrap_err(),
            SubmitError::Draining
        ));
    }
}
