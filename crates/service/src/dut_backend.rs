//! [`GenericBackend`]: the backend decorator that adds registered-DUT
//! campaigns to any existing backend.
//!
//! The service core never learns what a DUT is — it sees one
//! [`CampaignBackend`]. `GenericBackend` wraps the production backend
//! (the baked-in SAR ADC) plus a [`DutRegistry`], and dispatches on the
//! spec's `dut` field:
//!
//! * `None` or `"sar-adc"` — **delegate verbatim** to the inner backend.
//!   The registry path adds zero code between the spec and the legacy
//!   campaign, which is what makes the ADC Table-1 campaign bit-identical
//!   whether or not the server carries a registry.
//! * anything else — resolve against the registry (content id or latest
//!   name), run the generic DC-invariance campaign over the entry's
//!   netlist, universe, and cached calibrated engine.
//!
//! Generic campaigns are deterministic from the spec alone (the engine is
//! calibrated from the upload's seed, the LWRS draw from the job's seed),
//! so a coordinator can shard one across workers that each calibrate
//! locally and still merge byte-identical records.

use std::path::PathBuf;
use std::sync::Arc;

use symbist_defects::{run_campaign_monitored, CampaignError, CampaignMonitor, CampaignResult};
use symbist_dut::{check_dut, DutEntry, DutRegistry, BUILTIN_ADC_DUT};
use symbist_lint::{AnalysisReport, LintReport};

use crate::backend::{check_range, check_sample, CampaignBackend};
use crate::spec::{JobSpec, SpecError};

/// Decorates an inner backend with registered-DUT campaign support.
pub struct GenericBackend {
    inner: Arc<dyn CampaignBackend>,
    registry: Arc<DutRegistry>,
}

impl GenericBackend {
    /// Wraps `inner` (which keeps serving specs without a `dut` field)
    /// and serves every registered DUT from `registry`.
    pub fn new(inner: Arc<dyn CampaignBackend>, registry: Arc<DutRegistry>) -> GenericBackend {
        GenericBackend { inner, registry }
    }

    /// Whether a spec addresses the inner (baked-in) backend.
    fn is_builtin(spec: &JobSpec) -> bool {
        matches!(spec.dut.as_deref(), None | Some(BUILTIN_ADC_DUT))
    }

    fn resolve(&self, reference: &str) -> Result<Arc<DutEntry>, SpecError> {
        self.registry.get(reference).ok_or_else(|| {
            SpecError(format!(
                "unknown DUT \"{reference}\" (not a registered id or name; \
                 POST /v1/duts to register)"
            ))
        })
    }
}

impl CampaignBackend for GenericBackend {
    fn validate(&self, spec: &JobSpec) -> Result<(), SpecError> {
        if Self::is_builtin(spec) {
            return self.inner.validate(spec);
        }
        let reference = spec.dut.as_deref().unwrap_or_default();
        let entry = self.resolve(reference)?;
        // Block filters index the ADC's Table-I structure; a generic
        // netlist has no blocks, so a filter would silently select
        // everything — reject instead of guessing.
        if spec.block.is_some() {
            return Err(SpecError(format!(
                "\"block\" filters apply only to the baked-in ADC; \
                 DUT \"{reference}\" has no block structure"
            )));
        }
        // Same for comparator schedules: the generic engine checks every
        // declared invariance per defect; there is no schedule to pick.
        if spec.schedule.is_some() {
            return Err(SpecError(format!(
                "\"schedule\" applies only to the baked-in ADC; \
                 DUT \"{reference}\" runs all declared invariances"
            )));
        }
        let universe_len = entry.model.universe.len();
        check_sample(spec, universe_len)?;
        check_range(spec, universe_len)
    }

    fn universe_len(&self) -> usize {
        // `GET /v1/universe` describes the baked-in backend; registered
        // DUTs expose their universe size on `GET /v1/duts/{id}`.
        self.inner.universe_len()
    }

    fn preflight(&self, spec: &JobSpec) -> LintReport {
        if Self::is_builtin(spec) {
            return self.inner.preflight(spec);
        }
        // The report cached at upload ("lint once"); an unresolvable
        // reference yields the empty report — `validate` already turned
        // it into a 400 before preflight runs.
        match spec.dut.as_deref().and_then(|r| self.registry.get(r)) {
            Some(entry) => entry.lint.clone(),
            None => LintReport::default(),
        }
    }

    fn analysis(&self, spec: &JobSpec) -> Option<AnalysisReport> {
        if Self::is_builtin(spec) {
            return self.inner.analysis(spec);
        }
        // Cached at upload ("analyze once"), like the lint report.
        spec.dut
            .as_deref()
            .and_then(|r| self.registry.get(r))
            .map(|entry| entry.analysis.clone())
    }

    fn run(
        &self,
        spec: &JobSpec,
        checkpoint: Option<PathBuf>,
        monitor: &dyn CampaignMonitor,
    ) -> Result<CampaignResult, CampaignError> {
        if Self::is_builtin(spec) {
            return self.inner.run(spec, checkpoint, monitor);
        }
        let reference = spec.dut.as_deref().unwrap_or_default();
        let entry = self
            .resolve(reference)
            .map_err(|e| CampaignError::Setup { reason: e.0 })?;
        let engine = self
            .registry
            .engine_for(&entry)
            .map_err(|e| CampaignError::Setup { reason: e.0 })?;
        symbist_obs::counter!(
            "symbist_dut_campaigns_total",
            "campaigns run against registered DUTs"
        )
        .inc();
        let options = spec.campaign_options(checkpoint, entry.model.universe.len());
        run_campaign_monitored(
            &entry.model.dut,
            &entry.model.universe,
            &options,
            |dut| check_dut(&engine, dut),
            monitor,
        )
    }

    fn dut_registry(&self) -> Option<&Arc<DutRegistry>> {
        Some(&self.registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SyntheticBackend;
    use symbist_dut::{CapArrayConfig, DutRegistryConfig};

    fn harness() -> (GenericBackend, String) {
        let registry = Arc::new(DutRegistry::open(DutRegistryConfig::default()).unwrap());
        let upload = registry
            .upload(CapArrayConfig::binary(3).dut_spec())
            .unwrap();
        let id = upload.entry().id.clone();
        let backend = GenericBackend::new(Arc::new(SyntheticBackend::new(4)), registry);
        (backend, id)
    }

    #[test]
    fn builtin_specs_delegate_to_inner() {
        let (backend, _) = harness();
        // No `dut`, and the reserved name, both hit the synthetic inner.
        for dut in [None, Some(BUILTIN_ADC_DUT.to_string())] {
            let spec = JobSpec {
                dut,
                ..JobSpec::default()
            };
            backend.validate(&spec).unwrap();
            let result = backend.run(&spec, None, &()).unwrap();
            assert_eq!(result.simulated(), backend.inner.universe_len());
        }
    }

    #[test]
    fn generic_spec_runs_the_registered_universe() {
        let (backend, id) = harness();
        let spec = JobSpec {
            dut: Some(id),
            ..JobSpec::default()
        };
        backend.validate(&spec).unwrap();
        let result = backend.run(&spec, None, &()).unwrap();
        // 3 bits × 3 arrays × (2 switches + 1 resistor) × 4 defect kinds.
        assert_eq!(result.simulated(), 27 * 4);
        // By name resolves to the same entry.
        let by_name = JobSpec {
            dut: Some("cap-array-b3-r2".into()),
            ..JobSpec::default()
        };
        backend.validate(&by_name).unwrap();
    }

    #[test]
    fn generic_specs_reject_adc_only_knobs_and_unknown_duts() {
        let (backend, id) = harness();
        let unknown = JobSpec {
            dut: Some("nope".into()),
            ..JobSpec::default()
        };
        assert!(backend.validate(&unknown).is_err());
        let blocked = JobSpec {
            dut: Some(id.clone()),
            block: Some("SC Array".into()),
            ..JobSpec::default()
        };
        assert!(backend.validate(&blocked).is_err());
        let scheduled = JobSpec {
            dut: Some(id),
            schedule: Some("parallel".into()),
            ..JobSpec::default()
        };
        assert!(backend.validate(&scheduled).is_err());
    }
}
