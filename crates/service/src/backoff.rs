//! Seeded exponential backoff with decorrelated jitter.
//!
//! The retry-sleep policy shared by the [`Client`](crate::client::Client)
//! and the coordinator. The schedule is the AWS "decorrelated jitter"
//! variant: each sleep is drawn uniformly from `[base, 3 × previous]` and
//! clamped to `cap`, which grows roughly exponentially while desynchronizing
//! concurrent retriers (a fleet of clients hammered by the same `503` does
//! not thunder back in lockstep). The draw comes from the workspace's
//! deterministic [`Rng`], so a seeded schedule is exactly reproducible in
//! tests.
//!
//! A server-provided `Retry-After` is honored as a **floor**, never a cap:
//! the jittered delay is raised to at least the server's figure (even past
//! `cap`), but a generous jitter draw above the floor is kept. The
//! previous client behavior — sleeping `min(retry_after, 2s)` flat —
//! inverted that contract and retried *sooner* the more loaded the server
//! said it was.

use std::time::Duration;

use symbist_circuit::rng::Rng;

/// Decorrelated-jitter backoff schedule. Create one per logical operation
/// (all attempts of one request), not per attempt.
#[derive(Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    prev: Duration,
    rng: Rng,
}

/// Default first-sleep lower bound.
pub const DEFAULT_BASE: Duration = Duration::from_millis(50);
/// Default jitter clamp (a `Retry-After` floor may still exceed it).
pub const DEFAULT_CAP: Duration = Duration::from_secs(2);

impl Backoff {
    /// A schedule drawing from `[base, 3 × previous]`, clamped to `cap`.
    pub fn new(seed: u64, base: Duration, cap: Duration) -> Backoff {
        Backoff {
            base,
            cap: cap.max(base),
            prev: base,
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// The next sleep. `floor` is the server's `Retry-After` hint: the
    /// returned delay is at least that long, even beyond `cap`. The floor
    /// does not feed back into the jitter state, so one pessimistic hint
    /// does not permanently inflate the schedule.
    pub fn next(&mut self, floor: Option<Duration>) -> Duration {
        let hi = (self.prev.as_secs_f64() * 3.0).max(self.base.as_secs_f64());
        let drawn = self
            .rng
            .uniform(self.base.as_secs_f64(), hi)
            .min(self.cap.as_secs_f64());
        let jittered = Duration::from_secs_f64(drawn.max(0.0));
        self.prev = jittered;
        match floor {
            Some(floor) => jittered.max(floor),
            None => jittered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(seed: u64, n: usize) -> Vec<Duration> {
        let mut b = Backoff::new(seed, DEFAULT_BASE, DEFAULT_CAP);
        (0..n).map(|_| b.next(None)).collect()
    }

    #[test]
    fn seeded_schedule_is_reproducible() {
        assert_eq!(schedule(42, 8), schedule(42, 8));
        assert_ne!(schedule(42, 8), schedule(43, 8));
    }

    #[test]
    fn delays_stay_within_base_and_cap() {
        for seed in 0..20 {
            for d in schedule(seed, 16) {
                assert!(d >= DEFAULT_BASE, "below base: {d:?}");
                assert!(d <= DEFAULT_CAP, "above cap: {d:?}");
            }
        }
    }

    #[test]
    fn schedule_grows_toward_the_cap() {
        // Averaged over seeds, late sleeps must be much longer than the
        // first ones — the "exponential" in exponential backoff.
        let (mut first, mut late) = (0.0, 0.0);
        for seed in 0..50 {
            let s = schedule(seed, 10);
            first += s[0].as_secs_f64();
            late += s[9].as_secs_f64();
        }
        assert!(
            late > first * 5.0,
            "no growth: first {first:.3}s late {late:.3}s"
        );
    }

    #[test]
    fn retry_after_is_a_floor_not_a_cap() {
        let mut b = Backoff::new(1, DEFAULT_BASE, DEFAULT_CAP);
        // A floor above the cap wins outright…
        let d = b.next(Some(Duration::from_secs(30)));
        assert_eq!(d, Duration::from_secs(30));
        // …without inflating the subsequent jitter state past the cap.
        for _ in 0..8 {
            assert!(b.next(None) <= DEFAULT_CAP);
        }
        // A floor below the current draw leaves the draw alone.
        let mut lo = Backoff::new(2, DEFAULT_BASE, DEFAULT_CAP);
        let tiny = Duration::from_nanos(1);
        assert!(lo.next(Some(tiny)) >= DEFAULT_BASE);
    }

    #[test]
    fn degenerate_base_and_cap_are_tolerated() {
        let mut z = Backoff::new(3, Duration::ZERO, Duration::ZERO);
        assert_eq!(z.next(None), Duration::ZERO);
        // cap below base is raised to base rather than inverting the range.
        let mut inv = Backoff::new(4, Duration::from_millis(10), Duration::from_millis(1));
        let d = inv.next(None);
        assert!(d <= Duration::from_millis(10));
    }
}
