//! `symbist-coord` — fault-tolerant distributed campaign sharding.
//!
//! The coordinator splits a defect universe into contiguous catalog-index
//! ranges and drives one shard job per range across a fleet of ordinary
//! `serve` workers, speaking nothing but the public `/v1` API through the
//! existing [`Client`]. Robustness is the headline:
//!
//! * **Lease-based shard assignment with heartbeat liveness.** Each shard
//!   job holds a lease renewed by *progress watermarks*: the coordinator
//!   polls `GET /v1/jobs/{id}` and extends the lease whenever
//!   `progress.done` advances. A worker that stops making progress — dead
//!   process, stuck solve, network partition — lets its lease expire.
//! * **Automatic re-dispatch.** An expired lease (or a failed job — e.g.
//!   a worker killed mid-shard) triggers a best-effort cancel and a
//!   re-dispatch of the shard, rotated to the next worker. Records
//!   already streamed are kept in the shard's coordinator-side JSONL
//!   checkpoint, and the re-dispatched job covers only what is still
//!   missing — recovery resumes, it never restarts from zero.
//! * **Backoff with decorrelated jitter.** Transient submit/poll failures
//!   (connection refused, `429`, `503 queue_full`/`draining`) retry on
//!   the seeded [`Backoff`] schedule, honoring `Retry-After` as a floor.
//! * **Deterministic merge.** Records are keyed by catalog index; the
//!   merged result is the position-sorted union of the shard checkpoints,
//!   and the L-W coverage ± CI is recomputed through the *same*
//!   [`CampaignResult`] estimator path the 1-process oracle uses — so a
//!   3-shard chaos run is bit-identical to the uninterrupted oracle (see
//!   `tests/coord_chaos.rs`, the CI chaos gate).
//!
//! The merged artifact (`merged.jsonl`) uses
//! [`merged_line`](symbist_defects::checkpoint::merged_line) — the
//! checkpoint projection without the run-dependent `wall_ns` field — so
//! "bit-identical" is a byte comparison, not a field-by-field argument.
//!
//! Recovery is observable on `/v1/metrics` via the `symbist_coord_*`
//! Prometheus families: dispatches, re-dispatches, lease expiries,
//! transient-error retries, and merge latency.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use symbist_defects::checkpoint::{checkpoint_line, merged_line, parse_checkpoint_line};
use symbist_defects::{CampaignResult, Coverage, DefectRecord};

use crate::backoff::{Backoff, DEFAULT_BASE, DEFAULT_CAP};
use crate::client::{Client, ClientError, ServiceError};
use crate::job::JobId;
use crate::json::Json;
use crate::spec::JobSpec;

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordConfig {
    /// Worker addresses (`host:port`), each an ordinary `serve` instance.
    pub workers: Vec<String>,
    /// Number of contiguous index-range shards to split the universe into.
    pub shards: usize,
    /// Base job spec cloned per shard (the coordinator owns `index_lo`/
    /// `index_hi` and `tag`; `block` must be `None` — shard ranges address
    /// the full universe). Set `spec.dut` to shard a DUT the workers
    /// already have registered; leave it `None` for the baked-in ADC.
    pub spec: JobSpec,
    /// A DUT spec as JSON text to `POST /v1/duts` to **every** worker
    /// before sharding. Content addressing guarantees all workers derive
    /// the same id from the same text; the coordinator verifies they
    /// agree, then shards with `spec.dut` set to that id. Mutually
    /// exclusive with a pre-set `spec.dut`.
    pub dut_spec: Option<String>,
    /// Lease duration: a shard whose progress watermark does not advance
    /// for this long is declared dead and re-dispatched.
    pub lease_timeout: Duration,
    /// Status poll cadence while a shard runs.
    pub poll_interval: Duration,
    /// Dispatch attempts per shard before the run fails.
    pub max_attempts: u32,
    /// Backoff floor for transient-error retries.
    pub backoff_base: Duration,
    /// Backoff clamp (a `Retry-After` floor may still exceed it).
    pub backoff_cap: Duration,
    /// Transient-failure retries per request (submit/poll/fetch).
    pub request_retries: u32,
    /// Seed for the retry-jitter RNG (per-shard streams are derived).
    pub seed: u64,
    /// Directory for per-shard checkpoints and the merged artifact.
    pub data_dir: PathBuf,
    /// Per-request client read timeout (also bounds a post-expiry fetch
    /// from a wedged worker).
    pub client_timeout: Duration,
}

impl CoordConfig {
    /// A config with production-shaped defaults for the given fleet.
    pub fn new(workers: Vec<String>, shards: usize, data_dir: PathBuf) -> CoordConfig {
        CoordConfig {
            workers,
            shards,
            spec: JobSpec::default(),
            dut_spec: None,
            lease_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(50),
            max_attempts: 5,
            backoff_base: DEFAULT_BASE,
            backoff_cap: DEFAULT_CAP,
            request_retries: 8,
            seed: 0xC00D,
            data_dir,
            client_timeout: Duration::from_secs(30),
        }
    }
}

/// Why a coordinator run failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoordError {
    /// No worker addresses were configured.
    NoWorkers,
    /// The base spec cannot be sharded (e.g. a `block` restriction, or a
    /// pre-set index range).
    BadSpec(String),
    /// Workers derived different content ids from the same uploaded DUT
    /// spec — they are running incompatible registry builds, so their
    /// shard records could not describe the same catalog.
    DutMismatch {
        /// Content id derived by the first worker.
        expected: String,
        /// The disagreeing worker's address.
        worker: String,
        /// What that worker derived.
        got: String,
    },
    /// Workers disagree on the DUT's static-analysis orbit certificate —
    /// same content id, different analyzer verdicts — so any class-level
    /// extrapolation over merged shards would mix incompatible partitions.
    AnalysisMismatch {
        /// Certificate reported by the first worker.
        expected: String,
        /// The disagreeing worker's address.
        worker: String,
        /// What that worker reported.
        got: String,
    },
    /// Workers disagree on the universe size — they are not serving the
    /// same DUT build, so a merge would be meaningless.
    UniverseMismatch {
        /// Universe size reported by the first worker.
        expected: u64,
        /// The disagreeing worker's address.
        worker: String,
        /// What that worker reported.
        got: u64,
    },
    /// A worker could not be probed at startup.
    Probe {
        /// The unreachable worker's address.
        worker: String,
        /// The underlying client failure.
        reason: String,
    },
    /// A shard exhausted its dispatch attempts.
    ShardFailed {
        /// Shard number.
        shard: usize,
        /// Attempts spent.
        attempts: u32,
        /// Last per-attempt failure.
        last_error: String,
    },
    /// The merged record set does not cover the expected selection — a
    /// completeness invariant violation, never silently truncated output.
    Incomplete {
        /// Indices expected but absent from the merge.
        missing: usize,
    },
    /// Coordinator-side I/O (shard checkpoints, merged artifact).
    Io(std::io::Error),
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::NoWorkers => write!(f, "no workers configured"),
            CoordError::BadSpec(m) => write!(f, "spec cannot be sharded: {m}"),
            CoordError::DutMismatch {
                expected,
                worker,
                got,
            } => write!(
                f,
                "DUT id mismatch: worker {worker} derived {got}, expected {expected}"
            ),
            CoordError::AnalysisMismatch {
                expected,
                worker,
                got,
            } => write!(
                f,
                "analysis certificate mismatch: worker {worker} reported {got}, \
                 expected {expected}"
            ),
            CoordError::UniverseMismatch {
                expected,
                worker,
                got,
            } => write!(
                f,
                "universe mismatch: worker {worker} reports {got} defects, expected {expected}"
            ),
            CoordError::Probe { worker, reason } => {
                write!(f, "cannot probe worker {worker}: {reason}")
            }
            CoordError::ShardFailed {
                shard,
                attempts,
                last_error,
            } => write!(
                f,
                "shard {shard} failed after {attempts} attempts: {last_error}"
            ),
            CoordError::Incomplete { missing } => {
                write!(f, "merged result is missing {missing} records")
            }
            CoordError::Io(e) => write!(f, "coordinator I/O: {e}"),
        }
    }
}

impl std::error::Error for CoordError {}

impl From<std::io::Error> for CoordError {
    fn from(e: std::io::Error) -> Self {
        CoordError::Io(e)
    }
}

/// Per-shard summary in a [`CoordOutcome`].
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Shard number.
    pub shard: usize,
    /// Catalog-index range `[lo, hi)` this shard covered.
    pub range: (usize, usize),
    /// Dispatch attempts spent (1 = no recovery needed).
    pub attempts: u32,
    /// Records this shard contributed to the merge.
    pub records: usize,
    /// Leases that expired on this shard.
    pub lease_expiries: u32,
    /// Records recovered from the shard checkpoint across re-dispatches
    /// (work that did *not* have to be re-simulated).
    pub recovered: usize,
}

/// The merged result of a coordinator run.
#[derive(Debug, Clone)]
pub struct CoordOutcome {
    /// The recombined campaign result: position-sorted union of every
    /// shard's records, with coverage computed by the same estimator the
    /// 1-process oracle uses.
    pub result: CampaignResult,
    /// Coverage lower bound (unresolved counted as escapes).
    pub coverage_lower: Coverage,
    /// Coverage upper bound (unresolved counted as detected).
    pub coverage_upper: Coverage,
    /// Per-shard execution summaries.
    pub shards: Vec<ShardOutcome>,
    /// Total shard re-dispatches across the run.
    pub redispatches: u32,
    /// Path of the merged `merged_line` artifact.
    pub merged_path: PathBuf,
}

/// One shard's description: its number and index range.
#[derive(Debug, Clone, Copy)]
struct Shard {
    number: usize,
    lo: usize,
    hi: usize,
}

/// Whether a client failure is worth retrying: the request provably never
/// ran (transport error), or the worker refused it transiently (`429`,
/// `503 queue_full`/`draining`).
fn is_transient(error: &ClientError) -> bool {
    match error {
        ClientError::Io(_) => true,
        ClientError::Service(
            ServiceError::Saturated { .. }
            | ServiceError::QueueFull { .. }
            | ServiceError::Draining(_),
        ) => true,
        ClientError::Service(ServiceError::Other { status, .. }) => *status == 503,
        _ => false,
    }
}

fn retry_floor(error: &ClientError) -> Option<Duration> {
    match error {
        ClientError::Service(e) => e.retry_after().map(Duration::from_secs),
        _ => None,
    }
}

/// Runs `op` with transient-failure retries on the given backoff.
fn with_retries<T>(
    retries: u32,
    backoff: &mut Backoff,
    mut op: impl FnMut() -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    let mut attempt = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) && attempt < retries => {
                attempt += 1;
                symbist_obs::counter!(
                    "symbist_coord_retries_total",
                    "Transient worker errors retried by the coordinator"
                )
                .inc();
                std::thread::sleep(backoff.next(retry_floor(&e)));
            }
            Err(e) => return Err(e),
        }
    }
}

/// How one dispatch attempt ended.
enum AttemptEnd {
    /// The job reached `completed`.
    Completed,
    /// The job reached `failed`/`cancelled`, or its lease expired.
    Dead(String),
}

/// Runs the full coordinator flow: probe → shard → dispatch/recover →
/// merge. Blocking; returns when every shard merged or a shard exhausted
/// its attempts.
pub fn run_coordinator(config: &CoordConfig) -> Result<CoordOutcome, CoordError> {
    if config.workers.is_empty() {
        return Err(CoordError::NoWorkers);
    }
    if config.spec.block.is_some() {
        return Err(CoordError::BadSpec(
            "block-restricted specs are not shardable (ranges address the full universe)".into(),
        ));
    }
    if config.spec.index_lo.is_some() || config.spec.index_hi.is_some() {
        return Err(CoordError::BadSpec(
            "the coordinator owns index_lo/index_hi".into(),
        ));
    }
    if config.shards == 0 {
        return Err(CoordError::BadSpec("shards must be at least 1".into()));
    }
    if config.dut_spec.is_some() && config.spec.dut.is_some() {
        return Err(CoordError::BadSpec(
            "dut_spec and spec.dut are mutually exclusive (the upload decides the id)".into(),
        ));
    }
    std::fs::create_dir_all(&config.data_dir)?;

    let clients: Vec<Client> = config
        .workers
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            Client::builder()
                .base_url(addr.clone())
                .timeout(config.client_timeout)
                .backoff(config.backoff_base, config.backoff_cap)
                .backoff_seed(config.seed ^ (i as u64))
                .build()
        })
        .collect();

    // DUT distribution: upload the spec text to every worker. The id is
    // a pure function of the content (FNV over the canonical netlist +
    // invariances), so agreement is an integrity check on the fleet, not
    // a coordination protocol — a worker already holding the content
    // answers from its registry without consuming a quota slot.
    let mut spec = config.spec.clone();
    if let Some(text) = &config.dut_spec {
        let mut expected: Option<String> = None;
        for (client, addr) in clients.iter().zip(&config.workers) {
            let mut backoff = Backoff::new(config.seed, config.backoff_base, config.backoff_cap);
            let doc = with_retries(config.request_retries, &mut backoff, || {
                client.upload_dut_json(text)
            })
            .map_err(|e| CoordError::Probe {
                worker: addr.clone(),
                reason: format!("DUT upload: {e}"),
            })?;
            let id = doc
                .get("id")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            match &expected {
                None => expected = Some(id),
                Some(first) if *first != id => {
                    return Err(CoordError::DutMismatch {
                        expected: first.clone(),
                        worker: addr.clone(),
                        got: id,
                    })
                }
                Some(_) => {}
            }
        }
        spec.dut = expected;
    }
    let generic_dut = spec
        .dut
        .as_deref()
        .filter(|d| *d != symbist_dut::BUILTIN_ADC_DUT)
        .map(str::to_string);

    // Probe: every worker must serve the same universe, or a merge of
    // their shards would silently mix incompatible catalogs. Registered
    // DUTs expose their universe size on `GET /v1/duts/{id}`; the
    // baked-in ADC on `GET /v1/universe`.
    let mut universe = 0u64;
    for (client, addr) in clients.iter().zip(&config.workers) {
        let mut backoff = Backoff::new(config.seed, config.backoff_base, config.backoff_cap);
        let probe = || match &generic_dut {
            Some(id) => client
                .get_dut(id)?
                .get("defects")
                .and_then(Json::as_u64)
                .ok_or_else(|| ClientError::Protocol("DUT document missing defects".into())),
            None => client.universe(),
        };
        let n = with_retries(config.request_retries, &mut backoff, probe).map_err(|e| {
            CoordError::Probe {
                worker: addr.clone(),
                reason: e.to_string(),
            }
        })?;
        if universe == 0 {
            universe = n;
        } else if n != universe {
            return Err(CoordError::UniverseMismatch {
                expected: universe,
                worker: addr.clone(),
                got: n,
            });
        }
    }
    // Registered DUTs also carry a static-analysis certificate (a
    // canonical hash of the symmetry-orbit partition, deterministic per
    // content). Same content id + same analyzer ⇒ same certificate, so
    // agreement here extends the integrity check from "same netlist" to
    // "same defect-class partition" — the thing a class-level
    // extrapolation over the merged records would silently depend on.
    if let Some(id) = &generic_dut {
        let mut expected_cert: Option<String> = None;
        for (client, addr) in clients.iter().zip(&config.workers) {
            let mut backoff = Backoff::new(config.seed, config.backoff_base, config.backoff_cap);
            let cert = with_retries(config.request_retries, &mut backoff, || {
                client
                    .dut_analysis(id)?
                    .get("certificate")
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| {
                        ClientError::Protocol("analysis document missing certificate".into())
                    })
            })
            .map_err(|e| CoordError::Probe {
                worker: addr.clone(),
                reason: format!("analysis probe: {e}"),
            })?;
            match &expected_cert {
                None => expected_cert = Some(cert),
                Some(first) if *first != cert => {
                    return Err(CoordError::AnalysisMismatch {
                        expected: first.clone(),
                        worker: addr.clone(),
                        got: cert,
                    })
                }
                Some(_) => {}
            }
        }
    }

    let n = universe as usize;
    if let Some(sample) = spec.sample_size {
        if sample > n {
            return Err(CoordError::BadSpec(format!(
                "sample_size {sample} exceeds the {n}-defect universe"
            )));
        }
    }

    // Contiguous balanced ranges; width-0 shards (more shards than
    // defects) are dropped.
    let shards: Vec<Shard> = (0..config.shards)
        .map(|s| Shard {
            number: s,
            lo: s * n / config.shards,
            hi: (s + 1) * n / config.shards,
        })
        .filter(|s| s.lo < s.hi)
        .collect();

    let redispatches = AtomicU32::new(0);
    let start = Instant::now();
    let shard_results: Vec<Result<ShardYield, CoordError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                let clients = &clients;
                let redispatches = &redispatches;
                let spec = &spec;
                scope.spawn(move || run_shard(config, spec, clients, *shard, redispatches))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard driver panicked"))
            .collect()
    });

    let mut outcomes = Vec::with_capacity(shards.len());
    let mut merged: BTreeMap<usize, DefectRecord> = BTreeMap::new();
    for result in shard_results {
        let (outcome, records) = result?;
        outcomes.push(outcome);
        merged.extend(records);
    }

    let merge_start = Instant::now();
    // Completeness: exhaustive runs must cover every index of every
    // shard range. (Sampled selections are validated per shard: a shard
    // only reports success once its job completed and streamed fully.)
    if spec.sample_size.is_none() {
        let expected: usize = shards.iter().map(|s| s.hi - s.lo).sum();
        if merged.len() != expected {
            return Err(CoordError::Incomplete {
                missing: expected - merged.len(),
            });
        }
    }
    // BTreeMap iteration *is* the position sort: catalog-index order, the
    // same order the 1-process campaign assembles its records in.
    let records: Vec<DefectRecord> = merged.into_values().collect();
    let universe_likelihood: f64 = records.iter().map(|r| r.likelihood).sum();
    let result = CampaignResult {
        records,
        universe_size: n,
        universe_likelihood,
        sampled: spec.sample_size.is_some(),
        resumed: outcomes.iter().map(|o| o.recovered).sum(),
        total_wall: start.elapsed(),
    };
    // Same estimator entry points, same record order, same f64 summation
    // order as the oracle ⇒ bitwise-identical coverage ± CI.
    let coverage_lower = result.coverage();
    let coverage_upper = result.coverage_upper();

    let merged_path = config.data_dir.join("merged.jsonl");
    let mut artifact = String::with_capacity(result.records.len() * 96);
    for record in &result.records {
        artifact.push_str(&merged_line(record));
        artifact.push('\n');
    }
    std::fs::write(&merged_path, artifact)?;
    symbist_obs::histogram!(
        "symbist_coord_merge_seconds",
        "Latency of the deterministic position-sorted merge + recombination",
        symbist_obs::SECONDS_EDGES
    )
    .record(merge_start.elapsed().as_secs_f64());

    Ok(CoordOutcome {
        result,
        coverage_lower,
        coverage_upper,
        shards: outcomes,
        redispatches: redispatches.load(Ordering::SeqCst),
        merged_path,
    })
}

/// What one finished shard hands back to the merge: its outcome summary
/// plus its records keyed by catalog index.
type ShardYield = (ShardOutcome, BTreeMap<usize, DefectRecord>);

/// Drives one shard to completion: dispatch → lease loop → fetch →
/// (re-dispatch on death) until its records are all in.
fn run_shard(
    config: &CoordConfig,
    base_spec: &JobSpec,
    clients: &[Client],
    shard: Shard,
    redispatches: &AtomicU32,
) -> Result<ShardYield, CoordError> {
    let tag = format!("shard-{}", shard.number);
    let ckpt_path = config
        .data_dir
        .join(format!("shard-{:03}.jsonl", shard.number));
    // Coordinator-side shard checkpoint: records survive worker death
    // *and* coordinator death. Full checkpoint lines (with wall) so the
    // file is a valid campaign checkpoint in its own right.
    let mut received: BTreeMap<usize, DefectRecord> = BTreeMap::new();
    if let Ok(content) = std::fs::read_to_string(&ckpt_path) {
        for line in content.lines() {
            if let Some(rec) = parse_checkpoint_line(line) {
                if rec.defect_index >= shard.lo && rec.defect_index < shard.hi {
                    received.insert(rec.defect_index, rec);
                }
            }
        }
    }
    let mut ckpt = std::fs::File::options()
        .append(true)
        .create(true)
        .open(&ckpt_path)?;
    let recovered_at_start = received.len();

    let mut backoff = Backoff::new(
        config.seed ^ (0x5AD0 + shard.number as u64),
        config.backoff_base,
        config.backoff_cap,
    );
    let mut lease_expiries = 0u32;
    let mut last_error = String::from("never dispatched");

    for attempt in 0..config.max_attempts {
        // Exhaustive shards resume from the contiguous done-prefix; a
        // sampled shard resubmits its full range (the worker re-draws the
        // identical selection from the seed) and the coordinator dedups.
        let resume_lo = if base_spec.sample_size.is_none() {
            let mut lo = shard.lo;
            while lo < shard.hi && received.contains_key(&lo) {
                lo += 1;
            }
            if lo == shard.hi {
                break; // checkpoint already covers the shard
            }
            lo
        } else {
            shard.lo
        };

        let client = &clients[(shard.number + attempt as usize) % clients.len()];
        let mut spec = base_spec.clone();
        spec.index_lo = Some(resume_lo);
        spec.index_hi = Some(shard.hi);
        spec.tag = Some(tag.clone());

        if attempt > 0 {
            redispatches.fetch_add(1, Ordering::SeqCst);
            symbist_obs::counter!(
                "symbist_coord_redispatches_total",
                "Shards re-dispatched after a lease expiry or worker death"
            )
            .inc();
        }
        let id = match with_retries(config.request_retries, &mut backoff, || {
            client.submit(&spec)
        }) {
            Ok(id) => id,
            Err(e) => {
                last_error = format!("submit: {e}");
                continue;
            }
        };
        symbist_obs::counter!(
            "symbist_coord_dispatches_total",
            "Shard jobs submitted to workers (including re-dispatches)"
        )
        .inc();

        let end = lease_loop(config, client, id, &mut lease_expiries);

        // Post-mortem fetch: pull whatever the worker durably produced,
        // even from a failed attempt — that is what makes re-dispatch a
        // *resume*. The client's read timeout bounds a wedged worker.
        let fetch_error = fetch_records(client, id, shard, &mut received, &mut ckpt)
            .err()
            .map(|e| format!("fetch: {e}"));

        match end {
            AttemptEnd::Completed => {
                let done = base_spec.sample_size.is_some()
                    || (shard.lo..shard.hi).all(|i| received.contains_key(&i));
                if done {
                    let outcome = ShardOutcome {
                        shard: shard.number,
                        range: (shard.lo, shard.hi),
                        attempts: attempt + 1,
                        records: received.len(),
                        lease_expiries,
                        recovered: recovered_at_start,
                    };
                    record_shard_metrics("completed");
                    return Ok((outcome, received));
                }
                last_error =
                    fetch_error.unwrap_or_else(|| "job completed but records are missing".into());
            }
            AttemptEnd::Dead(reason) => {
                last_error = match fetch_error {
                    Some(fetch) => format!("{reason}; {fetch}"),
                    None => reason,
                };
            }
        }
    }

    // Exhaustive shards can also finish purely from checkpoint recovery
    // (the `break` above).
    if base_spec.sample_size.is_none() && (shard.lo..shard.hi).all(|i| received.contains_key(&i)) {
        let outcome = ShardOutcome {
            shard: shard.number,
            range: (shard.lo, shard.hi),
            attempts: 0,
            records: received.len(),
            lease_expiries,
            recovered: recovered_at_start,
        };
        record_shard_metrics("completed");
        return Ok((outcome, received));
    }
    record_shard_metrics("failed");
    Err(CoordError::ShardFailed {
        shard: shard.number,
        attempts: config.max_attempts,
        last_error,
    })
}

fn record_shard_metrics(state: &str) {
    const HELP: &str = "Shard outcomes across coordinator runs";
    let counter = match state {
        "completed" => {
            symbist_obs::counter!(r#"symbist_coord_shards_total{state="completed"}"#, HELP)
        }
        _ => symbist_obs::counter!(r#"symbist_coord_shards_total{state="failed"}"#, HELP),
    };
    counter.inc();
}

/// Polls the job until terminal or lease expiry. The lease renews on
/// progress-watermark advance, not on mere reachability — a worker that
/// answers polls but simulates nothing is as dead as one that vanished.
fn lease_loop(
    config: &CoordConfig,
    client: &Client,
    id: JobId,
    lease_expiries: &mut u32,
) -> AttemptEnd {
    let mut watermark = 0u64;
    let mut lease_deadline = Instant::now() + config.lease_timeout;
    loop {
        std::thread::sleep(config.poll_interval);
        match client.status(id) {
            Ok(doc) => {
                let state = doc
                    .get("state")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                let done = doc
                    .get("progress")
                    .and_then(|p| p.get("done"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                if done > watermark {
                    watermark = done;
                    lease_deadline = Instant::now() + config.lease_timeout;
                }
                match state.as_str() {
                    "completed" => return AttemptEnd::Completed,
                    "failed" | "cancelled" => {
                        let error = doc
                            .get("error")
                            .and_then(Json::as_str)
                            .unwrap_or("no error detail")
                            .to_string();
                        return AttemptEnd::Dead(format!("job {state}: {error}"));
                    }
                    _ => {}
                }
            }
            Err(e) => {
                // Transport errors do not renew the lease; a partitioned
                // worker times out like a stalled one. Count the retry.
                symbist_obs::counter!(
                    "symbist_coord_retries_total",
                    "Transient worker errors retried by the coordinator"
                )
                .inc();
                if !is_transient(&e) {
                    return AttemptEnd::Dead(format!("poll: {e}"));
                }
            }
        }
        if Instant::now() > lease_deadline {
            *lease_expiries += 1;
            symbist_obs::counter!(
                "symbist_coord_lease_expiries_total",
                "Shard leases that expired without progress"
            )
            .inc();
            // Best-effort cancel so a merely-slow worker stops burning
            // cycles on a shard someone else now owns.
            let _ = client.cancel(id);
            return AttemptEnd::Dead(format!(
                "lease expired after {:?} without progress (watermark {watermark})",
                config.lease_timeout
            ));
        }
    }
}

/// Streams a job's records, appending previously-unseen in-range ones to
/// the shard checkpoint. Duplicates (a re-dispatched job re-simulating
/// records the checkpoint already holds) are dropped — first record wins,
/// which is also what checkpoint-resume semantics produce.
fn fetch_records(
    client: &Client,
    id: JobId,
    shard: Shard,
    received: &mut BTreeMap<usize, DefectRecord>,
    ckpt: &mut std::fs::File,
) -> Result<(), ClientError> {
    let stream = client.stream_results(id)?;
    for item in stream {
        let record = item?;
        if record.defect_index < shard.lo || record.defect_index >= shard.hi {
            continue;
        }
        if received.contains_key(&record.defect_index) {
            continue;
        }
        ckpt.write_all(checkpoint_line(&record).as_bytes())
            .and_then(|()| ckpt.write_all(b"\n"))
            .and_then(|()| ckpt.flush())
            .map_err(ClientError::Io)?;
        received.insert(record.defect_index, record);
    }
    Ok(())
}
