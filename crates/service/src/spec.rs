//! The campaign job spec: what `POST /jobs` accepts.
//!
//! A spec is a flat JSON object selecting a defect population and the
//! campaign knobs the paper's evaluation flow exposes:
//!
//! ```json
//! {"block": "SC Array", "sample_size": 40, "seed": 7,
//!  "threads": 2, "newton_budget": 200000, "deadline_ms": 5000,
//!  "schedule": "sequential", "tag": "nightly"}
//! ```
//!
//! Every field is optional except that the sampled/exhaustive choice must
//! be valid against the backend's universe (checked at submit time so a
//! bad spec is a `400`, not a failed job).

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use symbist_defects::CampaignOptions;

use crate::json::Json;

/// A validated campaign job specification.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Restrict the campaign to one block (a Table-I row label, e.g.
    /// `"SC Array"`). `None` runs the whole universe.
    pub block: Option<String>,
    /// LWRS sample size; `None` simulates the selected universe
    /// exhaustively.
    pub sample_size: Option<usize>,
    /// RNG seed for the LWRS draw.
    pub seed: u64,
    /// Worker threads *within* this job's campaign. Defaults to 1: the
    /// service's worker pool is the primary parallelism axis, so a single
    /// job does not hog every core.
    pub threads: usize,
    /// Per-defect Newton iteration budget (deterministic timeout).
    pub newton_budget: Option<u64>,
    /// Per-defect wall-clock deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Comparator schedule label (`"sequential"` / `"parallel"`); backend
    /// specific, validated at submit time.
    pub schedule: Option<String>,
    /// Inclusive lower catalog index of the shard this job covers (the
    /// coordinator's range-sharding knob). `None` = 0.
    pub index_lo: Option<usize>,
    /// Exclusive upper catalog index of the shard. `None` = universe size.
    pub index_hi: Option<usize>,
    /// Free-form label echoed back in status responses.
    pub tag: Option<String>,
    /// Which DUT to campaign over: a registered DUT's content id or name,
    /// or `"sar-adc"` for the baked-in ADC. `None` selects the baked-in
    /// DUT (backward compatible with every pre-registry spec).
    pub dut: Option<String>,
}

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            block: None,
            sample_size: None,
            seed: 0x5EED,
            threads: 1,
            newton_budget: None,
            deadline_ms: None,
            schedule: None,
            index_lo: None,
            index_hi: None,
            tag: None,
            dut: None,
        }
    }
}

/// Why a spec was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

impl JobSpec {
    /// Parses a spec from a JSON document, rejecting unknown fields (a
    /// typo'd knob silently ignored would run the wrong campaign).
    pub fn from_json(json: &Json) -> Result<JobSpec, SpecError> {
        let Json::Obj(map) = json else {
            return Err(SpecError("job spec must be a JSON object".into()));
        };
        const KNOWN: [&str; 11] = [
            "block",
            "sample_size",
            "seed",
            "threads",
            "newton_budget",
            "deadline_ms",
            "schedule",
            "index_lo",
            "index_hi",
            "tag",
            "dut",
        ];
        let unknown = Json::unknown_keys(map, &KNOWN);
        if !unknown.is_empty() {
            // Every offending key in one 400, so a client fixing typos
            // fixes them all in one round trip.
            return Err(SpecError(format!(
                "unknown spec field(s): {}",
                unknown.join(", ")
            )));
        }
        let defaults = JobSpec::default();
        let threads = match opt_u64(json, "threads")? {
            Some(0) => return Err(SpecError("\"threads\" must be at least 1".into())),
            Some(n) => n as usize,
            None => defaults.threads,
        };
        let sample_size = opt_u64(json, "sample_size")?.map(|n| n as usize);
        if sample_size == Some(0) {
            return Err(SpecError("\"sample_size\" must be nonzero".into()));
        }
        let index_lo = opt_u64(json, "index_lo")?.map(|n| n as usize);
        let index_hi = opt_u64(json, "index_hi")?.map(|n| n as usize);
        if let (Some(lo), Some(hi)) = (index_lo, index_hi) {
            if lo >= hi {
                return Err(SpecError(format!(
                    "\"index_lo\" ({lo}) must be below \"index_hi\" ({hi})"
                )));
            }
        }
        Ok(JobSpec {
            block: opt_string(json, "block")?,
            sample_size,
            seed: opt_u64(json, "seed")?.unwrap_or(defaults.seed),
            threads,
            newton_budget: opt_u64(json, "newton_budget")?,
            deadline_ms: opt_u64(json, "deadline_ms")?,
            schedule: opt_string(json, "schedule")?,
            index_lo,
            index_hi,
            tag: opt_string(json, "tag")?,
            dut: opt_string(json, "dut")?,
        })
    }

    /// Parses a spec from raw JSON text.
    pub fn from_json_text(text: &str) -> Result<JobSpec, SpecError> {
        let json = Json::parse(text).map_err(|e| SpecError(e.to_string()))?;
        Self::from_json(&json)
    }

    /// Serializes the spec back to JSON (round-trips through
    /// [`from_json`](Self::from_json); used by job persistence and the
    /// client).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&'static str, Json)> = vec![
            ("seed", Json::num(self.seed as f64)),
            ("threads", Json::num(self.threads as f64)),
        ];
        if let Some(block) = &self.block {
            pairs.push(("block", Json::str(block.clone())));
        }
        if let Some(n) = self.sample_size {
            pairs.push(("sample_size", Json::num(n as f64)));
        }
        if let Some(n) = self.newton_budget {
            pairs.push(("newton_budget", Json::num(n as f64)));
        }
        if let Some(n) = self.deadline_ms {
            pairs.push(("deadline_ms", Json::num(n as f64)));
        }
        if let Some(s) = &self.schedule {
            pairs.push(("schedule", Json::str(s.clone())));
        }
        if let Some(n) = self.index_lo {
            pairs.push(("index_lo", Json::num(n as f64)));
        }
        if let Some(n) = self.index_hi {
            pairs.push(("index_hi", Json::num(n as f64)));
        }
        if let Some(t) = &self.tag {
            pairs.push(("tag", Json::str(t.clone())));
        }
        if let Some(d) = &self.dut {
            pairs.push(("dut", Json::str(d.clone())));
        }
        Json::obj(pairs)
    }

    /// Builds the [`CampaignOptions`] this spec describes, wiring in the
    /// job's checkpoint path so cancellation/drain loses no work.
    /// `universe_len` resolves an open-ended shard range (`index_lo`
    /// without `index_hi`) against the universe the job runs over.
    pub fn campaign_options(
        &self,
        checkpoint: Option<PathBuf>,
        universe_len: usize,
    ) -> CampaignOptions {
        let index_range = match (self.index_lo, self.index_hi) {
            (None, None) => None,
            (lo, hi) => Some((lo.unwrap_or(0), hi.unwrap_or(universe_len))),
        };
        CampaignOptions {
            sample_size: self.sample_size,
            seed: self.seed,
            threads: self.threads,
            defect_deadline: self.deadline_ms.map(Duration::from_millis),
            newton_budget: self.newton_budget,
            index_range,
            checkpoint,
        }
    }
}

fn opt_string(json: &Json, key: &str) -> Result<Option<String>, SpecError> {
    match json.get(key) {
        None => Ok(None),
        Some(v) if v.is_null() => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(SpecError(format!("\"{key}\" must be a string"))),
    }
}

fn opt_u64(json: &Json, key: &str) -> Result<Option<u64>, SpecError> {
    match json.get(key) {
        None => Ok(None),
        Some(v) if v.is_null() => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| SpecError(format!("\"{key}\" must be a non-negative integer"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_round_trips() {
        let spec = JobSpec::default();
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn full_spec_round_trips() {
        let spec = JobSpec {
            block: Some("SC Array".into()),
            sample_size: Some(40),
            seed: 7,
            threads: 2,
            newton_budget: Some(200_000),
            deadline_ms: Some(5_000),
            schedule: Some("parallel".into()),
            index_lo: Some(10),
            index_hi: Some(90),
            tag: Some("nightly".into()),
            dut: Some("cap-array-b8-r1.8".into()),
        };
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let err = JobSpec::from_json_text(r#"{"smaple_size": 40}"#).unwrap_err();
        assert!(err.0.contains("smaple_size"), "{err}");
    }

    #[test]
    fn all_unknown_fields_are_listed_at_once() {
        let err =
            JobSpec::from_json_text(r#"{"smaple_size": 40, "sede": 7, "threads": 2}"#).unwrap_err();
        assert!(err.0.contains("smaple_size"), "{err}");
        assert!(err.0.contains("sede"), "{err}");
        assert!(!err.0.contains("threads"), "{err}");
    }

    #[test]
    fn bad_types_are_rejected() {
        for bad in [
            r#"{"sample_size": "forty"}"#,
            r#"{"block": 3}"#,
            r#"{"threads": 0}"#,
            r#"{"sample_size": 0}"#,
            r#"{"seed": -1}"#,
            r#"[1,2]"#,
        ] {
            assert!(JobSpec::from_json_text(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn campaign_options_map_fields() {
        let spec = JobSpec {
            sample_size: Some(12),
            seed: 9,
            threads: 3,
            newton_budget: Some(100),
            deadline_ms: Some(250),
            ..Default::default()
        };
        let opts = spec.campaign_options(Some(PathBuf::from("/tmp/x.jsonl")), 100);
        assert_eq!(opts.sample_size, Some(12));
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.newton_budget, Some(100));
        assert_eq!(opts.defect_deadline, Some(Duration::from_millis(250)));
        assert_eq!(opts.index_range, None);
        assert_eq!(
            opts.checkpoint.as_deref(),
            Some(std::path::Path::new("/tmp/x.jsonl"))
        );
    }

    #[test]
    fn shard_range_round_trips_and_validates() {
        let spec = JobSpec {
            index_lo: Some(10),
            index_hi: Some(20),
            ..Default::default()
        };
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(spec.campaign_options(None, 100).index_range, Some((10, 20)));
        // Open-ended ranges resolve against the universe size.
        let lo_only = JobSpec {
            index_lo: Some(10),
            ..Default::default()
        };
        assert_eq!(
            lo_only.campaign_options(None, 100).index_range,
            Some((10, 100))
        );
        // Inverted ranges are a parse error, not a failed job.
        assert!(JobSpec::from_json_text(r#"{"index_lo": 5, "index_hi": 5}"#).is_err());
    }
}
