//! A minimal JSON value type, parser, and serializer.
//!
//! The implementation lives in [`symbist_dut::json`] — it moved down the
//! dependency graph when the DUT registry grew its own need to parse and
//! persist specs — and is re-exported here verbatim so the service's
//! public API (and every `symbist_service::json::Json` import) is
//! unchanged.

pub use symbist_dut::json::*;
