//! # symbist-service — concurrent BIST-campaign job service
//!
//! A self-contained job service around the [`symbist_defects`] campaign
//! runner: clients submit campaign specs over HTTP, a bounded worker pool
//! runs them with per-job panic isolation, and results stream back as
//! NDJSON while the campaign is still running. Everything is hand-rolled
//! on `std` — JSON, HTTP/1.1, thread pools — matching the repo's
//! zero-dependency policy.
//!
//! ## Architecture
//!
//! ```text
//!           POST /jobs            bounded FIFO           fixed threads
//! client ──► HTTP front-end ────► job Registry ─────────► WorkerPool
//!   ▲          (http.rs)           (job.rs)                (worker.rs)
//!   │                                  │ JobMonitor            │
//!   └── GET /jobs/{id}/results ◄───────┘ per-record       CampaignBackend
//!        NDJSON, follows live          publishing          (backend.rs)
//! ```
//!
//! Backpressure is explicit at both admission points: a full job queue
//! rejects `POST /jobs` with `503`, a saturated handler pool refuses
//! connections with `429`. Graceful shutdown drains running campaigns to
//! their JSONL checkpoints and persists them as `queued`, so a restarted
//! server on the same data directory resumes them and produces records
//! bit-identical to an uninterrupted run (the same resume contract the
//! campaign runner's kill-and-resume tests enforce).
//!
//! ## Quick start
//!
//! ```no_run
//! use std::sync::Arc;
//! use symbist_service::backend::SyntheticBackend;
//! use symbist_service::http::{Server, ServiceConfig};
//! use symbist_service::client::Client;
//! use symbist_service::spec::JobSpec;
//!
//! let server = Server::start(
//!     ServiceConfig::default(),
//!     Arc::new(SyntheticBackend::new(8)),
//! ).unwrap();
//! let client = Client::builder()
//!     .base_url(server.addr().to_string())
//!     .build();
//! let id = client.submit(&JobSpec::default()).unwrap();
//! for record in client.stream_results(id).unwrap() {
//!     println!("{:?}", record.unwrap());
//! }
//! ```
//!
//! The `serve` binary wires this up with the real SAR ADC backend; see
//! `README.md` for a curl session.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod backoff;
pub mod client;
pub mod coord;
pub mod dut_backend;
pub mod http;
pub mod job;
pub mod json;
pub mod spec;
pub mod worker;

pub use backend::{AdcBackend, CampaignBackend, SyntheticBackend};
pub use backoff::Backoff;
pub use client::{Client, ClientBuilder, ClientError, ResultStream, ServiceError};
pub use coord::{CoordConfig, CoordError, CoordOutcome, ShardOutcome};
pub use dut_backend::GenericBackend;
pub use http::{Server, ServiceConfig};
pub use job::{
    Job, JobId, JobProgress, JobReport, JobState, JobStatus, Registry, RegistryStats, SubmitError,
};
pub use json::{Json, JsonError};
pub use spec::{JobSpec, SpecError};
pub use worker::WorkerPool;
