//! The chaos gate: a 3-shard coordinator run with an active fault plan
//! (worker killed mid-shard, torn checkpoint write, transient submit
//! rejection) must produce a merged artifact **byte-identical** to the
//! uninterrupted 1-process oracle, and identical L-W coverage ± CI down
//! to the f64 bit pattern. CI runs this under a hard timeout.
//!
//! The fault plan is process-global, so every test holds [`serial`].
#![allow(clippy::unwrap_used)] // integration tests assert by panicking

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use symbist_defects::checkpoint::merged_line;
use symbist_defects::CampaignResult;
use symbist_obs::FaultPlan;
use symbist_service::backend::{CampaignBackend, Gate, SyntheticBackend};
use symbist_service::coord::{run_coordinator, CoordConfig, CoordError};
use symbist_service::http::{Server, ServiceConfig};
use symbist_service::spec::JobSpec;

/// Serializes the whole binary: fault plans are process-global.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("symbist-coord-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Starts `n` workers on the given backends and returns them with a
/// test-tuned coordinator config pointed at their addresses.
fn fleet(
    backends: Vec<Arc<dyn CampaignBackend>>,
    data_dirs: bool,
    tag: &str,
) -> (Vec<Server>, CoordConfig) {
    let servers: Vec<Server> = backends
        .into_iter()
        .enumerate()
        .map(|(i, backend)| {
            let config = ServiceConfig {
                data_dir: data_dirs.then(|| temp_dir(&format!("{tag}-w{i}"))),
                ..ServiceConfig::default()
            };
            Server::start(config, backend).expect("worker starts")
        })
        .collect();
    let workers = servers.iter().map(|s| s.addr().to_string()).collect();
    let mut config = CoordConfig::new(workers, servers.len(), temp_dir(&format!("{tag}-coord")));
    config.lease_timeout = Duration::from_secs(5);
    config.poll_interval = Duration::from_millis(10);
    config.backoff_base = Duration::from_millis(2);
    config.backoff_cap = Duration::from_millis(20);
    config.client_timeout = Duration::from_secs(10);
    (servers, config)
}

fn shut_down(servers: Vec<Server>) {
    for server in servers {
        server.request_shutdown();
        server.wait();
    }
}

fn projection(result: &CampaignResult) -> Vec<String> {
    result.records.iter().map(merged_line).collect()
}

/// Asserts the recombined coordinator outcome is bit-identical to the
/// 1-process oracle: merged records byte-for-byte, coverage bounds (and
/// CI half-widths, when sampled) to the exact f64 bit pattern.
fn assert_bit_identical(outcome: &symbist_service::coord::CoordOutcome, oracle: &CampaignResult) {
    assert_eq!(projection(&outcome.result), projection(oracle));
    let artifact = std::fs::read_to_string(&outcome.merged_path).expect("merged artifact");
    let mut expected = projection(oracle).join("\n");
    expected.push('\n');
    assert_eq!(artifact, expected, "merged.jsonl must equal the oracle");

    let (oracle_lo, oracle_hi) = oracle.coverage_bounds();
    assert_eq!(
        outcome.coverage_lower.value.to_bits(),
        oracle_lo.value.to_bits()
    );
    assert_eq!(
        outcome.coverage_upper.value.to_bits(),
        oracle_hi.value.to_bits()
    );
    assert_eq!(
        outcome.coverage_lower.ci_half_width.map(f64::to_bits),
        oracle_lo.ci_half_width.map(f64::to_bits)
    );
    assert_eq!(
        outcome.coverage_upper.ci_half_width.map(f64::to_bits),
        oracle_hi.ci_half_width.map(f64::to_bits)
    );
}

#[test]
fn three_shard_chaos_run_is_bit_identical_to_the_oracle() {
    let _serial = serial();
    let components = 6; // universe of 24 defects -> shards [0,8) [8,16) [16,24)
    let spec = JobSpec::default();
    let oracle = SyntheticBackend::new(components)
        .run(&spec, None, &())
        .expect("oracle campaign");

    let backends: Vec<Arc<dyn CampaignBackend>> = (0..3)
        .map(|_| Arc::new(SyntheticBackend::new(components)) as Arc<dyn CampaignBackend>)
        .collect();
    let (servers, mut config) = fleet(backends, true, "chaos");
    config.spec = spec;

    // The storm: the first submit bounces with a transient 503, the
    // shard-1 worker dies after 4 durable records, and shard 2's job is
    // killed by a torn checkpoint append at catalog index 20.
    let plan = Arc::new(
        FaultPlan::parse(
            "seed=42;\
             http/response:POST /v1/jobs@1=reject;\
             worker/kill:shard-1@4=panic;\
             campaign/checkpoint:20@1=torn",
        )
        .unwrap(),
    );
    let outcome = {
        let _guard = symbist_obs::fault::install(plan);
        run_coordinator(&config).expect("coordinator recovers from the storm")
    };

    assert_bit_identical(&outcome, &oracle);
    assert_eq!(outcome.result.simulated(), 24);

    // Recovery actually happened — and resumed, never restarted: the two
    // killed shards were re-dispatched, and the records their first
    // attempts delivered were kept (>= 4 from the worker kill, 4 from
    // the torn-checkpoint job's pre-casualty stream).
    assert!(
        outcome.redispatches >= 2,
        "worker kill + torn checkpoint both re-dispatch, got {}",
        outcome.redispatches
    );
    for shard in &outcome.shards {
        assert_eq!(shard.records, 8);
    }
    assert!(
        outcome.shards.iter().all(|s| s.attempts >= 1),
        "{:?}",
        outcome.shards
    );

    // Recovery is observable on any worker's /v1/metrics (the obs
    // registry is process-global in this test, as in a real worker the
    // coordinator's own exposition would be).
    let client = symbist_service::client::Client::builder()
        .base_url(servers[0].addr().to_string())
        .build();
    let metrics = client.metrics().expect("metrics");
    for family in [
        "symbist_coord_dispatches_total",
        "symbist_coord_redispatches_total",
        "symbist_coord_retries_total",
        "symbist_coord_merge_seconds",
        "symbist_fault_injections_total",
    ] {
        assert!(
            metrics.contains(&format!("# TYPE {family} ")),
            "missing family {family}"
        );
    }

    shut_down(servers);
    let _ = std::fs::remove_dir_all(&config.data_dir);
}

#[test]
fn lease_expiry_redispatches_away_from_a_wedged_worker() {
    let _serial = serial();
    let components = 4;
    let spec = JobSpec::default();
    let oracle = SyntheticBackend::new(components)
        .run(&spec, None, &())
        .expect("oracle campaign");

    // Worker 0 wedges on a held gate: its job makes zero progress, so
    // the shard's lease expires and the coordinator rotates to worker 1.
    let gate = Gate::new();
    gate.hold();
    let backends: Vec<Arc<dyn CampaignBackend>> = vec![
        Arc::new(SyntheticBackend::new(components).with_gate(Arc::clone(&gate))),
        Arc::new(SyntheticBackend::new(components)),
    ];
    let (servers, mut config) = fleet(backends, false, "wedge");
    config.spec = spec;
    config.shards = 1; // one shard, so it provably lands on the wedge first
    config.lease_timeout = Duration::from_millis(400);

    let outcome = run_coordinator(&config).expect("coordinator escapes the wedge");
    assert_bit_identical(&outcome, &oracle);
    assert_eq!(outcome.shards.len(), 1);
    assert!(outcome.shards[0].lease_expiries >= 1, "lease must expire");
    assert_eq!(outcome.shards[0].attempts, 2, "exactly one re-dispatch");

    gate.release(); // free the wedged campaign so worker 0 can drain
    shut_down(servers);
    let _ = std::fs::remove_dir_all(&config.data_dir);
}

#[test]
fn sampled_campaign_recombines_with_identical_confidence_interval() {
    let _serial = serial();
    let components = 10; // universe of 40
    let spec = JobSpec {
        sample_size: Some(25),
        seed: 99,
        ..JobSpec::default()
    };
    let oracle = SyntheticBackend::new(components)
        .run(&spec, None, &())
        .expect("oracle campaign");
    assert!(oracle.sampled && oracle.coverage().ci_half_width.is_some());

    let backends: Vec<Arc<dyn CampaignBackend>> = (0..3)
        .map(|_| Arc::new(SyntheticBackend::new(components)) as Arc<dyn CampaignBackend>)
        .collect();
    let (servers, mut config) = fleet(backends, false, "sampled");
    config.spec = spec;

    // Every shard re-draws the same LWRS selection from the seed and
    // keeps its index range; disjoint covering ranges therefore
    // reconstruct the exact 1-process sample.
    let outcome = run_coordinator(&config).expect("sampled coordinator run");
    assert_bit_identical(&outcome, &oracle);
    assert_eq!(outcome.result.simulated(), 25);
    assert!(outcome.result.sampled);

    shut_down(servers);
    let _ = std::fs::remove_dir_all(&config.data_dir);
}

#[test]
fn coordinator_rejects_unshardable_specs_and_empty_fleets() {
    let _serial = serial();
    let empty = CoordConfig::new(Vec::new(), 2, temp_dir("bad-empty"));
    assert!(matches!(
        run_coordinator(&empty),
        Err(CoordError::NoWorkers)
    ));

    let mut blocked = CoordConfig::new(vec!["127.0.0.1:1".into()], 2, temp_dir("bad-block"));
    blocked.spec.block = Some("SC Array".into());
    assert!(matches!(
        run_coordinator(&blocked),
        Err(CoordError::BadSpec(_))
    ));

    let mut ranged = CoordConfig::new(vec!["127.0.0.1:1".into()], 2, temp_dir("bad-range"));
    ranged.spec.index_lo = Some(3);
    assert!(matches!(
        run_coordinator(&ranged),
        Err(CoordError::BadSpec(_))
    ));

    // An unreachable fleet is a probe failure, not a hang: the transient
    // retry budget is finite.
    let mut config = CoordConfig::new(vec!["127.0.0.1:1".into()], 1, temp_dir("bad-probe"));
    config.request_retries = 1;
    config.backoff_base = Duration::from_millis(1);
    config.backoff_cap = Duration::from_millis(2);
    assert!(matches!(
        run_coordinator(&config),
        Err(CoordError::Probe { .. })
    ));
}
