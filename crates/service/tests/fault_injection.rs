//! Service-level fault-injection acceptance tests: the `worker/kill:*`,
//! `campaign/checkpoint:*`, and `http/response:*` sites, plus the
//! NDJSON stream-abort hardening (a follower that vanishes mid-stream
//! must release its handler slot and be counted, never wedge the pool).
//!
//! The fault plan is process-global, so every test here holds
//! [`serial`] for its whole body — plans installed by one test would
//! otherwise eat another test's HTTP requests.
#![allow(clippy::unwrap_used)] // integration tests assert by panicking

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use symbist_defects::DefectRecord;
use symbist_obs::FaultPlan;
use symbist_service::backend::{CampaignBackend, Gate, SyntheticBackend};
use symbist_service::client::{Client, ClientError, ServiceError};
use symbist_service::http::{Server, ServiceConfig};
use symbist_service::json::Json;
use symbist_service::spec::JobSpec;

const POLL: Duration = Duration::from_millis(10);

/// Serializes the whole binary: fault plans are process-global.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn start(config: ServiceConfig, backend: Arc<dyn CampaignBackend>) -> (Server, Client) {
    let server = Server::start(config, backend).expect("server starts");
    let client = Client::builder()
        .base_url(server.addr().to_string())
        .build();
    (server, client)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("symbist-fault-svc-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(POLL);
    }
}

/// The first sample value of an exact series in a Prometheus exposition.
fn metric_value(text: &str, series: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(series)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}

#[test]
fn dropped_follower_mid_stream_is_counted_and_releases_the_handler() {
    let _serial = serial();
    let gate = Gate::new();
    gate.hold();
    let backend = Arc::new(SyntheticBackend::new(6).with_gate(Arc::clone(&gate)));
    // One handler: if the abandoned follow wedged its slot, every later
    // request in this test would hang — slot release is load-bearing.
    let config = ServiceConfig {
        handlers: 1,
        ..ServiceConfig::default()
    };
    let (server, client) = start(config, backend);

    let id = client.submit(&JobSpec::default()).expect("submit");
    wait_until("job running", || {
        client
            .status(id)
            .is_ok_and(|s| s.get("state").and_then(Json::as_str) == Some("running"))
    });
    let before = metric_value(
        &client.metrics().expect("metrics"),
        "symbist_service_stream_aborts_total",
    )
    .unwrap_or(0.0);

    // Open a follow stream on the live (gate-held) job, then vanish.
    let stream = client.stream_results(id).expect("stream opens");
    drop(stream);
    // Let the RST land before records start flowing to the dead socket.
    std::thread::sleep(Duration::from_millis(100));
    gate.release();

    // The handler notices the dead peer, counts the abort, and frees its
    // slot — so this health probe (same single handler) must come back.
    wait_until("handler slot released", || client.health().is_ok());
    wait_until("stream abort counted", || {
        client.metrics().is_ok_and(|m| {
            metric_value(&m, "symbist_service_stream_aborts_total").unwrap_or(0.0) >= before + 1.0
        })
    });

    // The job itself is unaffected by its follower's death.
    let (state, _) = client.wait_terminal(id, POLL).expect("terminal");
    assert_eq!(state, "completed");
    server.request_shutdown();
    server.wait();
}

#[test]
fn worker_kill_after_k_records_fails_the_job_with_k_durable_records() {
    let _serial = serial();
    let (server, client) = start(ServiceConfig::default(), Arc::new(SyntheticBackend::new(6)));
    let plan = Arc::new(FaultPlan::parse("worker/kill:kchaos@3=panic").unwrap());
    let _guard = symbist_obs::fault::install(plan);

    let spec = JobSpec {
        tag: Some("kchaos".into()),
        ..JobSpec::default()
    };
    let id = client.submit(&spec).expect("submit");
    let (state, status) = client.wait_terminal(id, POLL).expect("terminal");
    assert_eq!(state, "failed");
    let error = status.get("error").and_then(Json::as_str).unwrap();
    assert!(error.contains("fault-injected worker kill"), "{error}");

    // The kill fires *after* the third record is durable and published:
    // exactly 3 records, no torn or divergent fourth.
    let done = status
        .get("progress")
        .and_then(|p| p.get("done"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(done, 3);
    let records: Vec<DefectRecord> = client
        .stream_results(id)
        .expect("stream of failed job")
        .map(|r| r.expect("record parses"))
        .collect();
    assert_eq!(records.len(), 3);

    // The worker thread survived: an untagged job sails through.
    let ok = client.submit(&JobSpec::default()).expect("submit 2");
    let (state, _) = client.wait_terminal(ok, POLL).expect("terminal 2");
    assert_eq!(state, "completed");

    server.request_shutdown();
    server.wait();
}

#[test]
fn checkpoint_flush_panic_fails_the_job_not_the_worker() {
    let _serial = serial();
    let data_dir = temp_dir("ckpt-panic");
    let config = ServiceConfig {
        workers: 1,
        data_dir: Some(data_dir.clone()),
        ..ServiceConfig::default()
    };
    let (server, client) = start(config, Arc::new(SyntheticBackend::new(4)));

    {
        let plan = Arc::new(FaultPlan::parse("campaign/checkpoint:@2=panic").unwrap());
        let _guard = symbist_obs::fault::install(plan);
        let id = client.submit(&JobSpec::default()).expect("submit");
        let (state, status) = client.wait_terminal(id, POLL).expect("terminal");
        assert_eq!(state, "failed");
        let error = status.get("error").and_then(Json::as_str).unwrap();
        assert!(error.contains("panicked"), "{error}");
        // The panic unwound before the second write: one durable line.
        let ckpt = std::fs::read_to_string(data_dir.join(format!("job-{id:06}.ckpt.jsonl")))
            .expect("checkpoint file");
        assert_eq!(ckpt.lines().count(), 1);
    }

    // Plan uninstalled: the single worker survived and keeps serving.
    let ok = client.submit(&JobSpec::default()).expect("submit 2");
    let (state, _) = client.wait_terminal(ok, POLL).expect("terminal 2");
    assert_eq!(state, "completed");

    server.request_shutdown();
    server.wait();
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn dropped_http_response_is_survived_by_client_retries() {
    let _serial = serial();
    let (server, _) = start(ServiceConfig::default(), Arc::new(SyntheticBackend::new(2)));

    // Without retries, the dropped response surfaces as a transport error.
    {
        let plan = Arc::new(FaultPlan::parse("http/response:GET /v1/healthz@1=drop").unwrap());
        let _guard = symbist_obs::fault::install(plan);
        let bare = Client::builder()
            .base_url(server.addr().to_string())
            .build();
        assert!(matches!(bare.health(), Err(ClientError::Io(_))));
    }

    // With retries and the seeded backoff, the same fault is absorbed.
    {
        let plan = Arc::new(FaultPlan::parse("http/response:GET /v1/healthz@1=drop").unwrap());
        let _guard = symbist_obs::fault::install(plan);
        let retrying = Client::builder()
            .base_url(server.addr().to_string())
            .retries(2)
            .backoff(Duration::from_millis(1), Duration::from_millis(5))
            .backoff_seed(7)
            .build();
        retrying
            .health()
            .expect("retry absorbs the dropped response");
    }

    server.request_shutdown();
    server.wait();
}

#[test]
fn rejected_submit_surfaces_as_typed_transient_error() {
    let _serial = serial();
    let (server, client) = start(ServiceConfig::default(), Arc::new(SyntheticBackend::new(2)));
    let plan = Arc::new(FaultPlan::parse("http/response:POST /v1/jobs@1=reject").unwrap());
    let _guard = symbist_obs::fault::install(plan);

    match client.submit(&JobSpec::default()) {
        Err(ClientError::Service(ServiceError::QueueFull {
            message,
            retry_after,
        })) => {
            assert!(message.contains("fault-injected"), "{message}");
            assert_eq!(retry_after, Some(1), "rejection carries a retry hint");
        }
        other => panic!("expected queue_full, got {other:?}"),
    }
    // The rule's occurrence window has passed: the next submit lands.
    let id = client.submit(&JobSpec::default()).expect("submit 2");
    let (state, _) = client.wait_terminal(id, POLL).expect("terminal");
    assert_eq!(state, "completed");

    server.request_shutdown();
    server.wait();
}
