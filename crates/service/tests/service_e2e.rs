//! End-to-end acceptance tests for the campaign job service, exercised
//! through the real TCP/HTTP stack: submit → poll → stream → report,
//! queue-full `503` backpressure, handler-pool `429` refusal, live NDJSON
//! streaming, cancellation, the `/v1` routing contract (legacy 308
//! redirects, uniform error envelopes, Prometheus metrics, trace export),
//! and the drain/restart resume contract (the service-level version of
//! the campaign runner's kill-and-resume oracle).
#![allow(clippy::unwrap_used)] // integration tests assert by panicking

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use symbist_defects::{CampaignResult, DefectRecord};
use symbist_service::backend::{CampaignBackend, Gate, SyntheticBackend};
use symbist_service::client::{Client, ClientError, ServiceError};
use symbist_service::http::{Server, ServiceConfig};
use symbist_service::json::Json;
use symbist_service::spec::JobSpec;

const POLL: Duration = Duration::from_millis(10);

fn start(config: ServiceConfig, backend: Arc<dyn CampaignBackend>) -> (Server, Client) {
    let server = Server::start(config, backend).expect("server starts");
    let client = Client::builder()
        .base_url(server.addr().to_string())
        .build();
    (server, client)
}

/// Fresh scratch directory per test (the suite runs concurrently).
fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("symbist-service-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn progress_done(status: &Json) -> u64 {
    status
        .get("progress")
        .and_then(|p| p.get("done"))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Polls until `pred` holds, panicking after a generous deadline.
fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(POLL);
    }
}

#[test]
fn submit_poll_stream_report_lifecycle() {
    let backend = Arc::new(SyntheticBackend::new(6));
    let universe = backend.universe_len();
    let (server, client) = start(ServiceConfig::default(), backend);

    client.health().expect("healthz");
    let id = client.submit(&JobSpec::default()).expect("submit");
    let (state, status) = client.wait_terminal(id, POLL).expect("terminal");
    assert_eq!(state, "completed");
    assert_eq!(progress_done(&status) as usize, universe);

    let records: Vec<DefectRecord> = client
        .stream_results(id)
        .expect("stream")
        .map(|r| r.expect("record parses"))
        .collect();
    assert_eq!(records.len(), universe);

    let report = client.report(id).expect("report");
    let coverage = report.get("coverage").expect("coverage pair");
    let lower = coverage.get("lower").and_then(Json::as_f64).unwrap();
    let upper = coverage.get("upper").and_then(Json::as_f64).unwrap();
    assert!(
        (0.0..=1.0).contains(&lower) && lower <= upper,
        "{lower} <= {upper}"
    );

    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("completed").and_then(Json::as_u64), Some(1));

    server.request_shutdown();
    server.wait();
}

#[test]
fn bad_specs_are_rejected_with_400() {
    let (server, client) = start(ServiceConfig::default(), Arc::new(SyntheticBackend::new(3)));
    for spec in [
        JobSpec {
            sample_size: Some(10_000), // larger than the universe
            ..Default::default()
        },
        JobSpec {
            block: Some("No Such Block".into()),
            ..Default::default()
        },
    ] {
        match client.submit(&spec) {
            Err(ClientError::Service(ServiceError::BadRequest(_))) => {}
            other => panic!("expected bad_request, got {other:?}"),
        }
    }
    // Unknown routes and jobs.
    assert!(matches!(
        client.status(999),
        Err(ClientError::Service(ServiceError::NotFound(_)))
    ));
    server.request_shutdown();
    server.wait();
}

#[test]
fn queue_full_returns_503_backpressure() {
    // Capacity 2, one worker wedged on a held gate: the queue fills and
    // further submissions must bounce with 503, not block or drop.
    let gate = Gate::new();
    gate.hold();
    let backend = Arc::new(SyntheticBackend::new(3).with_gate(Arc::clone(&gate)));
    let config = ServiceConfig {
        queue_capacity: 2,
        workers: 1,
        ..ServiceConfig::default()
    };
    let (server, client) = start(config, backend);

    let first = client.submit(&JobSpec::default()).expect("first submit");
    // Wait until the worker has claimed it so the queue is empty again.
    wait_until("first job running", || {
        client
            .status(first)
            .is_ok_and(|s| s.get("state").and_then(Json::as_str) == Some("running"))
    });
    client.submit(&JobSpec::default()).expect("fills slot 1");
    client.submit(&JobSpec::default()).expect("fills slot 2");

    let mut rejections = 0;
    for _ in 0..3 {
        match client.submit(&JobSpec::default()) {
            Err(ClientError::Service(ServiceError::QueueFull {
                message,
                retry_after,
            })) => {
                assert!(message.contains("queue full"), "{message}");
                assert_eq!(retry_after, Some(1), "503 carries a retry hint");
                rejections += 1;
            }
            other => panic!("expected queue_full, got {other:?}"),
        }
    }
    assert_eq!(rejections, 3);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("rejected").and_then(Json::as_u64), Some(3));
    assert_eq!(stats.get("queue_depth").and_then(Json::as_u64), Some(2));

    gate.release();
    server.request_shutdown();
    server.wait();
}

#[test]
fn results_stream_follows_a_live_job() {
    // The stream is opened while the job is provably not terminal (its
    // first defect is wedged on the gate), then must deliver every record
    // and terminate when the job completes.
    let gate = Gate::new();
    gate.hold();
    let backend = Arc::new(SyntheticBackend::new(5).with_gate(Arc::clone(&gate)));
    let universe = backend.universe_len();
    let (server, client) = start(ServiceConfig::default(), backend);

    let id = client.submit(&JobSpec::default()).expect("submit");
    wait_until("job running", || {
        client
            .status(id)
            .is_ok_and(|s| s.get("state").and_then(Json::as_str) == Some("running"))
    });
    assert_eq!(
        progress_done(&client.status(id).unwrap()),
        0,
        "gate held: no records yet"
    );

    let stream = client.stream_results(id).expect("stream opens on live job");
    let collector = std::thread::spawn(move || {
        stream
            .map(|r| r.expect("record parses"))
            .collect::<Vec<DefectRecord>>()
    });
    gate.release();
    let records = collector.join().expect("collector thread");
    assert_eq!(records.len(), universe, "stream delivered every record");

    let (state, _) = client.wait_terminal(id, POLL).expect("terminal");
    assert_eq!(state, "completed");
    server.request_shutdown();
    server.wait();
}

#[test]
fn delete_cancels_a_running_job() {
    let gate = Gate::new();
    gate.hold();
    let backend = Arc::new(SyntheticBackend::new(6).with_gate(Arc::clone(&gate)));
    let universe = backend.universe_len();
    let (server, client) = start(ServiceConfig::default(), backend);

    let id = client.submit(&JobSpec::default()).expect("submit");
    wait_until("job running", || {
        client
            .status(id)
            .is_ok_and(|s| s.get("state").and_then(Json::as_str) == Some("running"))
    });
    client.cancel(id).expect("cancel accepted");
    gate.release(); // let the wedged defect finish; the campaign then stops

    let (state, status) = client.wait_terminal(id, POLL).expect("terminal");
    assert_eq!(state, "cancelled");
    assert!(
        (progress_done(&status) as usize) < universe,
        "cancellation must stop the campaign early"
    );
    // Cancelling a finished job is a conflict.
    assert!(matches!(
        client.cancel(id),
        Err(ClientError::Service(ServiceError::Conflict(_)))
    ));
    server.request_shutdown();
    server.wait();
}

#[test]
fn saturated_handler_pool_returns_429() {
    // One handler, backlog of one. Wedge the handler with a half-open
    // request and park a second connection in the backlog; the acceptor
    // must then refuse further connections inline with 429.
    let config = ServiceConfig {
        handlers: 1,
        backlog: 1,
        ..ServiceConfig::default()
    };
    let (server, client) = start(config, Arc::new(SyntheticBackend::new(2)));
    let addr = server.addr();

    // Three half-open requests against capacity two (one handler + one
    // backlog slot). Whatever the claim timing, the handler can block on
    // at most one of them, another occupies the backlog slot, and the
    // rest bounce — so the saturated state is stable, not a race. The
    // acceptor routes connections in accept order, so by the time it
    // sees the health probe below, all three are accounted for.
    let mut wedges: Vec<TcpStream> = (0..3)
        .map(|i| {
            let mut stream = TcpStream::connect(addr).expect("wedge connects");
            stream.write_all(b"GET").expect("partial request");
            if i < 2 {
                // Give the acceptor a beat so the first two land in the
                // handler + slot rather than all three racing one
                // try_send window.
                std::thread::sleep(Duration::from_millis(50));
            }
            stream
        })
        .collect();

    match client.health() {
        Err(ClientError::Service(ServiceError::Saturated { .. })) => {}
        other => panic!("expected saturated, got {other:?}"),
    }

    // Completing the half-open requests restores service: the handler
    // finishes the one it claimed, then drains the backlog slot. (The
    // write to the already-refused connection fails; that's fine.)
    for wedge in &mut wedges {
        let _ = wedge.write_all(b" /healthz HTTP/1.1\r\n\r\n");
    }
    wait_until("service recovers", || client.health().is_ok());
    drop(wedges);
    server.request_shutdown();
    server.wait();
}

#[test]
fn shutdown_mid_job_then_restart_resumes_bit_identically() {
    // The service-level kill-and-resume oracle: drain a server mid-
    // campaign, restart on the same data directory, and the finished
    // job's records must match an uninterrupted run bit-for-bit on every
    // deterministic field (wall times of re-simulated defects may
    // legitimately differ — same contract as the campaign runner's own
    // resume tests).
    let data_dir = temp_dir("resume");
    let spec = JobSpec::default(); // threads=1: deterministic record order
    let components = 12;

    // Reference: the same campaign, uninterrupted, straight through the
    // backend (no service, no checkpoint).
    let reference: CampaignResult = SyntheticBackend::new(components)
        .run(&spec, None, &())
        .expect("reference campaign");

    // Server #1: slow backend so the drain lands mid-campaign.
    let backend = Arc::new(SyntheticBackend::new(components).with_delay(Duration::from_millis(10)));
    let config = ServiceConfig {
        workers: 1,
        data_dir: Some(data_dir.clone()),
        ..ServiceConfig::default()
    };
    let (server, client) = start(config.clone(), backend);
    let id = client.submit(&spec).expect("submit");
    wait_until("some records completed", || {
        client.status(id).is_ok_and(|s| progress_done(&s) >= 3)
    });
    client.shutdown().expect("POST /shutdown accepted");
    server.wait();

    // The drain persisted the interrupted job as queued, with a partial
    // checkpoint holding every completed record.
    let meta = std::fs::read_to_string(data_dir.join(format!("job-{id:06}.json")))
        .expect("job metadata persisted");
    assert!(meta.contains("\"state\":\"queued\""), "{meta}");
    let ckpt = std::fs::read_to_string(data_dir.join(format!("job-{id:06}.ckpt.jsonl")))
        .expect("checkpoint persisted");
    let persisted = ckpt.lines().count();
    assert!(
        persisted >= 3 && persisted < reference.records.len(),
        "expected a partial checkpoint, got {persisted} records"
    );

    // Server #2: same data dir, fast backend. Recovery re-enqueues the
    // job and the campaign resumes from the checkpoint.
    let (server2, client2) = start(config, Arc::new(SyntheticBackend::new(components)));
    let (state, status) = client2
        .wait_terminal(id, POLL)
        .expect("resumed to terminal");
    assert_eq!(state, "completed");
    let resumed = status
        .get("progress")
        .and_then(|p| p.get("resumed"))
        .and_then(Json::as_u64)
        .expect("resumed counter");
    assert!(
        resumed >= 3,
        "must reload checkpointed records, got {resumed}"
    );

    let records: Vec<DefectRecord> = client2
        .stream_results(id)
        .expect("stream")
        .map(|r| r.expect("record parses"))
        .collect();
    assert_eq!(records.len(), reference.records.len());
    for (r, u) in records.iter().zip(&reference.records) {
        assert_eq!(r.defect_index, u.defect_index);
        assert_eq!(r.site, u.site);
        assert_eq!(r.likelihood.to_bits(), u.likelihood.to_bits());
        assert_eq!(r.outcome, u.outcome);
    }

    server2.request_shutdown();
    server2.wait();
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn draining_server_rejects_new_jobs_with_503() {
    let gate = Gate::new();
    gate.hold();
    let backend = Arc::new(SyntheticBackend::new(3).with_gate(Arc::clone(&gate)));
    let (server, client) = start(ServiceConfig::default(), backend);

    let id = client.submit(&JobSpec::default()).expect("submit");
    wait_until("job running", || {
        client
            .status(id)
            .is_ok_and(|s| s.get("state").and_then(Json::as_str) == Some("running"))
    });
    // Begin the drain without waiting: the server keeps answering while
    // the wedged job holds the worker.
    server.registry().begin_drain();
    match client.submit(&JobSpec::default()) {
        Err(ClientError::Service(ServiceError::Draining(message))) => {
            assert!(message.contains("draining"), "{message}");
        }
        other => panic!("expected draining, got {other:?}"),
    }
    gate.release();
    server.request_shutdown();
    server.wait();
}

/// One raw HTTP exchange, returning status, headers (lower-cased names),
/// and body — used where the typed client hides what the wire carries
/// (redirect headers, raw error envelopes).
fn raw_request_full(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    use std::io::{BufRead, BufReader, Read};
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let mut headers = Vec::new();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body).expect("body");
    (status, headers, body)
}

/// Status + body only; see [`raw_request_full`].
fn raw_request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _, body) = raw_request_full(addr, method, path, body);
    (status, body)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Parses `{"error": {...}}` and returns the envelope object, asserting
/// the two mandatory fields are present and non-empty.
fn parse_envelope(body: &str) -> Json {
    let doc = Json::parse(body).unwrap_or_else(|e| panic!("body is JSON ({e}): {body}"));
    let envelope = doc.get("error").expect("error envelope").clone();
    let code = envelope.get("code").and_then(Json::as_str).expect("code");
    let message = envelope
        .get("message")
        .and_then(Json::as_str)
        .expect("message");
    assert!(!code.is_empty() && !message.is_empty(), "{body}");
    envelope
}

#[test]
fn preflight_errors_reject_with_422_without_queueing() {
    use symbist_lint::{Diagnostic, LintReport, Rule};

    // A backend whose static pre-flight fails: one Error-level finding.
    let mut report = LintReport::new();
    report.push(Diagnostic::new(
        Rule::FloatingNode,
        "synthetic dut",
        "node island",
        "2 node(s) have no connection to ground",
    ));
    let backend = Arc::new(SyntheticBackend::new(3).with_lint_report(report));
    let (server, client) = start(ServiceConfig::default(), backend);

    // The raw 422 envelope carries machine-readable diagnostics.
    let spec_body = JobSpec::default().to_json().to_string();
    let (status, body) = raw_request(server.addr(), "POST", "/v1/jobs", &spec_body);
    assert_eq!(status, 422, "{body}");
    let envelope = parse_envelope(&body);
    assert_eq!(
        envelope.get("code").and_then(Json::as_str),
        Some("lint_failed")
    );
    let lint = envelope.get("diagnostics").expect("lint diagnostics");
    assert_eq!(lint.get("errors").and_then(Json::as_u64), Some(1), "{body}");
    let diags = lint
        .get("diagnostics")
        .and_then(Json::as_arr)
        .expect("diagnostics array");
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].get("rule").and_then(Json::as_str),
        Some("SYM-L001")
    );
    assert_eq!(
        diags[0].get("severity").and_then(Json::as_str),
        Some("error")
    );

    // The typed client surfaces the same rejection, diagnostics included.
    match client.submit(&JobSpec::default()) {
        Err(ClientError::Service(ServiceError::LintFailed {
            message,
            diagnostics,
        })) => {
            assert!(message.contains("pre-flight"), "{message}");
            let lint = diagnostics.expect("client keeps the lint report");
            assert_eq!(lint.get("errors").and_then(Json::as_u64), Some(1));
        }
        other => panic!("expected lint_failed, got {other:?}"),
    }

    // The rejection happened at the front door: nothing was queued, no
    // worker slot was ever occupied, and no job id was minted.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("queue_depth").and_then(Json::as_u64), Some(0));
    assert_eq!(stats.get("running").and_then(Json::as_u64), Some(0));
    assert_eq!(stats.get("submitted").and_then(Json::as_u64), Some(0));

    server.request_shutdown();
    server.wait();
}

#[test]
fn lint_endpoint_reports_for_admitted_jobs() {
    // A clean backend admits the job; GET /lint/{id} then audits what the
    // submission gate saw (zero errors).
    let (server, client) = start(ServiceConfig::default(), Arc::new(SyntheticBackend::new(3)));
    let id = client.submit(&JobSpec::default()).expect("submit");
    let lint = client.lint(id).expect("lint report");
    assert_eq!(lint.get("errors").and_then(Json::as_u64), Some(0));
    assert_eq!(
        lint.get("diagnostics")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0)
    );
    // Unknown job ids 404 like every other job-scoped endpoint.
    assert!(matches!(
        client.lint(9_999),
        Err(ClientError::Service(ServiceError::NotFound(_)))
    ));
    server.request_shutdown();
    server.wait();
}

// ------------------------------------------------------------- /v1 API

#[test]
fn legacy_paths_redirect_to_v1_with_deprecation_header() {
    let (server, _client) = start(ServiceConfig::default(), Arc::new(SyntheticBackend::new(2)));
    let addr = server.addr();

    for (method, path) in [
        ("GET", "/healthz"),
        ("GET", "/stats"),
        ("POST", "/jobs"),
        ("GET", "/jobs/1"),
        ("GET", "/jobs/1/results"),
        ("GET", "/report/1"),
        ("GET", "/lint/1"),
        ("POST", "/shutdown"),
    ] {
        let (status, headers, body) = raw_request_full(addr, method, path, "");
        assert_eq!(status, 308, "{method} {path}: {body}");
        assert_eq!(
            header(&headers, "location"),
            Some(format!("/v1{path}").as_str()),
            "{method} {path}"
        );
        assert_eq!(header(&headers, "deprecation"), Some("true"), "{path}");
        let envelope = parse_envelope(&body);
        assert_eq!(
            envelope.get("code").and_then(Json::as_str),
            Some("moved_permanently"),
            "{body}"
        );
    }

    // Unknown paths are a plain 404, not a "deprecated route" signal.
    let (status, headers, body) = raw_request_full(addr, "GET", "/nope", "");
    assert_eq!(status, 404, "{body}");
    assert!(header(&headers, "location").is_none());
    assert_eq!(
        parse_envelope(&body).get("code").and_then(Json::as_str),
        Some("not_found")
    );

    server.request_shutdown();
    server.wait();
}

#[test]
fn error_envelope_is_uniform_across_statuses() {
    let (server, client) = start(ServiceConfig::default(), Arc::new(SyntheticBackend::new(2)));
    let addr = server.addr();

    // A finished job gives the 405/409 probes a real id to poke at.
    let id = client.submit(&JobSpec::default()).expect("submit");
    let (state, _) = client.wait_terminal(id, POLL).expect("terminal");
    assert_eq!(state, "completed");

    let job = format!("/v1/jobs/{id}");
    let spec_body = JobSpec::default().to_json().to_string();
    let cases: [(&str, &str, &str, u16, &str); 6] = [
        ("POST", "/v1/jobs", "not json", 400, "bad_request"),
        ("GET", "/v1/jobs/999", "", 404, "not_found"),
        ("PUT", &job, "", 405, "method_not_allowed"),
        ("DELETE", &job, "", 409, "conflict"),
        ("DELETE", "/v1/report/1", "", 405, "method_not_allowed"),
        ("GET", "/v1/what/is/this", "", 404, "not_found"),
    ];
    for (method, path, body, want_status, want_code) in cases {
        let (status, body) = raw_request(addr, method, path, body);
        assert_eq!(status, want_status, "{method} {path}: {body}");
        let envelope = parse_envelope(&body);
        assert_eq!(
            envelope.get("code").and_then(Json::as_str),
            Some(want_code),
            "{method} {path}: {body}"
        );
    }

    // Draining: the envelope carries the same shape at 503.
    server.registry().begin_drain();
    let (status, body) = raw_request(addr, "POST", "/v1/jobs", &spec_body);
    assert_eq!(status, 503, "{body}");
    assert_eq!(
        parse_envelope(&body).get("code").and_then(Json::as_str),
        Some("draining"),
        "{body}"
    );

    server.request_shutdown();
    server.wait();
}

/// Minimal Prometheus text-format validation: every sample line is
/// `series value`, every series belongs to a `# TYPE`-declared family
/// (histograms via their `_bucket`/`_sum`/`_count` suffixes), and every
/// family kind is one we emit.
fn assert_prometheus_valid(text: &str) {
    use std::collections::HashSet;
    let mut declared: HashSet<String> = HashSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("family name").to_string();
            let kind = parts.next().expect("family kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown kind: {line}"
            );
            declared.insert(name);
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("malformed sample line: {line}"));
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("non-numeric sample value: {line}"));
        let name = series.split('{').next().expect("series name");
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name: {line}"
        );
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| declared.contains(*b))
            .unwrap_or(name);
        assert!(declared.contains(base), "sample without # TYPE: {line}");
    }
}

/// The first sample value of an exact series (labels included).
fn metric_value(text: &str, series: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(series)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}

#[test]
fn metrics_endpoint_serves_prometheus_with_monotone_counters() {
    let (server, client) = start(ServiceConfig::default(), Arc::new(SyntheticBackend::new(3)));

    // The synthetic backend never touches the circuit solver, so drive
    // one real DC solve in-process: the obs registry is process-global,
    // and the solver families must show up in the same exposition.
    {
        use symbist_circuit::dc::DcSolver;
        use symbist_circuit::netlist::Netlist;
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource(a, Netlist::GND, 1.0);
        nl.resistor(a, b, 1e3);
        nl.resistor(b, Netlist::GND, 1e3);
        DcSolver::new().solve(&nl).expect("dc solve");
    }

    let id = client.submit(&JobSpec::default()).expect("job 1");
    client.wait_terminal(id, POLL).expect("terminal");
    let first = client.metrics().expect("metrics after job 1");
    assert_prometheus_valid(&first);

    for family in [
        // solver
        "symbist_solver_dc_solves_total",
        "symbist_solver_dc_solve_seconds",
        "symbist_solver_solves_total",
        "symbist_solver_newton_iterations",
        // campaign
        "symbist_campaign_runs_total",
        "symbist_campaign_defects_total",
        "symbist_campaign_defect_seconds",
        // service
        "symbist_service_queue_depth",
        "symbist_service_queue_wait_seconds",
        "symbist_service_jobs_total",
        "symbist_service_job_run_seconds",
        "symbist_service_requests_total",
        "symbist_service_request_seconds",
        "symbist_service_workers_total",
    ] {
        assert!(
            first.contains(&format!("# TYPE {family} ")),
            "missing family {family}"
        );
    }

    // A second job strictly advances the counters (other parallel tests
    // only ever increment, so >= is the race-free assertion).
    let completed_1 = metric_value(&first, r#"symbist_service_jobs_total{state="completed"}"#)
        .expect("completed counter");
    let campaigns_1 = metric_value(&first, "symbist_campaign_runs_total").expect("campaign runs");
    let id2 = client.submit(&JobSpec::default()).expect("job 2");
    client.wait_terminal(id2, POLL).expect("terminal");
    let second = client.metrics().expect("metrics after job 2");
    assert_prometheus_valid(&second);
    let completed_2 = metric_value(&second, r#"symbist_service_jobs_total{state="completed"}"#)
        .expect("completed counter");
    let campaigns_2 = metric_value(&second, "symbist_campaign_runs_total").expect("campaign runs");
    assert!(
        completed_2 >= completed_1 + 1.0,
        "jobs_total did not advance: {completed_1} -> {completed_2}"
    );
    assert!(
        campaigns_2 >= campaigns_1 + 1.0,
        "campaign_runs_total did not advance: {campaigns_1} -> {campaigns_2}"
    );

    // Histogram invariant on a live family: _count equals the +Inf bucket.
    let inf = metric_value(
        &second,
        r#"symbist_service_request_seconds_bucket{le="+Inf"}"#,
    )
    .expect("+Inf bucket");
    let count =
        metric_value(&second, "symbist_service_request_seconds_count").expect("histogram count");
    assert!(
        inf >= 1.0 && (inf - count).abs() < f64::EPSILON,
        "{inf} vs {count}"
    );

    server.request_shutdown();
    server.wait();
}

#[test]
fn trace_endpoint_returns_job_scoped_chrome_events() {
    let (server, client) = start(ServiceConfig::default(), Arc::new(SyntheticBackend::new(4)));

    let id = client.submit(&JobSpec::default()).expect("submit");
    let (state, _) = client.wait_terminal(id, POLL).expect("terminal");
    assert_eq!(state, "completed");

    let ndjson = client.trace(id).expect("trace body");
    let events: Vec<Json> = ndjson
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("trace line is JSON ({e}): {l}")))
        .collect();
    assert!(!events.is_empty(), "terminal job has captured spans");
    let mut names = Vec::new();
    for event in &events {
        // chrome://tracing complete-event shape.
        assert_eq!(event.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(event.get("cat").and_then(Json::as_str), Some("symbist"));
        assert!(event.get("ts").and_then(Json::as_u64).is_some());
        assert!(event.get("dur").and_then(Json::as_u64).is_some());
        assert!(event
            .get("args")
            .and_then(|a| a.get("span"))
            .and_then(Json::as_u64)
            .is_some());
        // Scope filtering: only this job's events come back.
        assert_eq!(
            event
                .get("args")
                .and_then(|a| a.get("scope"))
                .and_then(Json::as_str),
            Some(format!("job-{id}").as_str())
        );
        names.push(
            event
                .get("name")
                .and_then(Json::as_str)
                .expect("event name")
                .to_string(),
        );
    }
    assert!(names.iter().any(|n| n == "job_run"), "{names:?}");
    assert!(names.iter().any(|n| n == "campaign"), "{names:?}");

    // Parent linkage: the campaign span nests under job_run.
    let span_of = |name: &str| {
        events.iter().find_map(|e| {
            (e.get("name").and_then(Json::as_str) == Some(name))
                .then(|| {
                    e.get("args")
                        .and_then(|a| a.get("span"))
                        .and_then(Json::as_u64)
                })
                .flatten()
        })
    };
    let parent_of = |name: &str| {
        events.iter().find_map(|e| {
            (e.get("name").and_then(Json::as_str) == Some(name))
                .then(|| {
                    e.get("args")
                        .and_then(|a| a.get("parent"))
                        .and_then(Json::as_u64)
                })
                .flatten()
        })
    };
    assert_eq!(parent_of("campaign"), span_of("job_run"), "span nesting");

    // Unknown jobs 404 with the typed envelope.
    assert!(matches!(
        client.trace(9_999),
        Err(ClientError::Service(ServiceError::NotFound(_)))
    ));

    server.request_shutdown();
    server.wait();
}
