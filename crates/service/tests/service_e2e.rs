//! End-to-end acceptance tests for the campaign job service, exercised
//! through the real TCP/HTTP stack: submit → poll → stream → report,
//! queue-full `503` backpressure, handler-pool `429` refusal, live NDJSON
//! streaming, cancellation, and the drain/restart resume contract (the
//! service-level version of the campaign runner's kill-and-resume
//! oracle).
#![allow(clippy::unwrap_used)] // integration tests assert by panicking

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use symbist_defects::{CampaignResult, DefectRecord};
use symbist_service::backend::{CampaignBackend, Gate, SyntheticBackend};
use symbist_service::client::{Client, ClientError};
use symbist_service::http::{Server, ServiceConfig};
use symbist_service::json::Json;
use symbist_service::spec::JobSpec;

const POLL: Duration = Duration::from_millis(10);

fn start(config: ServiceConfig, backend: Arc<dyn CampaignBackend>) -> (Server, Client) {
    let server = Server::start(config, backend).expect("server starts");
    let client = Client::new(server.addr().to_string());
    (server, client)
}

/// Fresh scratch directory per test (the suite runs concurrently).
fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("symbist-service-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn progress_done(status: &Json) -> u64 {
    status
        .get("progress")
        .and_then(|p| p.get("done"))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Polls until `pred` holds, panicking after a generous deadline.
fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(POLL);
    }
}

#[test]
fn submit_poll_stream_report_lifecycle() {
    let backend = Arc::new(SyntheticBackend::new(6));
    let universe = backend.universe_len();
    let (server, client) = start(ServiceConfig::default(), backend);

    client.health().expect("healthz");
    let id = client.submit(&JobSpec::default()).expect("submit");
    let (state, status) = client.wait_terminal(id, POLL).expect("terminal");
    assert_eq!(state, "completed");
    assert_eq!(progress_done(&status) as usize, universe);

    let records: Vec<DefectRecord> = client
        .stream_results(id)
        .expect("stream")
        .map(|r| r.expect("record parses"))
        .collect();
    assert_eq!(records.len(), universe);

    let report = client.report(id).expect("report");
    let coverage = report.get("coverage").expect("coverage pair");
    let lower = coverage.get("lower").and_then(Json::as_f64).unwrap();
    let upper = coverage.get("upper").and_then(Json::as_f64).unwrap();
    assert!(
        (0.0..=1.0).contains(&lower) && lower <= upper,
        "{lower} <= {upper}"
    );

    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("completed").and_then(Json::as_u64), Some(1));

    server.request_shutdown();
    server.wait();
}

#[test]
fn bad_specs_are_rejected_with_400() {
    let (server, client) = start(ServiceConfig::default(), Arc::new(SyntheticBackend::new(3)));
    for spec in [
        JobSpec {
            sample_size: Some(10_000), // larger than the universe
            ..Default::default()
        },
        JobSpec {
            block: Some("No Such Block".into()),
            ..Default::default()
        },
    ] {
        match client.submit(&spec) {
            Err(ClientError::Http { status: 400, .. }) => {}
            other => panic!("expected 400, got {other:?}"),
        }
    }
    // Unknown routes and jobs.
    assert!(matches!(
        client.status(999),
        Err(ClientError::Http { status: 404, .. })
    ));
    server.request_shutdown();
    server.wait();
}

#[test]
fn queue_full_returns_503_backpressure() {
    // Capacity 2, one worker wedged on a held gate: the queue fills and
    // further submissions must bounce with 503, not block or drop.
    let gate = Gate::new();
    gate.hold();
    let backend = Arc::new(SyntheticBackend::new(3).with_gate(Arc::clone(&gate)));
    let config = ServiceConfig {
        queue_capacity: 2,
        workers: 1,
        ..ServiceConfig::default()
    };
    let (server, client) = start(config, backend);

    let first = client.submit(&JobSpec::default()).expect("first submit");
    // Wait until the worker has claimed it so the queue is empty again.
    wait_until("first job running", || {
        client
            .status(first)
            .is_ok_and(|s| s.get("state").and_then(Json::as_str) == Some("running"))
    });
    client.submit(&JobSpec::default()).expect("fills slot 1");
    client.submit(&JobSpec::default()).expect("fills slot 2");

    let mut rejections = 0;
    for _ in 0..3 {
        match client.submit(&JobSpec::default()) {
            Err(ClientError::Http {
                status: 503,
                message,
            }) => {
                assert!(message.contains("queue full"), "{message}");
                rejections += 1;
            }
            other => panic!("expected 503, got {other:?}"),
        }
    }
    assert_eq!(rejections, 3);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("rejected").and_then(Json::as_u64), Some(3));
    assert_eq!(stats.get("queue_depth").and_then(Json::as_u64), Some(2));

    gate.release();
    server.request_shutdown();
    server.wait();
}

#[test]
fn results_stream_follows_a_live_job() {
    // The stream is opened while the job is provably not terminal (its
    // first defect is wedged on the gate), then must deliver every record
    // and terminate when the job completes.
    let gate = Gate::new();
    gate.hold();
    let backend = Arc::new(SyntheticBackend::new(5).with_gate(Arc::clone(&gate)));
    let universe = backend.universe_len();
    let (server, client) = start(ServiceConfig::default(), backend);

    let id = client.submit(&JobSpec::default()).expect("submit");
    wait_until("job running", || {
        client
            .status(id)
            .is_ok_and(|s| s.get("state").and_then(Json::as_str) == Some("running"))
    });
    assert_eq!(
        progress_done(&client.status(id).unwrap()),
        0,
        "gate held: no records yet"
    );

    let stream = client.stream_results(id).expect("stream opens on live job");
    let collector = std::thread::spawn(move || {
        stream
            .map(|r| r.expect("record parses"))
            .collect::<Vec<DefectRecord>>()
    });
    gate.release();
    let records = collector.join().expect("collector thread");
    assert_eq!(records.len(), universe, "stream delivered every record");

    let (state, _) = client.wait_terminal(id, POLL).expect("terminal");
    assert_eq!(state, "completed");
    server.request_shutdown();
    server.wait();
}

#[test]
fn delete_cancels_a_running_job() {
    let gate = Gate::new();
    gate.hold();
    let backend = Arc::new(SyntheticBackend::new(6).with_gate(Arc::clone(&gate)));
    let universe = backend.universe_len();
    let (server, client) = start(ServiceConfig::default(), backend);

    let id = client.submit(&JobSpec::default()).expect("submit");
    wait_until("job running", || {
        client
            .status(id)
            .is_ok_and(|s| s.get("state").and_then(Json::as_str) == Some("running"))
    });
    client.cancel(id).expect("cancel accepted");
    gate.release(); // let the wedged defect finish; the campaign then stops

    let (state, status) = client.wait_terminal(id, POLL).expect("terminal");
    assert_eq!(state, "cancelled");
    assert!(
        (progress_done(&status) as usize) < universe,
        "cancellation must stop the campaign early"
    );
    // Cancelling a finished job is a conflict.
    assert!(matches!(
        client.cancel(id),
        Err(ClientError::Http { status: 409, .. })
    ));
    server.request_shutdown();
    server.wait();
}

#[test]
fn saturated_handler_pool_returns_429() {
    // One handler, backlog of one. Wedge the handler with a half-open
    // request and park a second connection in the backlog; the acceptor
    // must then refuse further connections inline with 429.
    let config = ServiceConfig {
        handlers: 1,
        backlog: 1,
        ..ServiceConfig::default()
    };
    let (server, client) = start(config, Arc::new(SyntheticBackend::new(2)));
    let addr = server.addr();

    // Three half-open requests against capacity two (one handler + one
    // backlog slot). Whatever the claim timing, the handler can block on
    // at most one of them, another occupies the backlog slot, and the
    // rest bounce — so the saturated state is stable, not a race. The
    // acceptor routes connections in accept order, so by the time it
    // sees the health probe below, all three are accounted for.
    let mut wedges: Vec<TcpStream> = (0..3)
        .map(|i| {
            let mut stream = TcpStream::connect(addr).expect("wedge connects");
            stream.write_all(b"GET").expect("partial request");
            if i < 2 {
                // Give the acceptor a beat so the first two land in the
                // handler + slot rather than all three racing one
                // try_send window.
                std::thread::sleep(Duration::from_millis(50));
            }
            stream
        })
        .collect();

    match client.health() {
        Err(ClientError::Http { status: 429, .. }) => {}
        other => panic!("expected 429, got {other:?}"),
    }

    // Completing the half-open requests restores service: the handler
    // finishes the one it claimed, then drains the backlog slot. (The
    // write to the already-refused connection fails; that's fine.)
    for wedge in &mut wedges {
        let _ = wedge.write_all(b" /healthz HTTP/1.1\r\n\r\n");
    }
    wait_until("service recovers", || client.health().is_ok());
    drop(wedges);
    server.request_shutdown();
    server.wait();
}

#[test]
fn shutdown_mid_job_then_restart_resumes_bit_identically() {
    // The service-level kill-and-resume oracle: drain a server mid-
    // campaign, restart on the same data directory, and the finished
    // job's records must match an uninterrupted run bit-for-bit on every
    // deterministic field (wall times of re-simulated defects may
    // legitimately differ — same contract as the campaign runner's own
    // resume tests).
    let data_dir = temp_dir("resume");
    let spec = JobSpec::default(); // threads=1: deterministic record order
    let components = 12;

    // Reference: the same campaign, uninterrupted, straight through the
    // backend (no service, no checkpoint).
    let reference: CampaignResult = SyntheticBackend::new(components)
        .run(&spec, None, &())
        .expect("reference campaign");

    // Server #1: slow backend so the drain lands mid-campaign.
    let backend = Arc::new(SyntheticBackend::new(components).with_delay(Duration::from_millis(10)));
    let config = ServiceConfig {
        workers: 1,
        data_dir: Some(data_dir.clone()),
        ..ServiceConfig::default()
    };
    let (server, client) = start(config.clone(), backend);
    let id = client.submit(&spec).expect("submit");
    wait_until("some records completed", || {
        client.status(id).is_ok_and(|s| progress_done(&s) >= 3)
    });
    client.shutdown().expect("POST /shutdown accepted");
    server.wait();

    // The drain persisted the interrupted job as queued, with a partial
    // checkpoint holding every completed record.
    let meta = std::fs::read_to_string(data_dir.join(format!("job-{id:06}.json")))
        .expect("job metadata persisted");
    assert!(meta.contains("\"state\":\"queued\""), "{meta}");
    let ckpt = std::fs::read_to_string(data_dir.join(format!("job-{id:06}.ckpt.jsonl")))
        .expect("checkpoint persisted");
    let persisted = ckpt.lines().count();
    assert!(
        persisted >= 3 && persisted < reference.records.len(),
        "expected a partial checkpoint, got {persisted} records"
    );

    // Server #2: same data dir, fast backend. Recovery re-enqueues the
    // job and the campaign resumes from the checkpoint.
    let (server2, client2) = start(config, Arc::new(SyntheticBackend::new(components)));
    let (state, status) = client2
        .wait_terminal(id, POLL)
        .expect("resumed to terminal");
    assert_eq!(state, "completed");
    let resumed = status
        .get("progress")
        .and_then(|p| p.get("resumed"))
        .and_then(Json::as_u64)
        .expect("resumed counter");
    assert!(
        resumed >= 3,
        "must reload checkpointed records, got {resumed}"
    );

    let records: Vec<DefectRecord> = client2
        .stream_results(id)
        .expect("stream")
        .map(|r| r.expect("record parses"))
        .collect();
    assert_eq!(records.len(), reference.records.len());
    for (r, u) in records.iter().zip(&reference.records) {
        assert_eq!(r.defect_index, u.defect_index);
        assert_eq!(r.site, u.site);
        assert_eq!(r.likelihood.to_bits(), u.likelihood.to_bits());
        assert_eq!(r.outcome, u.outcome);
    }

    server2.request_shutdown();
    server2.wait();
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn draining_server_rejects_new_jobs_with_503() {
    let gate = Gate::new();
    gate.hold();
    let backend = Arc::new(SyntheticBackend::new(3).with_gate(Arc::clone(&gate)));
    let (server, client) = start(ServiceConfig::default(), backend);

    let id = client.submit(&JobSpec::default()).expect("submit");
    wait_until("job running", || {
        client
            .status(id)
            .is_ok_and(|s| s.get("state").and_then(Json::as_str) == Some("running"))
    });
    // Begin the drain without waiting: the server keeps answering while
    // the wedged job holds the worker.
    server.registry().begin_drain();
    match client.submit(&JobSpec::default()) {
        Err(ClientError::Http {
            status: 503,
            message,
        }) => {
            assert!(message.contains("draining"), "{message}");
        }
        other => panic!("expected 503, got {other:?}"),
    }
    gate.release();
    server.request_shutdown();
    server.wait();
}

/// One raw HTTP exchange, returning the status code and body — used where
/// the typed client collapses error bodies into a single message and the
/// test needs the full JSON payload.
fn raw_request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    use std::io::{BufRead, BufReader, Read};
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        if header.trim_end().is_empty() {
            break;
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body).expect("body");
    (status, body)
}

#[test]
fn preflight_errors_reject_with_422_without_queueing() {
    use symbist_lint::{Diagnostic, LintReport, Rule};

    // A backend whose static pre-flight fails: one Error-level finding.
    let mut report = LintReport::new();
    report.push(Diagnostic::new(
        Rule::FloatingNode,
        "synthetic dut",
        "node island",
        "2 node(s) have no connection to ground",
    ));
    let backend = Arc::new(SyntheticBackend::new(3).with_lint_report(report));
    let (server, client) = start(ServiceConfig::default(), backend);

    // The raw 422 body carries machine-readable diagnostics.
    let spec_body = JobSpec::default().to_json().to_string();
    let (status, body) = raw_request(server.addr(), "POST", "/jobs", &spec_body);
    assert_eq!(status, 422, "{body}");
    let json = Json::parse(&body).expect("422 body is JSON");
    assert!(json.get("error").and_then(Json::as_str).is_some(), "{body}");
    assert_eq!(json.get("errors").and_then(Json::as_u64), Some(1), "{body}");
    let diags = json
        .get("diagnostics")
        .and_then(Json::as_arr)
        .expect("diagnostics array");
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].get("rule").and_then(Json::as_str),
        Some("SYM-L001")
    );
    assert_eq!(
        diags[0].get("severity").and_then(Json::as_str),
        Some("error")
    );

    // The typed client surfaces the same rejection.
    match client.submit(&JobSpec::default()) {
        Err(ClientError::Http {
            status: 422,
            message,
        }) => assert!(message.contains("pre-flight"), "{message}"),
        other => panic!("expected 422, got {other:?}"),
    }

    // The rejection happened at the front door: nothing was queued, no
    // worker slot was ever occupied, and no job id was minted.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("queue_depth").and_then(Json::as_u64), Some(0));
    assert_eq!(stats.get("running").and_then(Json::as_u64), Some(0));
    assert_eq!(stats.get("submitted").and_then(Json::as_u64), Some(0));

    server.request_shutdown();
    server.wait();
}

#[test]
fn lint_endpoint_reports_for_admitted_jobs() {
    // A clean backend admits the job; GET /lint/{id} then audits what the
    // submission gate saw (zero errors).
    let (server, client) = start(ServiceConfig::default(), Arc::new(SyntheticBackend::new(3)));
    let id = client.submit(&JobSpec::default()).expect("submit");
    let lint = client.lint(id).expect("lint report");
    assert_eq!(lint.get("errors").and_then(Json::as_u64), Some(0));
    assert_eq!(
        lint.get("diagnostics")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0)
    );
    // Unknown job ids 404 like every other job-scoped endpoint.
    assert!(matches!(
        client.lint(9_999),
        Err(ClientError::Http { status: 404, .. })
    ));
    server.request_shutdown();
    server.wait();
}
