//! End-to-end tests for the DUT registry subsystem through the real
//! TCP/HTTP stack: `POST /v1/duts` upload/dedup/lint-gate/quota, generic
//! campaigns selected by the job spec's `dut` field, bit-identity of the
//! ADC campaign across the legacy and registry paths, and a sharded
//! coordinator run over an uploaded DUT merging byte-identical to the
//! 1-process oracle.
#![allow(clippy::unwrap_used)] // integration tests assert by panicking

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use symbist::experiments::ExperimentConfig;
use symbist_defects::checkpoint::merged_line;
use symbist_defects::DefectRecord;
use symbist_dut::{CapArrayConfig, DutRegistry, DutRegistryConfig, DutSpec};
use symbist_service::backend::{AdcBackend, CampaignBackend, SyntheticBackend};
use symbist_service::client::{Client, ClientError, ServiceError};
use symbist_service::coord::{run_coordinator, CoordConfig};
use symbist_service::dut_backend::GenericBackend;
use symbist_service::http::{Server, ServiceConfig};
use symbist_service::json::Json;
use symbist_service::spec::JobSpec;

const POLL: Duration = Duration::from_millis(10);

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("symbist-dut-e2e-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A server whose backend carries a DUT registry (in-memory unless a
/// directory is given), plus a client bound to it.
fn start_with_registry(
    inner: Arc<dyn CampaignBackend>,
    max_per_tenant: usize,
    dir: Option<PathBuf>,
) -> (Server, Client) {
    let registry = Arc::new(
        DutRegistry::open(DutRegistryConfig {
            dir,
            max_per_tenant,
        })
        .expect("registry opens"),
    );
    let backend = Arc::new(GenericBackend::new(inner, registry));
    let server = Server::start(ServiceConfig::default(), backend).expect("server starts");
    let client = Client::builder()
        .base_url(server.addr().to_string())
        .build();
    (server, client)
}

fn shut_down(server: Server) {
    server.request_shutdown();
    server.wait();
}

/// Streams a completed job's records sorted by catalog index and
/// projected through `merged_line` (the wall-free byte-comparable form).
fn merged_projection(client: &Client, id: symbist_service::JobId) -> Vec<String> {
    let mut records: Vec<DefectRecord> = client
        .stream_results(id)
        .expect("stream")
        .map(|r| r.expect("record parses"))
        .collect();
    records.sort_by_key(|r| r.defect_index);
    records.iter().map(merged_line).collect()
}

#[test]
fn upload_lint_gate_dedup_and_quota_over_the_wire() {
    let (server, client) = start_with_registry(Arc::new(SyntheticBackend::new(4)), 1, None);

    // An Error-grade netlist (floating island) is rejected 422 with the
    // SYM-Lxxx diagnostics, before any registry slot is consumed.
    let mut bad = CapArrayConfig::binary(3).dut_spec();
    bad.name = "islanded".into();
    bad.netlist.push_str("RZ island1 island2 1k\n");
    match client.upload_dut(&bad) {
        Err(ClientError::Service(ServiceError::LintFailed {
            diagnostics: Some(report),
            ..
        })) => {
            assert!(
                report.to_string().contains("SYM-L"),
                "diagnostics carry lint codes: {report}"
            );
        }
        other => panic!("expected 422 lint_failed with diagnostics, got {other:?}"),
    }
    assert!(client.list_duts().unwrap().is_empty(), "slot was consumed");

    // A clean upload still fits the 1-slot quota after the rejection.
    let good = CapArrayConfig::binary(3).dut_spec();
    let first = client.upload_dut(&good).unwrap();
    assert_eq!(first.get("created").and_then(Json::as_bool), Some(true));
    let id = first.get("id").and_then(Json::as_str).unwrap().to_string();

    // Identical content answers from the cache: same id, created=false,
    // and the lint-cache-hit counter advances.
    let hits = || {
        symbist_obs::counter!(
            "symbist_dut_lint_cache_hits_total",
            "re-uploads of identical content answered from the lint cache"
        )
        .get()
    };
    let before = hits();
    let again = client.upload_dut(&good).unwrap();
    assert_eq!(again.get("created").and_then(Json::as_bool), Some(false));
    assert_eq!(again.get("id").and_then(Json::as_str), Some(id.as_str()));
    assert!(hits() > before, "cache hit not counted");

    // Distinct content against a full quota: 403 quota_exceeded — a
    // definitive answer the client never auto-retries.
    let mut second = CapArrayConfig::binary(3).dut_spec();
    second.name = "other".into();
    second.calibration.seed ^= 7;
    match client.upload_dut(&second) {
        Err(ClientError::Service(ServiceError::QuotaExceeded(m))) => {
            assert!(m.contains("quota"), "message: {m}");
        }
        other => panic!("expected 403 quota_exceeded, got {other:?}"),
    }

    // The new metric families are live on /v1/metrics.
    let metrics = client.metrics().unwrap();
    for family in [
        "symbist_dut_uploads_total",
        "symbist_dut_lint_cache_hits_total",
        "symbist_dut_lint_rejects_total",
        "symbist_dut_registry_entries",
    ] {
        assert!(metrics.contains(family), "missing {family}");
    }
    shut_down(server);
}

#[test]
fn generic_job_runs_the_uploaded_dut_end_to_end() {
    let (server, client) = start_with_registry(Arc::new(SyntheticBackend::new(4)), 64, None);

    let spec = CapArrayConfig::binary(3).dut_spec();
    let doc = client.upload_dut(&spec).unwrap();
    let id = doc.get("id").and_then(Json::as_str).unwrap().to_string();
    let defects = doc.get("defects").and_then(Json::as_u64).unwrap() as usize;
    assert_eq!(defects, 27 * 4);

    // GET /v1/duts/{id} serves the detail document (with lint report).
    let detail = client.get_dut(&id).unwrap();
    assert_eq!(detail.get("defects").and_then(Json::as_u64), Some(108));
    assert!(detail.get("lint").is_some(), "detail includes lint report");

    // A job addressed by registry *name* runs the registered universe,
    // not the synthetic inner backend's.
    let job = JobSpec {
        dut: Some("cap-array-b3-r2".into()),
        tag: Some("dut e2e".into()),
        ..JobSpec::default()
    };
    let id = client.submit(&job).expect("submit");
    let (state, _) = client.wait_terminal(id, POLL).expect("terminal");
    assert_eq!(state, "completed");
    let records = merged_projection(&client, id);
    assert_eq!(records.len(), defects);
    let report = client.report(id).expect("report");
    assert!(report.get("coverage").is_some());

    // Unknown DUT references and ADC-only knobs are 400s at submission.
    for bad in [
        JobSpec {
            dut: Some("no-such-dut".into()),
            ..JobSpec::default()
        },
        JobSpec {
            dut: Some("cap-array-b3-r2".into()),
            block: Some("SC Array".into()),
            ..JobSpec::default()
        },
    ] {
        match client.submit(&bad) {
            Err(ClientError::Service(ServiceError::BadRequest(_))) => {}
            other => panic!("expected 400, got {other:?}"),
        }
    }
    shut_down(server);
}

#[test]
fn analysis_endpoint_serves_the_cached_partition() {
    let (server, client) = start_with_registry(Arc::new(SyntheticBackend::new(4)), 64, None);

    let spec = CapArrayConfig::binary(3).dut_spec();
    let doc = client.upload_dut(&spec).unwrap();
    let id = doc.get("id").and_then(Json::as_str).unwrap().to_string();
    let defects = doc.get("defects").and_then(Json::as_u64).unwrap();

    // By id and by name: the full analysis document, with the class
    // partition covering the whole universe.
    for reference in [id.as_str(), "cap-array-b3-r2"] {
        let analysis = client.dut_analysis(reference).unwrap();
        assert_eq!(
            analysis.get("universe_size").and_then(Json::as_u64),
            Some(defects),
            "analysis for {reference}"
        );
        let cert = analysis.get("certificate").and_then(Json::as_str).unwrap();
        assert_eq!(cert.len(), 16, "certificate is a 64-bit hex string");
        let classes = analysis.get("classes").and_then(Json::as_arr).unwrap();
        let covered: u64 = classes
            .iter()
            .map(|c| c.get("members").and_then(Json::as_arr).unwrap().len() as u64)
            .sum();
        assert_eq!(covered, defects, "classes partition the universe");
    }

    // The job-facing lint route folds the orbit summary in.
    let job = client
        .submit(&JobSpec {
            dut: Some(id.clone()),
            sample_size: Some(1),
            ..JobSpec::default()
        })
        .unwrap();
    let lint = client.lint(job).unwrap();
    let summary = lint.get("analysis").expect("lint carries analysis summary");
    assert_eq!(
        summary.get("class_count").and_then(Json::as_u64),
        Some(
            client
                .dut_analysis(&id)
                .unwrap()
                .get("class_count")
                .and_then(Json::as_u64)
                .unwrap()
        )
    );
    assert_eq!(summary.get("errors").and_then(Json::as_u64), Some(0));
    let (_, _) = client.wait_terminal(job, POLL).unwrap();

    // Unknown references 404 rather than guessing a DUT.
    match client.dut_analysis("no-such-dut") {
        Err(ClientError::Service(ServiceError::NotFound(_))) => {}
        other => panic!("expected 404, got {other:?}"),
    }
    shut_down(server);
}

#[test]
fn adc_campaign_is_bit_identical_across_legacy_and_registry_paths() {
    // One server, both paths: specs without `dut` take the code path that
    // predates the registry; `dut: "sar-adc"` routes through
    // GenericBackend's dispatch. The records must match byte-for-byte.
    let xc = ExperimentConfig {
        calibration_samples: 2,
        ..ExperimentConfig::default()
    };
    let adc: Arc<dyn CampaignBackend> = Arc::new(AdcBackend::new(&xc));
    let (server, client) = start_with_registry(adc, 64, None);

    // The reserved name serves the backend's own startup-computed static
    // analysis (the registry holds no such entry).
    let analysis = client.dut_analysis("sar-adc").expect("builtin analysis");
    assert_eq!(
        analysis.get("universe_size").and_then(Json::as_u64),
        Some(client.universe().unwrap()),
    );
    assert!(
        analysis.get("defects_saved").and_then(Json::as_u64) > Some(0),
        "ADC P/N pairs collapse into shared classes"
    );

    // Exhaustive on one Table-I block, and LWRS-sampled on the full
    // universe — both shapes of the paper's Table-1 experiment.
    let shapes = [
        JobSpec {
            block: Some("Vcm Generator".into()),
            seed: 3,
            ..JobSpec::default()
        },
        JobSpec {
            sample_size: Some(150),
            seed: 11,
            ..JobSpec::default()
        },
    ];
    for shape in shapes {
        let legacy = JobSpec {
            dut: None,
            ..shape.clone()
        };
        let registry_path = JobSpec {
            dut: Some("sar-adc".into()),
            ..shape
        };
        let mut projections = Vec::new();
        for spec in [legacy, registry_path] {
            let id = client.submit(&spec).expect("submit");
            let (state, _) = client.wait_terminal(id, POLL).expect("terminal");
            assert_eq!(state, "completed");
            projections.push(merged_projection(&client, id));
        }
        assert!(!projections[0].is_empty());
        assert_eq!(
            projections[0], projections[1],
            "registry path diverged from the legacy ADC campaign"
        );
    }
    shut_down(server);
}

#[test]
fn coordinator_shards_an_uploaded_dut_and_merges_bit_identical() {
    // Two workers, each with its own empty registry: the coordinator
    // uploads the spec to both (content addressing makes the ids agree),
    // shards the DUT's universe, and merges byte-identical to a
    // 1-process run of the same entry.
    let dut_spec = CapArrayConfig::binary(4).dut_spec();
    let dut_text = dut_spec.to_json().to_string();
    let universe = 4 * 3 * 3 * 4; // bits × arrays × components × defect kinds

    let servers: Vec<Server> = (0..2)
        .map(|_| {
            let registry =
                Arc::new(DutRegistry::open(DutRegistryConfig::default()).expect("registry"));
            let backend: Arc<dyn CampaignBackend> = Arc::new(GenericBackend::new(
                Arc::new(SyntheticBackend::new(4)),
                registry,
            ));
            Server::start(ServiceConfig::default(), backend).expect("worker starts")
        })
        .collect();

    let workers = servers.iter().map(|s| s.addr().to_string()).collect();
    let mut config = CoordConfig::new(workers, 2, temp_dir("coord"));
    config.spec = JobSpec {
        threads: 1,
        seed: 9,
        ..JobSpec::default()
    };
    config.dut_spec = Some(dut_text);
    config.poll_interval = POLL;
    config.backoff_base = Duration::from_millis(2);
    config.backoff_cap = Duration::from_millis(20);

    let outcome = run_coordinator(&config).expect("coordinator run");
    assert_eq!(outcome.result.simulated(), universe);
    assert_eq!(outcome.redispatches, 0);
    for shard in &outcome.shards {
        assert_eq!(shard.attempts, 1);
    }

    // 1-process oracle over the same content: a private registry derives
    // the identical id, engine, and universe from the same spec text.
    let oracle_registry =
        Arc::new(DutRegistry::open(DutRegistryConfig::default()).expect("registry"));
    let uploaded = oracle_registry
        .upload(DutSpec::from_json_text(config.dut_spec.as_deref().unwrap()).unwrap())
        .unwrap();
    let oracle_backend = GenericBackend::new(
        Arc::new(SyntheticBackend::new(4)),
        Arc::clone(&oracle_registry),
    );
    let oracle_spec = JobSpec {
        dut: Some(uploaded.entry().id.clone()),
        threads: 1,
        seed: 9,
        ..JobSpec::default()
    };
    oracle_backend.validate(&oracle_spec).unwrap();
    let oracle = oracle_backend.run(&oracle_spec, None, &()).unwrap();

    let coord_lines: Vec<String> = outcome.result.records.iter().map(merged_line).collect();
    let oracle_lines: Vec<String> = oracle.records.iter().map(merged_line).collect();
    assert_eq!(coord_lines, oracle_lines, "merge diverged from the oracle");

    let artifact = std::fs::read_to_string(&outcome.merged_path).expect("merged artifact");
    let mut expected = oracle_lines.join("\n");
    expected.push('\n');
    assert_eq!(artifact, expected, "merged.jsonl must equal the oracle");

    // Every worker now holds the uploaded DUT under the agreed id.
    for server in &servers {
        let client = Client::builder()
            .base_url(server.addr().to_string())
            .build();
        let listed = client.list_duts().unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(
            listed[0].get("id").and_then(Json::as_str),
            Some(uploaded.entry().id.as_str())
        );
    }
    for server in servers {
        shut_down(server);
    }
}
