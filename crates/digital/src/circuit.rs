//! Gate-level circuit capture and two-valued simulation.
//!
//! A [`GateCircuit`] is a synchronous design: primary inputs, gates, D
//! flip-flops, primary outputs. Combinational evaluation runs in
//! levelized (topological) order; one [`GateCircuit::tick`] evaluates the
//! cloud and advances the flip-flops.

use std::collections::HashMap;
use std::fmt;

/// A signal net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Net(pub(crate) usize);

impl Net {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Combinational gate kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Logical AND of all inputs.
    And,
    /// Logical OR.
    Or,
    /// NOT-AND.
    Nand,
    /// NOT-OR.
    Nor,
    /// Exclusive OR (2 inputs).
    Xor,
    /// Exclusive NOR (2 inputs).
    Xnor,
    /// Inverter (1 input).
    Inv,
    /// Buffer (1 input).
    Buf,
}

impl GateKind {
    /// Evaluates the gate on boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if the input count is invalid for the kind.
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            GateKind::And => inputs.iter().all(|x| *x),
            GateKind::Or => inputs.iter().any(|x| *x),
            GateKind::Nand => !inputs.iter().all(|x| *x),
            GateKind::Nor => !inputs.iter().any(|x| *x),
            GateKind::Xor => {
                assert_eq!(inputs.len(), 2, "XOR takes 2 inputs");
                inputs[0] ^ inputs[1]
            }
            GateKind::Xnor => {
                assert_eq!(inputs.len(), 2, "XNOR takes 2 inputs");
                !(inputs[0] ^ inputs[1])
            }
            GateKind::Inv => {
                assert_eq!(inputs.len(), 1, "INV takes 1 input");
                !inputs[0]
            }
            GateKind::Buf => {
                assert_eq!(inputs.len(), 1, "BUF takes 1 input");
                inputs[0]
            }
        }
    }
}

/// One gate instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Kind.
    pub kind: GateKind,
    /// Input nets.
    pub inputs: Vec<Net>,
    /// Output net (each net is driven at most once).
    pub output: Net,
}

/// One D flip-flop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dff {
    /// Data input net.
    pub d: Net,
    /// Output net.
    pub q: Net,
}

/// A gate-level synchronous circuit.
#[derive(Debug, Clone, Default)]
pub struct GateCircuit {
    net_count: usize,
    names: HashMap<String, Net>,
    inputs: Vec<Net>,
    outputs: Vec<Net>,
    gates: Vec<Gate>,
    ffs: Vec<Dff>,
    /// Gate evaluation order (indices into `gates`), rebuilt on seal.
    order: Vec<usize>,
    sealed: bool,
}

impl GateCircuit {
    /// Creates an empty circuit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh net, optionally named.
    pub fn net(&mut self, name: &str) -> Net {
        if let Some(&n) = self.names.get(name) {
            return n;
        }
        let n = Net(self.net_count);
        self.net_count += 1;
        self.names.insert(name.to_string(), n);
        n
    }

    /// Allocates an anonymous net.
    pub fn fresh(&mut self) -> Net {
        let n = Net(self.net_count);
        self.net_count += 1;
        n
    }

    /// Looks up a named net.
    pub fn find(&self, name: &str) -> Option<Net> {
        self.names.get(name).copied()
    }

    /// Name of a net if it has one.
    pub fn name_of(&self, net: Net) -> Option<&str> {
        self.names
            .iter()
            .find(|(_, n)| **n == net)
            .map(|(s, _)| s.as_str())
    }

    /// Declares a primary input.
    pub fn input(&mut self, name: &str) -> Net {
        let n = self.net(name);
        self.inputs.push(n);
        n
    }

    /// Declares a primary output.
    pub fn output(&mut self, net: Net) {
        self.outputs.push(net);
    }

    /// Adds a gate; returns its output net.
    ///
    /// # Panics
    ///
    /// Panics after sealing, or if the output net is already driven.
    pub fn gate(&mut self, kind: GateKind, inputs: &[Net], output: Net) -> Net {
        assert!(!self.sealed, "circuit already sealed");
        assert!(
            !self.gates.iter().any(|g| g.output == output)
                && !self.ffs.iter().any(|f| f.q == output),
            "net {output} is already driven"
        );
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
        output
    }

    /// Convenience: adds a gate with a fresh output net.
    pub fn g(&mut self, kind: GateKind, inputs: &[Net]) -> Net {
        let out = self.fresh();
        self.gate(kind, inputs, out)
    }

    /// Adds a D flip-flop; returns its Q net.
    ///
    /// # Panics
    ///
    /// Panics after sealing or on a doubly-driven Q.
    pub fn dff(&mut self, d: Net, q: Net) -> Net {
        assert!(!self.sealed, "circuit already sealed");
        assert!(
            !self.gates.iter().any(|g| g.output == q) && !self.ffs.iter().any(|f| f.q == q),
            "net {q} is already driven"
        );
        self.ffs.push(Dff { d, q });
        q
    }

    /// Finalizes the circuit: levelizes the combinational cloud.
    ///
    /// # Panics
    ///
    /// Panics on a combinational loop or an undriven non-input net.
    pub fn seal(&mut self) {
        assert!(!self.sealed, "already sealed");
        // Driver map: net -> gate index (PIs and FF Qs are sources).
        let mut driver: Vec<Option<usize>> = vec![None; self.net_count];
        for (gi, g) in self.gates.iter().enumerate() {
            driver[g.output.0] = Some(gi);
        }
        let mut source = vec![false; self.net_count];
        for n in &self.inputs {
            source[n.0] = true;
        }
        for f in &self.ffs {
            source[f.q.0] = true;
        }
        // Kahn levelization.
        let mut indeg = vec![0usize; self.gates.len()];
        let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); self.gates.len()];
        for (gi, g) in self.gates.iter().enumerate() {
            for inp in &g.inputs {
                if let Some(di) = driver[inp.0] {
                    indeg[gi] += 1;
                    fanout[di].push(gi);
                } else {
                    assert!(source[inp.0], "net {} is used but never driven", inp);
                }
            }
        }
        let mut queue: Vec<usize> = indeg
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut order = Vec::with_capacity(self.gates.len());
        let mut head = 0;
        while head < queue.len() {
            let gi = queue[head];
            head += 1;
            order.push(gi);
            for &next in &fanout[gi] {
                indeg[next] -= 1;
                if indeg[next] == 0 {
                    queue.push(next);
                }
            }
        }
        assert_eq!(order.len(), self.gates.len(), "combinational loop detected");
        self.order = order;
        self.sealed = true;
    }

    /// Primary inputs.
    pub fn inputs(&self) -> &[Net] {
        &self.inputs
    }

    /// Primary outputs.
    pub fn outputs(&self) -> &[Net] {
        &self.outputs
    }

    /// Flip-flops.
    pub fn ffs(&self) -> &[Dff] {
        &self.ffs
    }

    /// Gates.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Levelized gate order (sealed circuits only).
    pub(crate) fn order(&self) -> &[usize] {
        assert!(self.sealed, "circuit not sealed");
        &self.order
    }

    /// Evaluates the combinational cloud for given PI values and FF state,
    /// returning all net values. `state[i]` corresponds to `ffs()[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is unsealed or slice lengths mismatch.
    pub fn evaluate(&self, pi: &[bool], state: &[bool]) -> Vec<bool> {
        assert!(self.sealed, "seal the circuit before evaluating");
        assert_eq!(pi.len(), self.inputs.len(), "PI count mismatch");
        assert_eq!(state.len(), self.ffs.len(), "state count mismatch");
        let mut values = vec![false; self.net_count];
        for (n, v) in self.inputs.iter().zip(pi) {
            values[n.0] = *v;
        }
        for (f, v) in self.ffs.iter().zip(state) {
            values[f.q.0] = *v;
        }
        let mut buf = Vec::with_capacity(8);
        for &gi in &self.order {
            let g = &self.gates[gi];
            buf.clear();
            buf.extend(g.inputs.iter().map(|n| values[n.0]));
            values[g.output.0] = g.kind.eval(&buf);
        }
        values
    }

    /// One clock tick: evaluates and returns `(outputs, next_state)`.
    pub fn tick(&self, pi: &[bool], state: &[bool]) -> (Vec<bool>, Vec<bool>) {
        let values = self.evaluate(pi, state);
        let outs = self.outputs.iter().map(|n| values[n.0]).collect();
        let next = self.ffs.iter().map(|f| values[f.d.0]).collect();
        (outs, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-bit full adder out of primitive gates.
    fn full_adder() -> GateCircuit {
        let mut c = GateCircuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let cin = c.input("cin");
        let axb = c.g(GateKind::Xor, &[a, b]);
        let sum = c.g(GateKind::Xor, &[axb, cin]);
        let t1 = c.g(GateKind::And, &[a, b]);
        let t2 = c.g(GateKind::And, &[axb, cin]);
        let cout = c.g(GateKind::Or, &[t1, t2]);
        c.output(sum);
        c.output(cout);
        c.seal();
        c
    }

    #[test]
    fn full_adder_truth_table() {
        let c = full_adder();
        for bits in 0..8u8 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let cin = bits & 4 != 0;
            let (outs, _) = c.tick(&[a, b, cin], &[]);
            let expect = u8::from(a) + u8::from(b) + u8::from(cin);
            assert_eq!(outs[0], expect & 1 != 0, "sum at {bits:03b}");
            assert_eq!(outs[1], expect >= 2, "cout at {bits:03b}");
        }
    }

    #[test]
    fn dff_shifts_state() {
        // 3-stage shift register.
        let mut c = GateCircuit::new();
        let din = c.input("din");
        let q0 = c.net("q0");
        let q1 = c.net("q1");
        let q2 = c.net("q2");
        c.dff(din, q0);
        c.dff(q0, q1);
        c.dff(q1, q2);
        c.output(q2);
        c.seal();
        let mut state = vec![false; 3];
        let seq = [true, false, true, true, false, false];
        let mut got = Vec::new();
        for &bit in &seq {
            let (outs, next) = c.tick(&[bit], &state);
            got.push(outs[0]);
            state = next;
        }
        // Output is the input delayed by 3.
        assert_eq!(got[3..], [true, false, true]);
    }

    #[test]
    #[should_panic]
    fn combinational_loop_detected() {
        let mut c = GateCircuit::new();
        let a = c.net("a");
        let b = c.net("b");
        c.gate(GateKind::Inv, &[a], b);
        c.gate(GateKind::Inv, &[b], a);
        c.seal();
    }

    #[test]
    #[should_panic]
    fn double_drive_rejected() {
        let mut c = GateCircuit::new();
        let a = c.input("a");
        let o = c.net("o");
        c.gate(GateKind::Buf, &[a], o);
        c.gate(GateKind::Inv, &[a], o);
    }

    #[test]
    #[should_panic]
    fn undriven_net_rejected() {
        let mut c = GateCircuit::new();
        let ghost = c.net("ghost");
        let o = c.g(GateKind::Inv, &[ghost]);
        c.output(o);
        c.seal();
    }

    #[test]
    fn gate_eval_primitives() {
        assert!(GateKind::And.eval(&[true, true, true]));
        assert!(!GateKind::And.eval(&[true, false]));
        assert!(GateKind::Nand.eval(&[true, false]));
        assert!(GateKind::Or.eval(&[false, true]));
        assert!(GateKind::Nor.eval(&[false, false]));
        assert!(GateKind::Xor.eval(&[true, false]));
        assert!(GateKind::Xnor.eval(&[true, true]));
        assert!(GateKind::Inv.eval(&[false]));
        assert!(GateKind::Buf.eval(&[true]));
    }
}
